#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "simd/fft_plan.hpp"
#include "simd/kernels.hpp"

namespace echoimage::dsp {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_pow2_in_place(ComplexSignal& x, bool inverse) {
  const std::size_t n = x.size();
  if (!is_pow2(n))
    throw std::invalid_argument("fft_pow2_in_place: size must be 2^k");
  if (n == 1) return;
  // The plan's staged kernels are bit-identical to the historical inline
  // radix-2 loop on every ISA lane (see simd/fft_plan.hpp).
  simd::FftPlan::for_size(n).execute(x.data(), inverse);
}

namespace {

// Bluestein chirp-z transform: expresses an arbitrary-N DFT as a
// convolution, evaluated with a power-of-two FFT.
ComplexSignal bluestein(const ComplexSignal& x, bool inverse) {
  const std::size_t n = x.size();
  const std::size_t m = next_pow2(2 * n - 1);
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp factors w[k] = exp(sign * i * pi * k^2 / n). k^2 mod 2n keeps the
  // angle argument bounded for large k.
  ComplexSignal w(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double ang =
        sign * std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n);
    w[k] = Complex(std::cos(ang), std::sin(ang));
  }

  ComplexSignal a(m, Complex(0.0, 0.0));
  ComplexSignal b(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * w[k];
  b[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k) b[k] = b[m - k] = std::conj(w[k]);

  fft_pow2_in_place(a, false);
  fft_pow2_in_place(b, false);
  simd::kernels().complex_mul_f64(a.data(), b.data(), m);
  fft_pow2_in_place(a, true);

  ComplexSignal out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * w[k];
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (Complex& c : out) c *= inv_n;
  }
  return out;
}

}  // namespace

ComplexSignal fft(const ComplexSignal& x) {
  if (x.empty()) return {};
  if (is_pow2(x.size())) {
    ComplexSignal y = x;
    fft_pow2_in_place(y, false);
    return y;
  }
  return bluestein(x, false);
}

ComplexSignal ifft(const ComplexSignal& x) {
  if (x.empty()) return {};
  if (is_pow2(x.size())) {
    ComplexSignal y = x;
    fft_pow2_in_place(y, true);
    return y;
  }
  return bluestein(x, true);
}

ComplexSignal fft_real(std::span<const Sample> x) {
  ComplexSignal c(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) c[i] = Complex(x[i], 0.0);
  return fft(c);
}

Signal ifft_real(const ComplexSignal& x) {
  const ComplexSignal y = ifft(x);
  Signal out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = y[i].real();
  return out;
}

double bin_frequency(std::size_t k, std::size_t n, double sample_rate) {
  if (n == 0) throw std::invalid_argument("bin_frequency: n == 0");
  const double kk = (k <= n / 2) ? static_cast<double>(k)
                                 : static_cast<double>(k) - static_cast<double>(n);
  return kk * sample_rate / static_cast<double>(n);
}

std::size_t frequency_bin(double freq_hz, std::size_t n, double sample_rate) {
  if (n == 0) throw std::invalid_argument("frequency_bin: n == 0");
  const double k = freq_hz * static_cast<double>(n) / sample_rate;
  const auto kk = static_cast<long>(std::lround(k));
  if (kk < 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(kk), n / 2);
}

Signal fft_convolve(std::span<const Sample> a, std::span<const Sample> b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t m = next_pow2(out_len);
  ComplexSignal fa(m, Complex(0.0, 0.0));
  ComplexSignal fb(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = Complex(a[i], 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = Complex(b[i], 0.0);
  fft_pow2_in_place(fa, false);
  fft_pow2_in_place(fb, false);
  simd::kernels().complex_mul_f64(fa.data(), fb.data(), m);
  fft_pow2_in_place(fa, true);
  Signal out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

Signal fft_correlate(std::span<const Sample> a, std::span<const Sample> b) {
  if (a.empty() || b.empty()) return {};
  // Correlation is convolution with the reversed second signal.
  Signal br(b.rbegin(), b.rend());
  return fft_convolve(a, br);
}

}  // namespace echoimage::dsp
