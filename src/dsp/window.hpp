// Window functions used for chirp shaping, STFT analysis, and envelope
// smoothing.
#pragma once

#include <cstddef>

#include "dsp/signal.hpp"

namespace echoimage::dsp {

enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
  kTukey,  ///< Tapered cosine; taper fraction supplied separately.
};

/// Window value at normalized position u in [0, 1]. `tukey_alpha` is the
/// taper fraction for the Tukey window (ignored by other types); outside
/// [0, 1] the window is zero.
[[nodiscard]] double window_value(WindowType type, double u,
                                  double tukey_alpha = 0.5);

/// Sampled window of `n` points spanning u = 0..1 inclusive of endpoints
/// (periodicity is not needed for our uses).
[[nodiscard]] Signal make_window(WindowType type, std::size_t n,
                                 double tukey_alpha = 0.5);

/// Multiply x by the window in place. Throws std::invalid_argument on
/// length mismatch.
void apply_window(Signal& x, std::span<const Sample> w);

}  // namespace echoimage::dsp
