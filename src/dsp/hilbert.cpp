#include "dsp/hilbert.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hpp"
#include "simd/kernels.hpp"

namespace echoimage::dsp {

ComplexSignal analytic_signal(std::span<const Sample> x) {
  if (x.empty()) return {};
  const std::size_t n = x.size();
  const std::size_t m = next_pow2(n);
  ComplexSignal spec(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < n; ++i) spec[i] = Complex(x[i], 0.0);
  fft_pow2_in_place(spec, false);
  // One-sided spectrum: keep DC and Nyquist, double positive frequencies,
  // zero negative frequencies.
  if (m >= 2)
    simd::kernels().complex_scale_f64(spec.data() + 1, m / 2 - 1, 2.0);
  for (std::size_t k = m / 2 + 1; k < m; ++k) spec[k] = Complex(0.0, 0.0);
  fft_pow2_in_place(spec, true);
  spec.resize(n);
  return spec;
}

Signal envelope(std::span<const Sample> x) {
  const ComplexSignal a = analytic_signal(x);
  Signal out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::abs(a[i]);
  return out;
}

Signal moving_average(std::span<const Sample> x, std::size_t len) {
  if (x.empty()) return {};
  if (len <= 1) return Signal(x.begin(), x.end());
  if (len % 2 == 0) ++len;  // force odd for zero group delay
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  const auto half = static_cast<std::ptrdiff_t>(len / 2);
  // Reflect index into [0, n).
  const auto reflect = [n](std::ptrdiff_t i) {
    while (i < 0 || i >= n) {
      if (i < 0) i = -i;
      if (i >= n) i = 2 * (n - 1) - i;
    }
    return i;
  };
  Signal out(x.size());
  // Sliding-window sum with reflected edges.
  double acc = 0.0;
  for (std::ptrdiff_t j = -half; j <= half; ++j) acc += x[reflect(j)];
  out[0] = acc / static_cast<double>(len);
  for (std::ptrdiff_t i = 1; i < n; ++i) {
    acc += x[reflect(i + half)] - x[reflect(i - 1 - half)];
    out[static_cast<std::size_t>(i)] = acc / static_cast<double>(len);
  }
  return out;
}

Signal smoothed_envelope(std::span<const Sample> x, std::size_t smooth_len) {
  const Signal env = envelope(x);
  return moving_average(env, smooth_len);
}

}  // namespace echoimage::dsp
