#include "dsp/stft.hpp"

#include <stdexcept>

#include "dsp/fft.hpp"

namespace echoimage::dsp {

void StftParams::validate() const {
  if (!is_pow2(fft_size))
    throw std::invalid_argument("StftParams: fft_size must be a power of two");
  if (hop == 0 || hop > fft_size)
    throw std::invalid_argument("StftParams: hop must be in [1, fft_size]");
}

Stft::Stft(StftParams params, std::size_t signal_length,
           std::vector<ComplexSignal> frames)
    : params_(params),
      signal_length_(signal_length),
      frames_(std::move(frames)) {}

double Stft::bin_frequency(std::size_t k, double sample_rate) const {
  return static_cast<double>(k) * sample_rate /
         static_cast<double>(params_.fft_size);
}

Stft stft(std::span<const Sample> x, const StftParams& params) {
  params.validate();
  const std::size_t n = params.fft_size;
  const Signal win = make_window(params.window, n);
  const std::size_t num_frames =
      x.empty() ? 0 : (x.size() + params.hop - 1) / params.hop;
  std::vector<ComplexSignal> frames;
  frames.reserve(num_frames);
  ComplexSignal buf(n);
  for (std::size_t f = 0; f < num_frames; ++f) {
    const std::size_t start = f * params.hop;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = start + i;
      const double v = idx < x.size() ? x[idx] : 0.0;
      buf[i] = Complex(v * win[i], 0.0);
    }
    fft_pow2_in_place(buf, false);
    frames.emplace_back(buf.begin(),
                        buf.begin() + static_cast<std::ptrdiff_t>(n / 2 + 1));
  }
  return Stft(params, x.size(), std::move(frames));
}

Signal istft(const Stft& s) {
  const StftParams& p = s.params();
  const std::size_t n = p.fft_size;
  const Signal win = make_window(p.window, n);
  Signal out(s.signal_length() + n, 0.0);
  Signal norm(out.size(), 0.0);
  ComplexSignal buf(n);
  for (std::size_t f = 0; f < s.num_frames(); ++f) {
    const ComplexSignal& half = s.frames()[f];
    // Rebuild the two-sided spectrum from the one-sided bins (real signal).
    for (std::size_t k = 0; k <= n / 2; ++k) buf[k] = half[k];
    for (std::size_t k = n / 2 + 1; k < n; ++k)
      buf[k] = std::conj(half[n - k]);
    fft_pow2_in_place(buf, true);
    const std::size_t start = f * p.hop;
    for (std::size_t i = 0; i < n && start + i < out.size(); ++i) {
      out[start + i] += buf[i].real() * win[i];
      norm[start + i] += win[i] * win[i];
    }
  }
  out.resize(s.signal_length());
  for (std::size_t i = 0; i < out.size(); ++i)
    if (norm[i] > 1e-12) out[i] /= norm[i];
  return out;
}

}  // namespace echoimage::dsp
