#include "dsp/matched_filter.hpp"

#include <cmath>

#include "dsp/fft.hpp"
#include "simd/kernels.hpp"

namespace echoimage::dsp {

Signal matched_filter(std::span<const Sample> received,
                      std::span<const Sample> tmpl) {
  if (received.empty() || tmpl.empty()) return Signal(received.size(), 0.0);
  const std::size_t n = received.size() + tmpl.size() - 1;
  const std::size_t m = next_pow2(n);
  ComplexSignal fr(m, Complex(0.0, 0.0));
  ComplexSignal ft(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < received.size(); ++i)
    fr[i] = Complex(received[i], 0.0);
  for (std::size_t i = 0; i < tmpl.size(); ++i) ft[i] = Complex(tmpl[i], 0.0);
  fft_pow2_in_place(fr, false);
  fft_pow2_in_place(ft, false);
  // Correlation: IFFT(R * conj(S)); non-negative lags land at the front.
  simd::kernels().complex_conj_mul_f64(fr.data(), ft.data(), m);
  fft_pow2_in_place(fr, true);
  Signal out(received.size());
  for (std::size_t i = 0; i < received.size(); ++i) out[i] = fr[i].real();
  return out;
}

ComplexSignal matched_filter_complex(const ComplexSignal& received,
                                     std::span<const Sample> tmpl) {
  if (received.empty() || tmpl.empty())
    return ComplexSignal(received.size(), Complex(0.0, 0.0));
  const std::size_t n = received.size() + tmpl.size() - 1;
  const std::size_t m = next_pow2(n);
  ComplexSignal fr(m, Complex(0.0, 0.0));
  ComplexSignal ft(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < received.size(); ++i) fr[i] = received[i];
  for (std::size_t i = 0; i < tmpl.size(); ++i) ft[i] = Complex(tmpl[i], 0.0);
  fft_pow2_in_place(fr, false);
  fft_pow2_in_place(ft, false);
  simd::kernels().complex_conj_mul_f64(fr.data(), ft.data(), m);
  fft_pow2_in_place(fr, true);
  fr.resize(received.size());
  return fr;
}

Signal matched_filter_envelope(const ComplexSignal& received,
                               std::span<const Sample> tmpl) {
  if (received.empty() || tmpl.empty()) return Signal(received.size(), 0.0);
  const std::size_t n = received.size() + tmpl.size() - 1;
  const std::size_t m = next_pow2(n);
  ComplexSignal fr(m, Complex(0.0, 0.0));
  ComplexSignal ft(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < received.size(); ++i) fr[i] = received[i];
  for (std::size_t i = 0; i < tmpl.size(); ++i) ft[i] = Complex(tmpl[i], 0.0);
  fft_pow2_in_place(fr, false);
  fft_pow2_in_place(ft, false);
  simd::kernels().complex_conj_mul_f64(fr.data(), ft.data(), m);
  fft_pow2_in_place(fr, true);
  // Correlating the analytic signal with a real template yields the analytic
  // correlation, so the magnitude is exactly the correlation envelope.
  Signal out(received.size());
  for (std::size_t i = 0; i < received.size(); ++i) out[i] = std::abs(fr[i]);
  return out;
}

}  // namespace echoimage::dsp
