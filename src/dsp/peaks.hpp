// Local-maximum (peak) detection for echo-onset identification.
//
// Implements the MaxSet search of paper Sec. V-B: a sample tau_w is a peak
// when E(tau_w) > E(t) for all t within +/- `min_distance` samples and
// E(tau_w) > `threshold`.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/signal.hpp"

namespace echoimage::dsp {

/// One detected local maximum.
struct Peak {
  std::size_t index = 0;  ///< Sample position tau_w.
  double value = 0.0;     ///< E(tau_w).
};

/// All local maxima of `x` that dominate their +/- `min_distance`
/// neighbourhood and exceed `threshold`, in increasing index order.
[[nodiscard]] std::vector<Peak> find_peaks(std::span<const Sample> x,
                                           std::size_t min_distance,
                                           double threshold);

/// Convenience: threshold expressed as a fraction of max(x). Returns no
/// peaks for an all-non-positive signal.
[[nodiscard]] std::vector<Peak> find_peaks_relative(std::span<const Sample> x,
                                                    std::size_t min_distance,
                                                    double relative_threshold);

/// Largest peak within [first, last) of an already-computed peak list;
/// returns std::size_t(-1) index when none falls in the range.
[[nodiscard]] Peak largest_peak_in_range(const std::vector<Peak>& peaks,
                                         std::size_t first, std::size_t last);

}  // namespace echoimage::dsp
