#include "dsp/butterworth.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>
#include <vector>

namespace echoimage::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

// Normalized (cutoff = 1 rad/s) Butterworth low-pass prototype poles, all in
// the left half-plane: p_k = exp(j*pi*(2k + n - 1) / (2n)), k = 1..n.
std::vector<Complex> prototype_poles(std::size_t order) {
  std::vector<Complex> poles;
  poles.reserve(order);
  for (std::size_t k = 1; k <= order; ++k) {
    const double ang = kPi * (2.0 * static_cast<double>(k) +
                              static_cast<double>(order) - 1.0) /
                       (2.0 * static_cast<double>(order));
    poles.emplace_back(std::cos(ang), std::sin(ang));
  }
  return poles;
}

// Bilinear transform of an analog pole/zero, fs in Hz.
Complex bilinear(Complex s, double fs) {
  const double k = 2.0 * fs;
  return (k + s) / (k - s);
}

// Angular pre-warp so analog edge frequencies land exactly on the digital
// design frequencies after the bilinear transform.
double prewarp(double f_hz, double fs) {
  return 2.0 * fs * std::tan(kPi * f_hz / fs);
}

// Digital angular frequency a warped analog frequency maps back to.
double unwarp(double w_analog, double fs) {
  return 2.0 * std::atan(w_analog / (2.0 * fs));
}

BiquadSection section_from_conjugate_pole(Complex zp, double b0, double b1,
                                          double b2) {
  BiquadSection s;
  s.b0 = b0;
  s.b1 = b1;
  s.b2 = b2;
  s.a1 = -2.0 * zp.real();
  s.a2 = std::norm(zp);
  return s;
}

BiquadSection section_from_real_poles(double z1, double z2, double b0,
                                      double b1, double b2) {
  BiquadSection s;
  s.b0 = b0;
  s.b1 = b1;
  s.b2 = b2;
  s.a1 = -(z1 + z2);
  s.a2 = z1 * z2;
  return s;
}

void check_edge(double f_hz, double sample_rate, const char* what) {
  if (f_hz <= 0.0 || f_hz >= sample_rate / 2.0)
    throw std::invalid_argument(std::string("butterworth: ") + what +
                                " must lie in (0, fs/2)");
}

}  // namespace

SosCascade butterworth_bandpass(std::size_t order, double low_hz,
                                double high_hz, double sample_rate) {
  if (order == 0) throw std::invalid_argument("butterworth: order must be >=1");
  check_edge(low_hz, sample_rate, "low edge");
  check_edge(high_hz, sample_rate, "high edge");
  if (low_hz >= high_hz)
    throw std::invalid_argument("butterworth: low edge must be < high edge");

  const double fs = sample_rate;
  const double w1 = prewarp(low_hz, fs);
  const double w2 = prewarp(high_hz, fs);
  const double w0 = std::sqrt(w1 * w2);  // analog center
  const double bw = w2 - w1;

  std::vector<BiquadSection> sections;
  sections.reserve(order);

  // Band-pass transform s -> (s^2 + w0^2) / (bw * s): each prototype pole p
  // maps to the two roots of s^2 - p*bw*s + w0^2 = 0. Conjugate prototype
  // pairs produce conjugate band-pass pairs, so it suffices to process each
  // prototype pole with Im >= 0 once.
  for (const Complex& p : prototype_poles(order)) {
    if (p.imag() < -1e-12) continue;  // conjugate handled with its partner
    const Complex pb = p * bw;
    const Complex disc = std::sqrt(pb * pb - 4.0 * w0 * w0);
    const Complex s1 = 0.5 * (pb + disc);
    const Complex s2 = 0.5 * (pb - disc);
    // Numerator of every band-pass section is (z-1)(z+1) = z^2 - 1: one of
    // the n zeros at DC and one of the n at Nyquist.
    if (std::abs(p.imag()) < 1e-12) {
      // Real prototype pole (odd order): s1, s2 are either both real or a
      // conjugate pair; either way they form one section together.
      if (std::abs(disc.imag()) < 1e-12 && disc.real() >= 0.0) {
        const Complex z1 = bilinear(s1, fs);
        const Complex z2 = bilinear(s2, fs);
        sections.push_back(
            section_from_real_poles(z1.real(), z2.real(), 1.0, 0.0, -1.0));
      } else {
        sections.push_back(
            section_from_conjugate_pole(bilinear(s1, fs), 1.0, 0.0, -1.0));
      }
    } else {
      // Complex prototype pole: its conjugate partner contributes the
      // conjugates of s1 and s2, so each of s1, s2 seeds its own section.
      sections.push_back(
          section_from_conjugate_pole(bilinear(s1, fs), 1.0, 0.0, -1.0));
      sections.push_back(
          section_from_conjugate_pole(bilinear(s2, fs), 1.0, 0.0, -1.0));
    }
  }

  SosCascade cascade(std::move(sections), 1.0);
  // Unit gain at the (digital image of the) analog center frequency.
  const double w0d = unwarp(w0, fs);
  const double mag = std::abs(cascade.response(w0d));
  if (mag > 0.0) cascade.set_gain(1.0 / mag);
  return cascade;
}

SosCascade butterworth_lowpass(std::size_t order, double cutoff_hz,
                               double sample_rate) {
  if (order == 0) throw std::invalid_argument("butterworth: order must be >=1");
  check_edge(cutoff_hz, sample_rate, "cutoff");
  const double fs = sample_rate;
  const double wc = prewarp(cutoff_hz, fs);

  std::vector<BiquadSection> sections;
  for (const Complex& p : prototype_poles(order)) {
    if (p.imag() < -1e-12) continue;
    const Complex zp = bilinear(p * wc, fs);
    if (std::abs(p.imag()) < 1e-12) {
      // Real pole: first-order section with zero at z = -1.
      BiquadSection s;
      s.b0 = 1.0;
      s.b1 = 1.0;
      s.b2 = 0.0;
      s.a1 = -zp.real();
      s.a2 = 0.0;
      sections.push_back(s);
    } else {
      // Conjugate pair with double zero at z = -1.
      sections.push_back(section_from_conjugate_pole(zp, 1.0, 2.0, 1.0));
    }
  }
  SosCascade cascade(std::move(sections), 1.0);
  const double mag = std::abs(cascade.response(0.0));
  if (mag > 0.0) cascade.set_gain(1.0 / mag);
  return cascade;
}

SosCascade butterworth_highpass(std::size_t order, double cutoff_hz,
                                double sample_rate) {
  if (order == 0) throw std::invalid_argument("butterworth: order must be >=1");
  check_edge(cutoff_hz, sample_rate, "cutoff");
  const double fs = sample_rate;
  const double wc = prewarp(cutoff_hz, fs);

  std::vector<BiquadSection> sections;
  for (const Complex& p : prototype_poles(order)) {
    if (p.imag() < -1e-12) continue;
    // High-pass transform s -> wc / s.
    const Complex zp = bilinear(wc / p, fs);
    if (std::abs(p.imag()) < 1e-12) {
      BiquadSection s;
      s.b0 = 1.0;
      s.b1 = -1.0;
      s.b2 = 0.0;
      s.a1 = -zp.real();
      s.a2 = 0.0;
      sections.push_back(s);
    } else {
      sections.push_back(section_from_conjugate_pole(zp, 1.0, -2.0, 1.0));
    }
  }
  SosCascade cascade(std::move(sections), 1.0);
  const double mag = std::abs(cascade.response(kPi));
  if (mag > 0.0) cascade.set_gain(1.0 / mag);
  return cascade;
}

}  // namespace echoimage::dsp
