// Rational sample-rate conversion (windowed-sinc polyphase).
//
// Recordings arrive at whatever rate the capture device used (44.1 kHz is
// common); the EchoImage pipeline is calibrated for 48 kHz. This module
// converts between rates with a Kaiser-windowed sinc interpolator.
#pragma once

#include <cstddef>

#include "dsp/signal.hpp"

namespace echoimage::dsp {

struct ResampleParams {
  /// Half-width of the sinc kernel in *input* samples at the lower of the
  /// two rates; larger = sharper transition, more CPU.
  std::size_t kernel_half_width = 16;
  /// Kaiser window beta (8.6 ~ 80 dB stop-band).
  double kaiser_beta = 8.6;
};

/// Resample `x` from `in_rate` to `out_rate`. Output length is
/// round(n * out_rate / in_rate). Throws std::invalid_argument for
/// non-positive rates. Identity rates return a copy.
[[nodiscard]] Signal resample(std::span<const Sample> x, double in_rate,
                              double out_rate,
                              const ResampleParams& params = {});

/// Convenience for multichannel captures.
[[nodiscard]] MultiChannelSignal resample(const MultiChannelSignal& x,
                                          double in_rate, double out_rate,
                                          const ResampleParams& params = {});

/// Zeroth-order modified Bessel function of the first kind (for the Kaiser
/// window; exposed for testing).
[[nodiscard]] double bessel_i0(double x);

}  // namespace echoimage::dsp
