#include "dsp/window.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace echoimage::dsp {

double window_value(WindowType type, double u, double tukey_alpha) {
  if (u < 0.0 || u > 1.0) return 0.0;
  constexpr double pi = std::numbers::pi;
  switch (type) {
    case WindowType::kRectangular:
      return 1.0;
    case WindowType::kHann:
      return 0.5 - 0.5 * std::cos(2.0 * pi * u);
    case WindowType::kHamming:
      return 0.54 - 0.46 * std::cos(2.0 * pi * u);
    case WindowType::kBlackman:
      return 0.42 - 0.5 * std::cos(2.0 * pi * u) +
             0.08 * std::cos(4.0 * pi * u);
    case WindowType::kTukey: {
      const double a = std::clamp(tukey_alpha, 0.0, 1.0);
      if (a <= 0.0) return 1.0;
      if (u < a / 2.0)
        return 0.5 * (1.0 + std::cos(pi * (2.0 * u / a - 1.0)));
      if (u > 1.0 - a / 2.0)
        return 0.5 * (1.0 + std::cos(pi * (2.0 * (1.0 - u) / a - 1.0)));
      return 1.0;
    }
  }
  throw std::invalid_argument("window_value: unknown window type");
}

Signal make_window(WindowType type, std::size_t n, double tukey_alpha) {
  Signal w(n);
  if (n == 0) return w;
  if (n == 1) {
    w[0] = window_value(type, 0.5, tukey_alpha);
    return w;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(n - 1);
    w[i] = window_value(type, u, tukey_alpha);
  }
  return w;
}

void apply_window(Signal& x, std::span<const Sample> w) {
  if (x.size() != w.size())
    throw std::invalid_argument("apply_window: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= w[i];
}

}  // namespace echoimage::dsp
