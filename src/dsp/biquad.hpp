// Second-order IIR sections and cascades.
//
// The EchoImage front-end band-passes every capture to the 2–3 kHz probing
// band (paper Sec. V-B) before beamforming. Filters are expressed as
// cascades of biquads (second-order sections) for numerical robustness.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/signal.hpp"

namespace echoimage::dsp {

/// One direct-form-II-transposed second-order section:
///   y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
/// (a0 normalized to 1).
struct BiquadSection {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;

  /// Complex frequency response at normalized angular frequency w
  /// (radians/sample).
  [[nodiscard]] Complex response(double w) const;

  /// True when both poles lie strictly inside the unit circle.
  [[nodiscard]] bool is_stable() const;
};

/// Cascade of biquad sections with an overall gain.
class SosCascade {
 public:
  SosCascade() = default;
  explicit SosCascade(std::vector<BiquadSection> sections, double gain = 1.0);

  [[nodiscard]] const std::vector<BiquadSection>& sections() const {
    return sections_;
  }
  [[nodiscard]] double gain() const { return gain_; }
  void set_gain(double g) { gain_ = g; }
  [[nodiscard]] bool is_stable() const;

  /// Complex frequency response at normalized angular frequency w.
  [[nodiscard]] Complex response(double w) const;

  /// Magnitude response at `freq_hz` given `sample_rate`.
  [[nodiscard]] double magnitude_at(double freq_hz, double sample_rate) const;

  /// Causal filtering with zero initial state.
  [[nodiscard]] Signal filter(std::span<const Sample> x) const;

  /// Zero-phase filtering (forward + time-reversed pass) with odd-reflection
  /// edge padding; squares the magnitude response and cancels phase, which
  /// keeps matched-filter peak positions honest.
  [[nodiscard]] Signal filtfilt(std::span<const Sample> x) const;

  /// Lockstep multi-channel filter(): every equal-length channel advances
  /// through the cascade one frame at a time, vectorized across channels
  /// (simd sos_section kernel). Each channel's DF2T recurrence is
  /// independent, so the output is bit-identical to calling filter() per
  /// channel; ragged inputs fall back to exactly that.
  [[nodiscard]] std::vector<Signal> filter_multi(
      const std::vector<Signal>& x) const;

  /// Lockstep multi-channel filtfilt(); bit-identical to per-channel
  /// filtfilt() for the same reason.
  [[nodiscard]] std::vector<Signal> filtfilt_multi(
      const std::vector<Signal>& x) const;

 private:
  std::vector<BiquadSection> sections_;
  double gain_ = 1.0;
};

}  // namespace echoimage::dsp
