#include "dsp/peaks.hpp"

#include <algorithm>

namespace echoimage::dsp {

std::vector<Peak> find_peaks(std::span<const Sample> x,
                             std::size_t min_distance, double threshold) {
  std::vector<Peak> peaks;
  const std::size_t n = x.size();
  if (n == 0) return peaks;
  const std::size_t d = std::max<std::size_t>(min_distance, 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] <= threshold) continue;
    const std::size_t lo = i >= d ? i - d : 0;
    const std::size_t hi = std::min(n, i + d + 1);
    bool dominant = true;
    for (std::size_t j = lo; j < hi && dominant; ++j) {
      if (j == i) continue;
      // Strict dominance, with ties broken toward the earlier sample so a
      // flat-topped peak reports once.
      if (x[j] > x[i] || (x[j] == x[i] && j < i)) dominant = false;
    }
    if (dominant) peaks.push_back(Peak{i, x[i]});
  }
  return peaks;
}

std::vector<Peak> find_peaks_relative(std::span<const Sample> x,
                                      std::size_t min_distance,
                                      double relative_threshold) {
  if (x.empty()) return {};
  const double mx = *std::max_element(x.begin(), x.end());
  if (mx <= 0.0) return {};
  return find_peaks(x, min_distance, relative_threshold * mx);
}

Peak largest_peak_in_range(const std::vector<Peak>& peaks, std::size_t first,
                           std::size_t last) {
  Peak best{static_cast<std::size_t>(-1), 0.0};
  for (const Peak& p : peaks) {
    if (p.index < first || p.index >= last) continue;
    if (best.index == static_cast<std::size_t>(-1) || p.value > best.value)
      best = p;
  }
  return best;
}

}  // namespace echoimage::dsp
