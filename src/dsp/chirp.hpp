// Linear frequency modulated (LFM) chirp — the probing "beep" of EchoImage
// (paper Sec. III-B and V-A).
//
// The chirp has a closed form, so the simulator can evaluate a delayed copy
// s(t - tau) at arbitrary (fractional-sample) delays exactly, with no
// interpolation error. The same parameters drive the matched filter.
#pragma once

#include <cstddef>

#include "dsp/signal.hpp"
#include "dsp/window.hpp"
#include "units/units.hpp"

namespace echoimage::dsp {

namespace units = echoimage::units;

/// Parameters of the probing beep (paper Eq. 2 with start/stop frequency
/// parameterization: f(t) sweeps f_start -> f_end over `duration` seconds).
/// The sweep endpoints and duration are strong-typed: a sample rate or a
/// length can no longer be passed where a sweep frequency belongs.
struct ChirpParams {
  units::Hertz f_start{2000.0};   ///< Sweep start frequency (paper: 2 kHz).
  units::Hertz f_end{3000.0};     ///< Sweep end frequency (paper: 3 kHz).
  units::Seconds duration{0.002}; ///< Beep length (paper: ~2 ms).
  double amplitude = 1.0;         ///< Peak amplitude A.
  double tukey_alpha = 0.25;      ///< Edge taper to avoid spectral splatter.

  [[nodiscard]] units::Hertz center_frequency() const {
    return 0.5 * (f_start + f_end);
  }
  [[nodiscard]] units::Hertz bandwidth() const { return f_end - f_start; }
  /// Sweep slope k = B / T (Hz per second, paper Eq. 2).
  [[nodiscard]] units::HertzPerSecond sweep_rate() const {
    return bandwidth() / duration;
  }
  /// Validate ranges; throws std::invalid_argument when inconsistent.
  void validate() const;
};

/// Closed-form LFM chirp evaluator. Amplitude-windowed with a Tukey taper;
/// zero outside [0, duration].
class Chirp {
 public:
  explicit Chirp(ChirpParams params);

  [[nodiscard]] const ChirpParams& params() const { return params_; }

  /// s(t): instantaneous value at time t seconds (t measured from chirp
  /// onset). Exact for any real t, including fractional-sample delays.
  [[nodiscard]] double value_at(double t) const;

  /// Instantaneous frequency f(t) in Hz (clamped sweep).
  [[nodiscard]] double frequency_at(double t) const;

  /// Sampled chirp: n = round(duration * sample_rate) samples.
  [[nodiscard]] Signal sample(double sample_rate) const;

  /// Sampled delayed-and-scaled chirp g * s(t - delay) rendered into a
  /// buffer of `length` samples at `sample_rate`. Delay may be fractional.
  [[nodiscard]] Signal render_delayed(double sample_rate, std::size_t length,
                                      double delay_s, double gain) const;

  /// Accumulate g * s(t - delay) into an existing buffer (the simulator's
  /// inner loop). Only touches samples where the chirp is non-zero.
  /// `spectral_slope` models a frequency-dependent reflector: the
  /// instantaneous gain is scaled by (f(t)/f_center)^slope — exact for an
  /// LFM chirp, whose time axis sweeps frequency linearly.
  void add_delayed(Signal& buffer, double sample_rate, double delay_s,
                   double gain, double spectral_slope = 0.0) const;

 private:
  ChirpParams params_;
  double sweep_rate_;  ///< (f_end - f_start) / duration, Hz per second.
};

}  // namespace echoimage::dsp
