#include "dsp/biquad.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "simd/aligned.hpp"
#include "simd/kernels.hpp"

namespace echoimage::dsp {

Complex BiquadSection::response(double w) const {
  const Complex z1 = std::polar(1.0, -w);
  const Complex z2 = z1 * z1;
  return (b0 + b1 * z1 + b2 * z2) / (1.0 + a1 * z1 + a2 * z2);
}

bool BiquadSection::is_stable() const {
  // Jury stability criterion for a monic quadratic.
  return std::abs(a2) < 1.0 && std::abs(a1) < 1.0 + a2;
}

SosCascade::SosCascade(std::vector<BiquadSection> sections, double gain)
    : sections_(std::move(sections)), gain_(gain) {}

bool SosCascade::is_stable() const {
  return std::all_of(sections_.begin(), sections_.end(),
                     [](const BiquadSection& s) { return s.is_stable(); });
}

Complex SosCascade::response(double w) const {
  Complex h(gain_, 0.0);
  for (const BiquadSection& s : sections_) h *= s.response(w);
  return h;
}

double SosCascade::magnitude_at(double freq_hz, double sample_rate) const {
  const double w = 2.0 * std::numbers::pi * freq_hz / sample_rate;
  return std::abs(response(w));
}

Signal SosCascade::filter(std::span<const Sample> x) const {
  Signal y(x.begin(), x.end());
  for (const BiquadSection& s : sections_) {
    double z1 = 0.0, z2 = 0.0;  // direct form II transposed state
    for (double& v : y) {
      const double in = v;
      const double out = s.b0 * in + z1;
      z1 = s.b1 * in - s.a1 * out + z2;
      z2 = s.b2 * in - s.a2 * out;
      v = out;
    }
  }
  for (double& v : y) v *= gain_;
  return y;
}

Signal SosCascade::filtfilt(std::span<const Sample> x) const {
  if (x.empty()) return {};
  // Odd reflection about the end points suppresses edge transients
  // (same scheme as scipy.signal.filtfilt).
  const std::size_t pad = std::min<std::size_t>(
      x.size() > 1 ? x.size() - 1 : 0, 6 * sections_.size() + 12);
  Signal ext;
  ext.reserve(x.size() + 2 * pad);
  for (std::size_t i = 0; i < pad; ++i)
    ext.push_back(2.0 * x.front() - x[pad - i]);
  ext.insert(ext.end(), x.begin(), x.end());
  for (std::size_t i = 0; i < pad; ++i)
    ext.push_back(2.0 * x.back() - x[x.size() - 2 - i]);

  Signal fwd = filter(ext);
  std::reverse(fwd.begin(), fwd.end());
  Signal bwd = filter(fwd);
  std::reverse(bwd.begin(), bwd.end());

  return Signal(bwd.begin() + static_cast<std::ptrdiff_t>(pad),
                bwd.begin() + static_cast<std::ptrdiff_t>(pad + x.size()));
}

namespace {

bool is_rectangular(const std::vector<Signal>& x) {
  for (const Signal& c : x)
    if (c.size() != x.front().size()) return false;
  return true;
}

}  // namespace

std::vector<Signal> SosCascade::filter_multi(
    const std::vector<Signal>& x) const {
  if (x.empty()) return {};
  if (!is_rectangular(x) || x.size() < 2 || x.front().empty()) {
    std::vector<Signal> out;
    out.reserve(x.size());
    for (const Signal& c : x) out.push_back(filter(c));
    return out;
  }
  const std::size_t width = x.size();
  const std::size_t frames = x.front().size();
  // Channel-interleaved frames: packed[t * width + c] = x[c][t].
  simd::AlignedVector<double> packed(frames * width);
  for (std::size_t c = 0; c < width; ++c)
    for (std::size_t t = 0; t < frames; ++t) packed[t * width + c] = x[c][t];

  const simd::KernelTable& k = simd::kernels();
  simd::AlignedVector<double> z1(width), z2(width);
  for (const BiquadSection& s : sections_) {
    std::fill(z1.begin(), z1.end(), 0.0);
    std::fill(z2.begin(), z2.end(), 0.0);
    const simd::SosCoeffs c{s.b0, s.b1, s.b2, s.a1, s.a2};
    k.sos_section_f64(packed.data(), frames, width, c, z1.data(), z2.data());
  }
  k.scale_f64(packed.data(), packed.size(), gain_);

  std::vector<Signal> out(width, Signal(frames));
  for (std::size_t c = 0; c < width; ++c)
    for (std::size_t t = 0; t < frames; ++t) out[c][t] = packed[t * width + c];
  return out;
}

std::vector<Signal> SosCascade::filtfilt_multi(
    const std::vector<Signal>& x) const {
  if (x.empty()) return {};
  if (!is_rectangular(x) || x.size() < 2 || x.front().empty()) {
    std::vector<Signal> out;
    out.reserve(x.size());
    for (const Signal& c : x) out.push_back(filtfilt(c));
    return out;
  }
  const std::size_t n = x.front().size();
  const std::size_t pad = std::min<std::size_t>(
      n > 1 ? n - 1 : 0, 6 * sections_.size() + 12);
  std::vector<Signal> ext(x.size());
  for (std::size_t c = 0; c < x.size(); ++c) {
    const Signal& ch = x[c];
    Signal& e = ext[c];
    e.reserve(n + 2 * pad);
    for (std::size_t i = 0; i < pad; ++i)
      e.push_back(2.0 * ch.front() - ch[pad - i]);
    e.insert(e.end(), ch.begin(), ch.end());
    for (std::size_t i = 0; i < pad; ++i)
      e.push_back(2.0 * ch.back() - ch[ch.size() - 2 - i]);
  }

  std::vector<Signal> fwd = filter_multi(ext);
  for (Signal& c : fwd) std::reverse(c.begin(), c.end());
  std::vector<Signal> bwd = filter_multi(fwd);

  std::vector<Signal> out;
  out.reserve(x.size());
  for (Signal& c : bwd) {
    std::reverse(c.begin(), c.end());
    out.emplace_back(c.begin() + static_cast<std::ptrdiff_t>(pad),
                     c.begin() + static_cast<std::ptrdiff_t>(pad + n));
  }
  return out;
}

}  // namespace echoimage::dsp
