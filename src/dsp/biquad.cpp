#include "dsp/biquad.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace echoimage::dsp {

Complex BiquadSection::response(double w) const {
  const Complex z1 = std::polar(1.0, -w);
  const Complex z2 = z1 * z1;
  return (b0 + b1 * z1 + b2 * z2) / (1.0 + a1 * z1 + a2 * z2);
}

bool BiquadSection::is_stable() const {
  // Jury stability criterion for a monic quadratic.
  return std::abs(a2) < 1.0 && std::abs(a1) < 1.0 + a2;
}

SosCascade::SosCascade(std::vector<BiquadSection> sections, double gain)
    : sections_(std::move(sections)), gain_(gain) {}

bool SosCascade::is_stable() const {
  return std::all_of(sections_.begin(), sections_.end(),
                     [](const BiquadSection& s) { return s.is_stable(); });
}

Complex SosCascade::response(double w) const {
  Complex h(gain_, 0.0);
  for (const BiquadSection& s : sections_) h *= s.response(w);
  return h;
}

double SosCascade::magnitude_at(double freq_hz, double sample_rate) const {
  const double w = 2.0 * std::numbers::pi * freq_hz / sample_rate;
  return std::abs(response(w));
}

Signal SosCascade::filter(std::span<const Sample> x) const {
  Signal y(x.begin(), x.end());
  for (const BiquadSection& s : sections_) {
    double z1 = 0.0, z2 = 0.0;  // direct form II transposed state
    for (double& v : y) {
      const double in = v;
      const double out = s.b0 * in + z1;
      z1 = s.b1 * in - s.a1 * out + z2;
      z2 = s.b2 * in - s.a2 * out;
      v = out;
    }
  }
  for (double& v : y) v *= gain_;
  return y;
}

Signal SosCascade::filtfilt(std::span<const Sample> x) const {
  if (x.empty()) return {};
  // Odd reflection about the end points suppresses edge transients
  // (same scheme as scipy.signal.filtfilt).
  const std::size_t pad = std::min<std::size_t>(
      x.size() > 1 ? x.size() - 1 : 0, 6 * sections_.size() + 12);
  Signal ext;
  ext.reserve(x.size() + 2 * pad);
  for (std::size_t i = 0; i < pad; ++i)
    ext.push_back(2.0 * x.front() - x[pad - i]);
  ext.insert(ext.end(), x.begin(), x.end());
  for (std::size_t i = 0; i < pad; ++i)
    ext.push_back(2.0 * x.back() - x[x.size() - 2 - i]);

  Signal fwd = filter(ext);
  std::reverse(fwd.begin(), fwd.end());
  Signal bwd = filter(fwd);
  std::reverse(bwd.begin(), bwd.end());

  return Signal(bwd.begin() + static_cast<std::ptrdiff_t>(pad),
                bwd.begin() + static_cast<std::ptrdiff_t>(pad + x.size()));
}

}  // namespace echoimage::dsp
