#include "dsp/wav.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace echoimage::dsp {

namespace {

void put_u32(std::ostream& os, std::uint32_t v) {
  char b[4] = {static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
               static_cast<char>((v >> 16) & 0xFF),
               static_cast<char>((v >> 24) & 0xFF)};
  os.write(b, 4);
}

void put_u16(std::ostream& os, std::uint16_t v) {
  char b[2] = {static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF)};
  os.write(b, 2);
}

std::uint32_t get_u32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  if (!is) throw std::runtime_error("wav: truncated stream");
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint16_t get_u16(std::istream& is) {
  unsigned char b[2];
  is.read(reinterpret_cast<char*>(b), 2);
  if (!is) throw std::runtime_error("wav: truncated stream");
  return static_cast<std::uint16_t>(b[0] |
                                    (static_cast<std::uint16_t>(b[1]) << 8));
}

void expect_fourcc(std::istream& is, const char* cc) {
  char got[4];
  is.read(got, 4);
  if (!is || std::memcmp(got, cc, 4) != 0)
    throw std::runtime_error(std::string("wav: expected chunk '") + cc + "'");
}

}  // namespace

void write_wav(std::ostream& os, const WavData& data, WavEncoding encoding) {
  const auto& m = data.samples;
  if (m.num_channels() == 0 || m.length() == 0)
    throw std::invalid_argument("wav: nothing to write");
  if (!m.is_rectangular())
    throw std::invalid_argument("wav: ragged channels");

  const std::uint16_t channels = static_cast<std::uint16_t>(m.num_channels());
  const std::uint32_t frames = static_cast<std::uint32_t>(m.length());
  const std::uint16_t bytes_per_sample =
      encoding == WavEncoding::kPcm16 ? 2 : 4;
  const std::uint32_t data_bytes =
      frames * channels * bytes_per_sample;
  const auto rate = static_cast<std::uint32_t>(std::lround(data.sample_rate));

  os.write("RIFF", 4);
  put_u32(os, 36 + data_bytes);
  os.write("WAVE", 4);
  os.write("fmt ", 4);
  put_u32(os, 16);
  put_u16(os, static_cast<std::uint16_t>(encoding));
  put_u16(os, channels);
  put_u32(os, rate);
  put_u32(os, rate * channels * bytes_per_sample);
  put_u16(os, static_cast<std::uint16_t>(channels * bytes_per_sample));
  put_u16(os, static_cast<std::uint16_t>(bytes_per_sample * 8));
  os.write("data", 4);
  put_u32(os, data_bytes);

  for (std::uint32_t f = 0; f < frames; ++f) {
    for (std::uint16_t c = 0; c < channels; ++c) {
      const double v = m.channels[c][f];
      if (encoding == WavEncoding::kPcm16) {
        const double clipped = std::clamp(v, -1.0, 1.0);
        const auto s = static_cast<std::int16_t>(
            std::lround(clipped * 32767.0));
        put_u16(os, static_cast<std::uint16_t>(s));
      } else {
        const float fv = static_cast<float>(v);
        std::uint32_t bits;
        std::memcpy(&bits, &fv, 4);
        put_u32(os, bits);
      }
    }
  }
}

WavData read_wav(std::istream& is) {
  expect_fourcc(is, "RIFF");
  (void)get_u32(is);  // RIFF size (ignored; we trust chunk sizes)
  expect_fourcc(is, "WAVE");

  std::uint16_t format = 0, channels = 0, bits = 0;
  std::uint32_t rate = 0;
  bool have_fmt = false;
  WavData out;

  // Walk chunks until we find 'data' (skipping unknown chunks).
  while (true) {
    char cc[4];
    is.read(cc, 4);
    if (!is) throw std::runtime_error("wav: no data chunk");
    const std::uint32_t size = get_u32(is);
    if (std::memcmp(cc, "fmt ", 4) == 0) {
      format = get_u16(is);
      channels = get_u16(is);
      rate = get_u32(is);
      (void)get_u32(is);  // byte rate
      (void)get_u16(is);  // block align
      bits = get_u16(is);
      if (size > 16) is.ignore(size - 16);
      have_fmt = true;
    } else if (std::memcmp(cc, "data", 4) == 0) {
      if (!have_fmt) throw std::runtime_error("wav: data before fmt");
      if (channels == 0) throw std::runtime_error("wav: zero channels");
      const bool pcm16 = format == 1 && bits == 16;
      const bool f32 = format == 3 && bits == 32;
      if (!pcm16 && !f32)
        throw std::runtime_error("wav: unsupported encoding");
      const std::uint32_t bytes_per_sample = pcm16 ? 2 : 4;
      const std::uint32_t frames = size / (channels * bytes_per_sample);
      out.sample_rate = static_cast<double>(rate);
      // Grow incrementally and fail fast on truncation: the declared chunk
      // size is attacker-controlled and must not drive a huge upfront
      // allocation.
      out.samples.channels.assign(channels, Signal{});
      for (std::uint32_t f = 0; f < frames; ++f) {
        for (std::uint16_t c = 0; c < channels; ++c) {
          double v;
          if (pcm16) {
            const auto raw = static_cast<std::int16_t>(get_u16(is));
            v = static_cast<double>(raw) / 32767.0;
          } else {
            const std::uint32_t raw = get_u32(is);
            float fv;
            std::memcpy(&fv, &raw, 4);
            v = static_cast<double>(fv);
          }
          out.samples.channels[c].push_back(v);
        }
      }
      return out;
    } else {
      is.ignore(size + (size & 1));  // chunks are word-aligned
      if (!is) throw std::runtime_error("wav: truncated chunk");
    }
  }
}

void write_wav_file(const std::string& path, const WavData& data,
                    WavEncoding encoding) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("wav: cannot open for write: " + path);
  write_wav(os, data, encoding);
}

WavData read_wav_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("wav: cannot open for read: " + path);
  return read_wav(is);
}

}  // namespace echoimage::dsp
