// Scoped tracing spans: the per-session trace tree.
//
// A span is an RAII scope (`EI_SPAN(tracer, "imaging.grid_sweep")`) that
// records name, optional logical argument (band / row / attempt index),
// worker lane, start time, and duration. Spans nest: each worker lane keeps
// its own open-span stack, so a span's parent is the innermost open span on
// the same lane — or, for work fanned out across pool workers, an
// explicitly attached parent handle (the span that opened the parallel
// region). Lanes are written only by their own worker (keyed on
// runtime::current_worker()), so recording is lock-free and TSan-clean;
// export happens after the fork-join region has completed.
//
// Three exports:
//   * chrome_trace_json() — Chrome/Perfetto `trace_event` JSON (load via
//     chrome://tracing or ui.perfetto.dev); carries real timestamps.
//   * structure()         — the canonical, timing-free trace tree. Spans
//     are keyed on (name, arg) and children are sorted canonically, so the
//     bytes are identical for any worker count and any scheduling of a
//     seeded run. This is the golden-test oracle.
//   * summary()           — per-span-name aggregate timing table (count,
//     total, mean), sorted by name.
//
// Determinism contract for instrumentation sites: spans emitted from
// parallel regions must carry a logical `arg` that identifies the chunk
// (e.g. the grid row), and the (name, arg) multiset under one parent must
// not depend on the worker count — chunk by fixed grain, never by pool
// size. Sites that follow this make trace *structure* a seeded-run
// invariant even though timings and lane assignments are not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace echoimage::obs {

/// Identifies one recorded span: its lane plus the index within the lane.
/// `kNoParent` marks a root.
struct SpanHandle {
  std::uint32_t lane = 0xFFFFFFFFu;
  std::uint32_t index = 0xFFFFFFFFu;

  [[nodiscard]] bool valid() const { return lane != 0xFFFFFFFFu; }
  bool operator==(const SpanHandle&) const = default;
};
inline constexpr SpanHandle kNoParent{};

struct TraceConfig {
  /// Trace lanes; worker indexes beyond this wrap. Size to the pool.
  std::size_t max_workers = 16;
  /// Events preallocated per lane so steady-state recording never
  /// allocates (a lane past its reserve grows amortized like any vector).
  std::size_t reserve_per_lane = 4096;
};

struct TraceEvent {
  const char* name = "";        ///< static string (span taxonomy)
  std::uint64_t arg = 0;        ///< logical index (band, row, attempt)
  bool has_arg = false;
  SpanHandle parent = kNoParent;
  std::uint64_t start_ns = 0;   ///< steady-clock, excluded from structure
  std::uint64_t duration_ns = 0;
};

class Tracer {
 public:
  explicit Tracer(TraceConfig config = {});

  [[nodiscard]] const TraceConfig& config() const { return config_; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  /// Flip recording. Only call while no spans are open (between sessions).
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Open a span on the calling worker's lane. Parent resolution: the
  /// lane's innermost open span when one exists, otherwise `attach` (the
  /// cross-lane parent a parallel region passes into its workers).
  [[nodiscard]] SpanHandle begin(const char* name, bool has_arg = false,
                                 std::uint64_t arg = 0,
                                 SpanHandle attach = kNoParent) const;
  void end(SpanHandle handle) const;

  /// Drop all recorded spans (lane reserves survive).
  void clear() const;

  [[nodiscard]] std::size_t num_events() const;
  [[nodiscard]] const std::vector<TraceEvent>& lane_events(
      std::size_t lane) const {
    return lanes_[lane].events;
  }
  [[nodiscard]] std::size_t num_lanes() const { return lanes_.size(); }

  /// Chrome `trace_event` JSON with real timestamps (microseconds,
  /// rebased so the earliest span starts at 0; lanes become tids).
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Canonical timing-free tree: one line per span, two-space indent per
  /// depth, `name[arg]` labels, children sorted by (name, arg, recording
  /// order). Byte-identical across runs and worker counts for sites that
  /// follow the determinism contract above.
  [[nodiscard]] std::string structure() const;

  /// Per-name aggregate: count, total ms, mean ms — sorted by name.
  [[nodiscard]] std::string summary() const;

 private:
  struct alignas(64) Lane {
    std::vector<TraceEvent> events;
    std::vector<std::uint32_t> open;  ///< indices of open spans, innermost last
  };

  TraceConfig config_;
  bool enabled_ = true;
  // Mutable: recording into the caller's own lane is observational state,
  // reachable from const pipeline stages. Deliberately NOT a lock-guarded
  // capability: the synchronization discipline is lane ownership — lane k
  // is written only by the worker with current_worker() == k (the vector
  // itself is sized at construction and never reshaped), and the exports
  // read all lanes only after the fork-join region has completed, with the
  // pool's own join as the happens-before edge. A sync::Mutex here would
  // put a contended acquire on every span begin/end in the imaging hot
  // path for a race that the ownership rule already excludes (and the TSan
  // lane audits).
  mutable std::vector<Lane> lanes_;
};

/// RAII span guard. A null tracer (observability off) or a disabled one
/// reduces the whole scope to two branches and no stores.
class ScopedSpan {
 public:
  ScopedSpan(const Tracer* tracer, const char* name)
      : tracer_(resolve(tracer)) {
    if (tracer_ != nullptr) handle_ = tracer_->begin(name);
  }
  ScopedSpan(const Tracer* tracer, const char* name, std::uint64_t arg)
      : tracer_(resolve(tracer)) {
    if (tracer_ != nullptr) handle_ = tracer_->begin(name, true, arg);
  }
  ScopedSpan(const Tracer* tracer, const char* name, std::uint64_t arg,
             SpanHandle attach)
      : tracer_(resolve(tracer)) {
    if (tracer_ != nullptr) handle_ = tracer_->begin(name, true, arg, attach);
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end(handle_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Handle for attaching cross-lane children (invalid when not tracing).
  [[nodiscard]] SpanHandle handle() const { return handle_; }

 private:
  static const Tracer* resolve(const Tracer* tracer) {
    return tracer != nullptr && tracer->enabled() ? tracer : nullptr;
  }

  const Tracer* tracer_;
  SpanHandle handle_;
};

#define EI_SPAN_CAT2(a, b) a##b
#define EI_SPAN_CAT(a, b) EI_SPAN_CAT2(a, b)
/// EI_SPAN(tracer, "name"), EI_SPAN(tracer, "name", arg), or
/// EI_SPAN(tracer, "name", arg, attach_handle).
#define EI_SPAN(...) \
  const ::echoimage::obs::ScopedSpan EI_SPAN_CAT(ei_span_, __LINE__)(__VA_ARGS__)
/// Named variant when the handle is needed for cross-lane attachment.
#define EI_SPAN_NAMED(var, ...) \
  const ::echoimage::obs::ScopedSpan var(__VA_ARGS__)

}  // namespace echoimage::obs
