// Observability bundle: one metrics registry plus one tracer, sized to the
// worker count of the pool that will feed them.
//
// Subsystems hold a `std::shared_ptr<const Observability>` (null when
// observability is off — the default). Every instrumentation site therefore
// reduces, when off, to a null-pointer test: spans construct a no-op guard,
// and counter handles resolved at attach time are null. Nothing allocates,
// nothing synchronizes, and the numeric pipeline is untouched — the
// invariance test pins golden images bit-identical with observability on
// and off.
//
// The deterministic exports live here too: `structural_report()` combines
// the canonical trace tree with counter totals and histogram counts (the
// parts of a seeded run that are invariant across worker counts), which is
// what the golden trace test and `cli trace` diff byte-for-byte.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace echoimage::obs {

struct ObservabilityConfig {
  /// Master switch. Off (default) means no Observability object is built
  /// at all; pipelines see a null pointer and skip every site.
  bool enabled = false;
  /// Worker count the registry shards and trace lanes are sized to.
  /// 0 = resolve from the machine like runtime::resolve_workers.
  std::size_t workers = 0;
  /// Per-lane trace event preallocation (see TraceConfig).
  std::size_t trace_reserve = 4096;

  [[nodiscard]] bool operator==(const ObservabilityConfig&) const = default;
};

class Observability {
 public:
  explicit Observability(ObservabilityConfig config = {});

  [[nodiscard]] const ObservabilityConfig& config() const { return config_; }

  /// Registration interface (get-or-create); mutable because registering
  /// metrics extends the registry, unlike recording into them.
  [[nodiscard]] MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }

  /// Convenience for instrumentation sites: tracer pointer that is null
  /// exactly when `obs` is null, so `EI_SPAN(obs::tracer_of(obs_), ...)`
  /// works unconditionally.
  [[nodiscard]] static const Tracer* tracer_of(const Observability* obs) {
    return obs != nullptr ? &obs->tracer_ : nullptr;
  }

  /// Canonical deterministic report: the timing-free trace tree followed by
  /// counter totals and histogram observation counts (gauges by name only —
  /// their values may be timing-derived). Byte-identical across runs and
  /// worker counts for a seeded scenario.
  [[nodiscard]] std::string structural_report() const;

  /// Start a fresh session: drop recorded spans, zero counters/histograms.
  void reset() const;

 private:
  ObservabilityConfig config_;
  mutable MetricsRegistry metrics_;
  Tracer tracer_;
};

/// Build the bundle a SystemConfig asks for: null when disabled, so the
/// null-pointer convention above holds everywhere.
[[nodiscard]] std::shared_ptr<const Observability> make_observability(
    const ObservabilityConfig& config);

}  // namespace echoimage::obs
