#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace echoimage::obs {

namespace {

template <typename T>
const T* find_by_name(const std::vector<std::unique_ptr<T>>& list,
                      std::string_view name) {
  for (const auto& m : list)
    if (m->name() == name) return m.get();
  return nullptr;
}

template <typename T>
std::vector<const T*> sorted_view(const std::vector<std::unique_ptr<T>>& list) {
  std::vector<const T*> out;
  out.reserve(list.size());
  for (const auto& m : list) out.push_back(m.get());
  std::sort(out.begin(), out.end(),
            [](const T* a, const T* b) { return a->name() < b->name(); });
  return out;
}

}  // namespace

MetricsRegistry::MetricsRegistry(MetricsConfig config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
}

const Counter& MetricsRegistry::counter(std::string_view name) {
  const echoimage::runtime::LockedRegion region(lock_);
  if (const Counter* existing = find_by_name(counters_, name))
    return *existing;
  counters_.push_back(std::unique_ptr<Counter>(
      new Counter(std::string(name), config_.shards)));
  return *counters_.back();
}

const Gauge& MetricsRegistry::gauge(std::string_view name) {
  const echoimage::runtime::LockedRegion region(lock_);
  if (const Gauge* existing = find_by_name(gauges_, name)) return *existing;
  gauges_.push_back(std::unique_ptr<Gauge>(new Gauge(std::string(name))));
  return *gauges_.back();
}

const Histogram& MetricsRegistry::histogram(std::string_view name,
                                            std::vector<double> bounds) {
  const echoimage::runtime::LockedRegion region(lock_);
  if (const Histogram* existing = find_by_name(histograms_, name))
    return *existing;
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  histograms_.push_back(std::unique_ptr<Histogram>(
      new Histogram(std::string(name), std::move(bounds), config_.shards)));
  return *histograms_.back();
}

std::vector<const Counter*> MetricsRegistry::counters() const {
  const echoimage::runtime::LockedRegion region(lock_);
  return sorted_view(counters_);
}

std::vector<const Gauge*> MetricsRegistry::gauges() const {
  const echoimage::runtime::LockedRegion region(lock_);
  return sorted_view(gauges_);
}

std::vector<const Histogram*> MetricsRegistry::histograms() const {
  const echoimage::runtime::LockedRegion region(lock_);
  return sorted_view(histograms_);
}

std::string MetricsRegistry::render_text() const {
  std::ostringstream os;
  for (const Counter* c : counters())
    os << "counter " << c->name() << " " << c->value() << "\n";
  for (const Gauge* g : gauges())
    os << "gauge " << g->name() << " " << g->value() << "\n";
  for (const Histogram* h : histograms()) {
    os << "histogram " << h->name() << " count=" << h->count() << " buckets=[";
    for (std::size_t b = 0; b < h->num_buckets(); ++b)
      os << (b > 0 ? " " : "") << h->bucket_count(b);
    os << "]\n";
  }
  return os.str();
}

void MetricsRegistry::reset_counters() const {
  const echoimage::runtime::LockedRegion region(lock_);
  for (const auto& c : counters_) c->reset();
  for (const auto& h : histograms_) h->reset();
}

}  // namespace echoimage::obs
