#include "obs/observability.hpp"

#include <sstream>

namespace echoimage::obs {

namespace {

MetricsConfig metrics_config_for(const ObservabilityConfig& config,
                                 std::size_t workers) {
  MetricsConfig mc;
  mc.shards = workers;
  (void)config;
  return mc;
}

TraceConfig trace_config_for(const ObservabilityConfig& config,
                             std::size_t workers) {
  TraceConfig tc;
  tc.max_workers = workers;
  tc.reserve_per_lane = config.trace_reserve;
  return tc;
}

}  // namespace

Observability::Observability(ObservabilityConfig config)
    : config_(config),
      metrics_(metrics_config_for(
          config_, echoimage::runtime::resolve_workers(config_.workers))),
      tracer_(trace_config_for(
          config_, echoimage::runtime::resolve_workers(config_.workers))) {}

std::string Observability::structural_report() const {
  std::ostringstream os;
  os << "-- spans --\n" << tracer_.structure();
  os << "-- counters --\n";
  for (const Counter* c : metrics_.counters())
    os << c->name() << " = " << c->value() << "\n";
  os << "-- histograms --\n";
  for (const Histogram* h : metrics_.histograms())
    os << h->name() << " count=" << h->count() << "\n";
  os << "-- gauges --\n";
  for (const Gauge* g : metrics_.gauges()) os << g->name() << "\n";
  return os.str();
}

void Observability::reset() const {
  tracer_.clear();
  metrics_.reset_counters();
}

std::shared_ptr<const Observability> make_observability(
    const ObservabilityConfig& config) {
  if (!config.enabled) return nullptr;
  return std::make_shared<const Observability>(config);
}

}  // namespace echoimage::obs
