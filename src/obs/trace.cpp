#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iomanip>
#include <sstream>

namespace echoimage::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Tracer::Tracer(TraceConfig config) : config_(config) {
  if (config_.max_workers == 0) config_.max_workers = 1;
  lanes_.resize(config_.max_workers);
  for (Lane& lane : lanes_) {
    lane.events.reserve(config_.reserve_per_lane);
    lane.open.reserve(64);
  }
}

SpanHandle Tracer::begin(const char* name, bool has_arg, std::uint64_t arg,
                         SpanHandle attach) const {
  if (!enabled_) return kNoParent;
  const std::uint32_t lane_index = static_cast<std::uint32_t>(
      echoimage::runtime::current_worker() % lanes_.size());
  Lane& lane = lanes_[lane_index];
  TraceEvent event;
  event.name = name;
  event.arg = arg;
  event.has_arg = has_arg;
  event.parent = lane.open.empty()
                     ? attach
                     : SpanHandle{lane_index, lane.open.back()};
  event.start_ns = now_ns();
  const std::uint32_t index = static_cast<std::uint32_t>(lane.events.size());
  lane.events.push_back(event);
  lane.open.push_back(index);
  return SpanHandle{lane_index, index};
}

void Tracer::end(SpanHandle handle) const {
  if (!handle.valid() || handle.lane >= lanes_.size()) return;
  Lane& lane = lanes_[handle.lane];
  if (handle.index >= lane.events.size()) return;
  TraceEvent& event = lane.events[handle.index];
  event.duration_ns = now_ns() - event.start_ns;
  // RAII guarantees LIFO per lane; tolerate out-of-order ends anyway.
  for (std::size_t i = lane.open.size(); i-- > 0;) {
    if (lane.open[i] == handle.index) {
      lane.open.erase(lane.open.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

void Tracer::clear() const {
  for (Lane& lane : lanes_) {
    lane.events.clear();  // keeps capacity: steady-state stays alloc-free
    lane.open.clear();
  }
}

std::size_t Tracer::num_events() const {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.events.size();
  return total;
}

std::string Tracer::chrome_trace_json() const {
  std::uint64_t epoch = 0;
  bool first = true;
  for (const Lane& lane : lanes_) {
    for (const TraceEvent& e : lane.events) {
      if (first || e.start_ns < epoch) epoch = e.start_ns;
      first = false;
    }
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "{\"traceEvents\":[";
  bool first_event = true;
  for (std::size_t lane_index = 0; lane_index < lanes_.size(); ++lane_index) {
    for (const TraceEvent& e : lanes_[lane_index].events) {
      if (!first_event) os << ",";
      first_event = false;
      os << "\n{\"name\":\"" << e.name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
         << lane_index << ",\"ts\":"
         << static_cast<double>(e.start_ns - epoch) / 1000.0 << ",\"dur\":"
         << static_cast<double>(e.duration_ns) / 1000.0;
      if (e.has_arg) os << ",\"args\":{\"arg\":" << e.arg << "}";
      os << "}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

namespace {

struct Node {
  const TraceEvent* event = nullptr;
  SpanHandle handle;
  std::vector<std::size_t> children;  ///< indexes into the node table
};

void append_label(std::ostringstream& os, const TraceEvent& e, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << e.name;
  if (e.has_arg) os << "[" << e.arg << "]";
  os << "\n";
}

void sort_canonical(std::vector<std::size_t>& order,
                    const std::vector<Node>& nodes) {
  std::stable_sort(order.begin(), order.end(),
                   [&nodes](std::size_t a, std::size_t b) {
                     const TraceEvent& ea = *nodes[a].event;
                     const TraceEvent& eb = *nodes[b].event;
                     const int name_cmp = std::strcmp(ea.name, eb.name);
                     if (name_cmp != 0) return name_cmp < 0;
                     if (ea.has_arg != eb.has_arg) return !ea.has_arg;
                     return ea.arg < eb.arg;
                   });
}

void emit_subtree(std::ostringstream& os, std::vector<Node>& nodes,
                  std::size_t node_index, int depth) {
  append_label(os, *nodes[node_index].event, depth);
  sort_canonical(nodes[node_index].children, nodes);
  // Copy: sort_canonical on a child mutates the node table we iterate.
  const std::vector<std::size_t> children = nodes[node_index].children;
  for (std::size_t child : children) emit_subtree(os, nodes, child, depth + 1);
}

}  // namespace

std::string Tracer::structure() const {
  std::vector<Node> nodes;
  nodes.reserve(num_events());
  // Handle -> node-table index; lane-major so lookup is a prefix sum.
  std::vector<std::size_t> lane_base(lanes_.size(), 0);
  for (std::size_t lane_index = 0; lane_index < lanes_.size(); ++lane_index) {
    lane_base[lane_index] = nodes.size();
    const auto& events = lanes_[lane_index].events;
    for (std::size_t i = 0; i < events.size(); ++i) {
      Node node;
      node.event = &events[i];
      node.handle = SpanHandle{static_cast<std::uint32_t>(lane_index),
                               static_cast<std::uint32_t>(i)};
      nodes.push_back(node);
    }
  }
  std::vector<std::size_t> roots;
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const SpanHandle parent = nodes[n].event->parent;
    if (!parent.valid()) {
      roots.push_back(n);
      continue;
    }
    const std::size_t parent_index = lane_base[parent.lane] + parent.index;
    nodes[parent_index].children.push_back(n);
  }
  std::ostringstream os;
  sort_canonical(roots, nodes);
  for (std::size_t root : roots) emit_subtree(os, nodes, root, 0);
  return os.str();
}

std::string Tracer::summary() const {
  struct Agg {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::vector<Agg> aggs;
  for (const Lane& lane : lanes_) {
    for (const TraceEvent& e : lane.events) {
      Agg* slot = nullptr;
      for (Agg& a : aggs)
        if (a.name == e.name) slot = &a;
      if (slot == nullptr) {
        aggs.push_back(Agg{e.name, 0, 0});
        slot = &aggs.back();
      }
      ++slot->count;
      slot->total_ns += e.duration_ns;
    }
  }
  std::sort(aggs.begin(), aggs.end(),
            [](const Agg& a, const Agg& b) { return a.name < b.name; });
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  for (const Agg& a : aggs) {
    const double total_ms = static_cast<double>(a.total_ns) / 1e6;
    os << a.name << " count=" << a.count << " total_ms=" << total_ms
       << " mean_ms=" << (a.count > 0 ? total_ms / static_cast<double>(a.count)
                                      : 0.0)
       << "\n";
  }
  return os.str();
}

}  // namespace echoimage::obs
