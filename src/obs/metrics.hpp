// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The registry is the one place live operational state is accounted:
// weight-cache hits, capture retries, drift quarantines, health-gate
// verdicts, per-stage latencies. Design constraints, in order:
//
//   * The imaging hot path must stay uncontended — counters are sharded
//     per pool worker (runtime::ShardedCounters) and an increment is one
//     relaxed atomic add into the caller's own cache line. Totals are
//     exact: merging shards on read loses nothing.
//   * Increments, observations, and gauge stores never allocate. All
//     storage is laid out when a metric is registered (startup); the
//     observability-off invariance test pins this with a counting
//     allocator.
//   * Everything is deterministic where the underlying computation is:
//     counter totals in a seeded run are part of the golden trace.
//
// Metric handles returned by the registry are stable for the registry's
// lifetime (metrics are never unregistered), so subsystems resolve their
// counters once at attach time and increment through the pointer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/sharded.hpp"

namespace echoimage::obs {

struct MetricsConfig {
  /// Counter shards. Sized to the worker count that will increment (one
  /// shard per worker keeps the hot path uncontended); any excess worker
  /// index wraps, which costs sharing, never correctness.
  std::size_t shards = 16;
};

/// Monotonic event count. Increment from any worker; read as the exact
/// merged total.
class Counter {
 public:
  void add(std::uint64_t delta = 1) const noexcept {
    cells_.add(echoimage::runtime::current_worker(), 0, delta);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return cells_.total(0);
  }
  void reset() const noexcept { cells_.reset(); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::size_t shards)
      : name_(std::move(name)), cells_(shards, 1) {}

  std::string name_;
  echoimage::runtime::ShardedCounters cells_;
};

/// Last-write-wins instantaneous value (queue depth, cache size, corrected
/// speed of sound). Writers are expected to be serialized — the guard in
/// runtime::LockedDouble only protects readers from torn loads.
class Gauge {
 public:
  void set(double value) const noexcept { value_.store(value); }
  [[nodiscard]] double value() const noexcept { return value_.load(); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  echoimage::runtime::LockedDouble value_;
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with an implicit +inf overflow bucket, so there are bounds.size() + 1
/// buckets and every observation lands in exactly one. Bucket counts are
/// sharded like counters; their sum always equals the observation count.
class Histogram {
 public:
  void observe(double value) const noexcept {
    std::size_t bucket = bounds_.size();  // overflow unless a bound fits
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (value <= bounds_[i]) {
        bucket = i;
        break;
      }
    }
    cells_.add(echoimage::runtime::current_worker(), bucket, 1);
  }
  [[nodiscard]] std::size_t num_buckets() const { return bounds_.size() + 1; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const noexcept {
    return cells_.total(bucket);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t b = 0; b < num_buckets(); ++b) sum += bucket_count(b);
    return sum;
  }
  void reset() const noexcept { cells_.reset(); }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds, std::size_t shards)
      : name_(std::move(name)),
        bounds_(std::move(bounds)),
        cells_(shards, bounds_.size() + 1) {}

  std::string name_;
  std::vector<double> bounds_;
  echoimage::runtime::ShardedCounters cells_;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(MetricsConfig config = {});

  [[nodiscard]] const MetricsConfig& config() const { return config_; }

  /// Get-or-create by name. Registration is serialized and allocates; the
  /// returned reference stays valid for the registry's lifetime, so
  /// subsystems resolve once at attach time. Re-requesting an existing
  /// histogram returns it unchanged (the bounds argument is ignored).
  [[nodiscard]] const Counter& counter(std::string_view name);
  [[nodiscard]] const Gauge& gauge(std::string_view name);
  [[nodiscard]] const Histogram& histogram(std::string_view name,
                                           std::vector<double> bounds);

  /// All registered metrics in name order (snapshot of the handle lists;
  /// values are read live through the handles).
  [[nodiscard]] std::vector<const Counter*> counters() const;
  [[nodiscard]] std::vector<const Gauge*> gauges() const;
  [[nodiscard]] std::vector<const Histogram*> histograms() const;

  /// Human-readable dump, one metric per line, sorted by name. Counter and
  /// histogram lines are deterministic for a seeded run; gauge lines carry
  /// live values.
  [[nodiscard]] std::string render_text() const;

  /// Zero all counters and histograms (gauges keep their last value).
  void reset_counters() const;

 private:
  MetricsConfig config_;
  /// Capability over registration and list snapshots. Metric *values* are
  /// not guarded by it: handles are stable and internally synchronized
  /// (sharded atomics / LockedDouble), so reads through them never take
  /// this lock.
  echoimage::runtime::RegionLock lock_;
  std::vector<std::unique_ptr<Counter>> counters_ EI_GUARDED_BY(lock_);
  std::vector<std::unique_ptr<Gauge>> gauges_ EI_GUARDED_BY(lock_);
  std::vector<std::unique_ptr<Histogram>> histograms_ EI_GUARDED_BY(lock_);
};

}  // namespace echoimage::obs
