// LRU cache of per-user verifiers for identification stage 2.
//
// Store lookups return pointers into the live generation that a commit
// invalidates; the cache instead holds *owned copies* of the verifiers it
// has resolved, so a cached entry stays valid while the Identifier decides
// when to drop the whole cache (generation change). Capacity bounds the
// resident verifier count — a 100k-user gallery must not end up with 100k
// hot SVDDs because each was shortlisted once.
//
// Hit/miss accounting is exact: the LRU state and both tallies live under
// one sync::Mutex capability, so the counts stay exact even if a future
// caller shares the cache across threads (today the Identifier drives it
// from the serial stage-2 loop and the lock is uncontended). Mirrored
// into obs counters when attached. Capacity 0 disables caching entirely:
// every get goes to the loader, which is the "cache off" arm of the
// determinism property suite (results must be bit-identical either way).
//
// Lock ordering: get() invokes the loader while holding the cache
// capability, and the Identifier's loader takes the TemplateStore's
// internal lock — so the project-wide order is VerifierCache::mutex_
// before TemplateStore::*mutex_ (DESIGN "Lock-capability model"). Loaders
// must not re-enter the cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "core/authenticator.hpp"
#include "obs/metrics.hpp"
#include "runtime/sync.hpp"

namespace echoimage::ident {

class VerifierCache {
 public:
  /// Resolves a user id to an owned verifier; null when the user has no
  /// loadable verifier (absent or quarantined — the caller distinguishes).
  /// Null results are never cached: absence must stay re-checkable.
  using Loader =
      std::function<std::shared_ptr<const core::Authenticator>(int user_id)>;

  VerifierCache(std::size_t capacity, Loader loader);

  /// Cached copy, or loader result (inserted when non-null and capacity
  /// allows, evicting least-recently-used entries).
  [[nodiscard]] std::shared_ptr<const core::Authenticator> get(int user_id);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const {
    const runtime::sync::LockGuard lock(mutex_);
    return entries_.size();
  }
  [[nodiscard]] std::uint64_t hits() const {
    const runtime::sync::LockGuard lock(mutex_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    const runtime::sync::LockGuard lock(mutex_);
    return misses_;
  }

  /// Drop every entry (generation change). Counters are cumulative and
  /// survive — they account the cache's lifetime, not one generation.
  void clear();

  /// Mirror hit/miss increments into registry counters (null = detach).
  void attach_counters(const obs::Counter* hits, const obs::Counter* misses);

 private:
  using Entry = std::pair<int, std::shared_ptr<const core::Authenticator>>;

  std::size_t capacity_;
  Loader loader_;
  /// Capability over the LRU state and tallies. Held across the loader
  /// call (see file header for the resulting lock order).
  runtime::sync::Mutex mutex_;
  /// Most-recently-used first.
  std::list<Entry> entries_ EI_GUARDED_BY(mutex_);
  std::unordered_map<int, std::list<Entry>::iterator> by_user_
      EI_GUARDED_BY(mutex_);
  std::uint64_t hits_ EI_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ EI_GUARDED_BY(mutex_) = 0;
  const obs::Counter* obs_hits_ = nullptr;
  const obs::Counter* obs_misses_ = nullptr;
};

}  // namespace echoimage::ident
