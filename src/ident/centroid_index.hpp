// Stage 1 of 1:N identification: the centroid prefilter index.
//
// A CentroidIndex is a contiguous row-major matrix of every enrolled
// user's centroid (one packed allocation, unit-stride rows — the layout
// the linalg/dense kernels vectorize over), snapshotted from the durable
// store at a known generation. Scoring a probe against the whole index is
// an O(N x d) pass parallelized over runtime::ThreadPool; every row's
// distance is written to its own slot, so the distance vector — and the
// shortlist derived from it — is bit-identical for any worker count.
//
// The index is a *snapshot*: it owns its rows and survives store commits.
// Staleness is cheap to detect (compare generation() against the store's)
// and the Identifier rebuilds on mismatch — identification never mixes
// two generations inside one probe.
//
// Threading contract (capability model, DESIGN "Lock-capability model"):
// an index is immutable after build — every field is written once by the
// builder and only read afterwards — so it carries no capability. The
// generation *rebuild* (swapping a fresh index in) is a mutation of the
// Identifier, which is externally serialized (one probe at a time; the
// serve layer's identify processor holds a RegionLock across each call).
// distances() writes each output slot from exactly one pool worker, with
// the pool's fork-join as the happens-before edges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "store/store.hpp"

namespace echoimage::ident {

/// Prefilter distance. Squared Euclidean is the default (monotone with
/// Euclidean, one multiply cheaper); cosine favors direction over energy
/// when session gain wanders.
enum class Metric { kSquaredEuclidean, kCosine };

[[nodiscard]] const char* to_string(Metric metric);

class CentroidIndex {
 public:
  CentroidIndex() = default;

  /// Adopt a store snapshot (see store::TemplateStore::centroid_snapshot).
  [[nodiscard]] static CentroidIndex build(store::CentroidSnapshot snapshot);

  /// Snapshot + build in one step.
  [[nodiscard]] static CentroidIndex from_store(
      const store::TemplateStore& store);

  /// Build from raw packed rows (the eval/gallery bulk export, benches).
  /// `user_ids` must be strictly ascending — the determinism contract pins
  /// row order to user-id order. Throws std::invalid_argument on shape
  /// mismatch or unordered ids.
  [[nodiscard]] static CentroidIndex from_rows(std::vector<int> user_ids,
                                               std::vector<double> matrix,
                                               std::size_t dims);

  [[nodiscard]] std::size_t size() const { return user_ids_.size(); }
  [[nodiscard]] std::size_t dims() const { return dims_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  /// Quarantined shards at snapshot time: nonzero means a probe nothing
  /// here matches may still be an enrolled user whose bytes are
  /// unreadable (see Identifier's abstain policy).
  [[nodiscard]] std::size_t quarantined_shards() const {
    return quarantined_shards_;
  }
  [[nodiscard]] int user_id(std::size_t row) const { return user_ids_[row]; }
  [[nodiscard]] const std::vector<int>& user_ids() const { return user_ids_; }
  [[nodiscard]] const double* row(std::size_t r) const {
    return matrix_.data() + r * dims_;
  }

  /// Distance of `query` to every row, into `out` (resized to size()).
  /// Parallelized over `pool`; each slot is written by exactly one worker,
  /// so the result is bit-identical for every worker count. Throws
  /// std::invalid_argument when the query dimension mismatches.
  void distances(const std::vector<double>& query, Metric metric,
                 runtime::ThreadPool& pool, std::vector<double>& out) const;

 private:
  std::uint64_t generation_ = 0;
  std::size_t dims_ = 0;
  std::vector<int> user_ids_;
  std::vector<double> matrix_;  ///< row-major size() x dims()
  std::vector<double> norms_;   ///< per-row Euclidean norms (cosine)
  std::size_t quarantined_shards_ = 0;
};

}  // namespace echoimage::ident
