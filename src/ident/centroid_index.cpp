#include "ident/centroid_index.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "linalg/dense.hpp"
#include "runtime/parallel_for.hpp"

namespace echoimage::ident {

const char* to_string(Metric metric) {
  switch (metric) {
    case Metric::kSquaredEuclidean:
      return "squared_euclidean";
    case Metric::kCosine:
      return "cosine";
  }
  return "unknown";
}

CentroidIndex CentroidIndex::build(store::CentroidSnapshot snapshot) {
  CentroidIndex index;
  index.generation_ = snapshot.generation;
  index.dims_ = snapshot.dims;
  index.user_ids_ = std::move(snapshot.user_ids);
  index.matrix_ = std::move(snapshot.matrix);
  index.quarantined_shards_ = snapshot.quarantined_shards;
  index.norms_ = linalg::row_norms(index.matrix_.data(),
                                   index.user_ids_.size(), index.dims_);
  return index;
}

CentroidIndex CentroidIndex::from_store(const store::TemplateStore& store) {
  return build(store.centroid_snapshot());
}

CentroidIndex CentroidIndex::from_rows(std::vector<int> user_ids,
                                       std::vector<double> matrix,
                                       std::size_t dims) {
  if (dims == 0) throw std::invalid_argument("CentroidIndex: dims must be > 0");
  if (matrix.size() != user_ids.size() * dims)
    throw std::invalid_argument(
        "CentroidIndex: matrix holds " + std::to_string(matrix.size()) +
        " doubles, expected " + std::to_string(user_ids.size()) + " x " +
        std::to_string(dims));
  for (std::size_t r = 1; r < user_ids.size(); ++r)
    if (user_ids[r - 1] >= user_ids[r])
      throw std::invalid_argument(
          "CentroidIndex: user_ids must be strictly ascending (row order is "
          "the determinism contract)");
  store::CentroidSnapshot snapshot;
  snapshot.dims = dims;
  snapshot.user_ids = std::move(user_ids);
  snapshot.matrix = std::move(matrix);
  return build(std::move(snapshot));
}

void CentroidIndex::distances(const std::vector<double>& query, Metric metric,
                              runtime::ThreadPool& pool,
                              std::vector<double>& out) const {
  if (size() != 0 && query.size() != dims_)
    throw std::invalid_argument(
        "CentroidIndex::distances: query has " +
        std::to_string(query.size()) + " dims, index has " +
        std::to_string(dims_));
  out.resize(size());
  if (size() == 0) return;

  const double* rows = matrix_.data();
  const double* q = query.data();
  const double query_norm =
      metric == Metric::kCosine
          ? std::sqrt(linalg::squared_norm(q, dims_))
          : 0.0;
  // One contiguous chunk per worker; each row's slot is written exactly
  // once, so the vector is bit-identical for every worker count.
  const std::size_t n = size();
  const std::size_t workers = std::min(pool.num_workers(), n);
  runtime::parallel_for(pool, workers, [&](std::size_t w, std::size_t) {
    const runtime::IndexRange r = runtime::static_chunk(n, w, workers);
    if (metric == Metric::kCosine) {
      linalg::row_cosine_distances(rows, norms_.data(), dims_, q, query_norm,
                                   r.first, r.last, out.data());
    } else {
      linalg::row_squared_distances(rows, dims_, q, r.first, r.last,
                                    out.data());
    }
  });
}

}  // namespace echoimage::ident
