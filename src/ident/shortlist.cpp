#include "ident/shortlist.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>
#include <string>

namespace echoimage::ident {

std::vector<Candidate> top_k_shortlist(const CentroidIndex& index,
                                       const std::vector<double>& distances,
                                       std::size_t k) {
  if (distances.size() != index.size())
    throw std::invalid_argument(
        "top_k_shortlist: " + std::to_string(distances.size()) +
        " distances for an index of " + std::to_string(index.size()));
  const std::size_t n = index.size();
  const std::size_t take = std::min(k, n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // (distance, row) is a strict total order — NaNs cannot occur (squared
  // distances of finite features; cosine guards zero norms) — so the
  // partially sorted prefix is unique regardless of how partial_sort
  // permutes the tail.
  const auto closer = [&](std::size_t a, std::size_t b) {
    if (distances[a] != distances[b]) return distances[a] < distances[b];
    return a < b;
  };
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(take),
                    order.end(), closer);

  std::vector<Candidate> shortlist(take);
  for (std::size_t i = 0; i < take; ++i) {
    shortlist[i].row = order[i];
    shortlist[i].user_id = index.user_id(order[i]);
    shortlist[i].distance = distances[order[i]];
  }
  return shortlist;
}

std::uint64_t mix_fingerprint(std::uint64_t acc, std::uint64_t value) {
  std::uint64_t z = acc + 0x9E3779B97F4A7C15ULL + value;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t shortlist_fingerprint(const std::vector<Candidate>& shortlist,
                                    std::uint64_t acc) {
  for (const Candidate& c : shortlist) {
    acc = mix_fingerprint(acc, static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(c.user_id)));
    acc = mix_fingerprint(acc, std::bit_cast<std::uint64_t>(c.distance));
  }
  return acc;
}

}  // namespace echoimage::ident
