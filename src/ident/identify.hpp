// Two-stage 1:N identification over the durable template gallery.
//
// "Who is speaking to me" against 100k+ enrolled users cannot afford one
// SVDD evaluation per user per probe. The Identifier splits the question:
//
//   Stage 1 (prefilter): score the probe against every stored centroid —
//     one contiguous O(N x d) linear-algebra pass (ident/centroid_index,
//     linalg/dense), parallelized over runtime::ThreadPool — and keep the
//     top-k shortlist with deterministic lowest-index tie-breaking.
//   Stage 2 (verify): run the expensive evidence only on the shortlist:
//     each candidate's own SVDD spoofer gate + calibrated verifier
//     (TemplateRecord's 1:1 authenticator, LRU-cached with exact hit/miss
//     accounting). The winner is the accepted candidate with the best
//     SVDD score; the shortlist order breaks exact ties.
//
// Honesty contract (the store's quarantine semantics, extended to 1:N):
// a quarantined shard removes its users from the index, so a probe of
// such a user matches nothing. Answering kUnknown would be a lie — the
// user may well be enrolled, just unreadable — so whenever no candidate
// verifies AND storage is degraded, the result is kAbstain with
// AbstainReason::kStorage. A probe that does verify against a healthy
// shard still identifies: corruption elsewhere must not blind the whole
// gallery. An abstain is never a wrong accept.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/authenticator.hpp"
#include "ident/centroid_index.hpp"
#include "ident/shortlist.hpp"
#include "ident/verifier_cache.hpp"
#include "obs/observability.hpp"
#include "runtime/thread_pool.hpp"
#include "store/store.hpp"

namespace echoimage::ident {

struct IdentConfig {
  /// Stage-1 shortlist size. k >= gallery size degrades to exhaustive
  /// search (every enrolled user verified).
  std::size_t shortlist_k = 16;
  Metric metric = Metric::kSquaredEuclidean;
  /// Prefilter workers (0 = one per hardware thread). The shortlist is
  /// bit-identical for every value.
  std::size_t num_threads = 1;
  /// Stage-2 verifier LRU capacity; 0 disables caching (results are
  /// bit-identical either way — the cache trades deserialization work,
  /// never answers).
  std::size_t verifier_cache = 256;

  void validate() const;  ///< throws std::invalid_argument
};

enum class IdentifyStatus {
  kIdentified,  ///< exactly one enrolled user verified best
  kUnknown,     ///< storage healthy, nobody on the shortlist verified
  kAbstain,     ///< storage degraded: "I cannot know" (never a wrong accept)
};

[[nodiscard]] const char* to_string(IdentifyStatus status);

struct IdentifyResult {
  IdentifyStatus status = IdentifyStatus::kUnknown;
  int user_id = -1;         ///< valid when kIdentified
  double svdd_score = 0.0;  ///< winning verifier's decision value
  double distance = 0.0;    ///< winner's stage-1 distance
  core::AbstainReason abstain_reason = core::AbstainReason::kNone;
  /// Stage-1 output, nearest first (shortlist[i].user_id etc.).
  std::vector<Candidate> shortlist;
  /// Stage-2 verifier evaluations actually run (<= shortlist size).
  std::size_t verifier_runs = 0;

  /// Decision-space view for callers speaking AuthDecision (the serve
  /// layer): identified -> accepted, unknown -> rejected, abstain ->
  /// abstained with the carried reason.
  [[nodiscard]] core::AuthDecision to_decision() const;
};

/// Threading contract (capability model, DESIGN "Lock-capability model"):
/// an Identifier serves one probe at a time — refresh() swaps the index
/// and clears the verifier cache, so callers serialize identify()/
/// refresh() externally (serve::make_identify_processor holds a
/// runtime::RegionLock across each call). The pieces an Identifier leans
/// on carry their own Clang-verified capabilities: the store's internal
/// SharedMutex and the verifier cache's Mutex (lock order: cache before
/// store — the loader runs under the cache lock).
class Identifier {
 public:
  /// The store must outlive the Identifier. `obs` null = observability off.
  Identifier(const store::TemplateStore& store, IdentConfig config = {},
             std::shared_ptr<const obs::Observability> obs = nullptr);

  void attach_observability(std::shared_ptr<const obs::Observability> obs);

  [[nodiscard]] const IdentConfig& config() const { return config_; }
  [[nodiscard]] const CentroidIndex& index() const { return index_; }
  [[nodiscard]] const VerifierCache& cache() const { return *cache_; }

  /// Rebuild the centroid index (and drop cached verifiers) iff the store
  /// has moved to a new generation since the last build. Returns true when
  /// a rebuild happened. identify() calls this itself; exposed so callers
  /// can pay the rebuild at a quiet moment.
  bool refresh();

  /// Identify one probe feature vector (the pipeline's per-image feature).
  [[nodiscard]] IdentifyResult identify(const std::vector<double>& feature);

 private:
  [[nodiscard]] std::shared_ptr<const core::Authenticator> load_verifier(
      int user_id);

  const store::TemplateStore* store_;
  IdentConfig config_;
  runtime::ThreadPool pool_;
  CentroidIndex index_;
  bool index_built_ = false;
  /// Stage-2 lookups that answered kQuarantined since the last rebuild:
  /// fsck may quarantine a shard *after* the index snapshot, and the
  /// abstain policy must see it without waiting for a commit.
  bool saw_quarantined_lookup_ = false;
  std::unique_ptr<VerifierCache> cache_;
  std::vector<double> distances_;  ///< reused stage-1 scratch

  std::shared_ptr<const obs::Observability> obs_;
  const obs::Tracer* tracer_ = nullptr;
  const obs::Counter* identified_ = nullptr;
  const obs::Counter* unknown_ = nullptr;
  const obs::Counter* abstained_storage_ = nullptr;
  const obs::Counter* rebuilds_ = nullptr;
  const obs::Histogram* shortlist_size_ = nullptr;
  const obs::Histogram* verifier_runs_hist_ = nullptr;
  const obs::Gauge* last_prefilter_s_ = nullptr;
  const obs::Gauge* last_verify_s_ = nullptr;
};

}  // namespace echoimage::ident
