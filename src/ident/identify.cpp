#include "ident/identify.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace echoimage::ident {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

const std::vector<double> kCountBuckets = {0,  1,  2,   4,   8,
                                           16, 32, 64, 128, 256};

}  // namespace

void IdentConfig::validate() const {
  if (shortlist_k == 0)
    throw std::invalid_argument(
        "IdentConfig: shortlist_k must be >= 1 (stage 2 needs candidates)");
}

const char* to_string(IdentifyStatus status) {
  switch (status) {
    case IdentifyStatus::kIdentified:
      return "identified";
    case IdentifyStatus::kUnknown:
      return "unknown";
    case IdentifyStatus::kAbstain:
      return "abstain";
  }
  return "invalid";
}

core::AuthDecision IdentifyResult::to_decision() const {
  switch (status) {
    case IdentifyStatus::kIdentified: {
      core::AuthDecision d;
      d.accepted = true;
      d.user_id = user_id;
      d.svdd_score = svdd_score;
      d.outcome = core::AuthOutcome::kAccepted;
      return d;
    }
    case IdentifyStatus::kUnknown:
      return core::AuthDecision{};  // rejected: provably nobody enrolled
    case IdentifyStatus::kAbstain:
      return core::AuthDecision::abstain(
          abstain_reason != core::AbstainReason::kNone
              ? abstain_reason
              : core::AbstainReason::kStorage);
  }
  return core::AuthDecision{};
}

Identifier::Identifier(const store::TemplateStore& store, IdentConfig config,
                       std::shared_ptr<const obs::Observability> obs)
    : store_(&store),
      config_((config.validate(), std::move(config))),
      pool_(runtime::resolve_workers(config_.num_threads)),
      cache_(std::make_unique<VerifierCache>(
          config_.verifier_cache,
          [this](int user_id) { return load_verifier(user_id); })) {
  attach_observability(std::move(obs));
}

void Identifier::attach_observability(
    std::shared_ptr<const obs::Observability> obs) {
  obs_ = std::move(obs);
  if (obs_ == nullptr) {
    tracer_ = nullptr;
    identified_ = unknown_ = abstained_storage_ = rebuilds_ = nullptr;
    shortlist_size_ = verifier_runs_hist_ = nullptr;
    last_prefilter_s_ = last_verify_s_ = nullptr;
    cache_->attach_counters(nullptr, nullptr);
    return;
  }
  tracer_ = obs::Observability::tracer_of(obs_.get());
  obs::MetricsRegistry& m = obs_->metrics();
  identified_ = &m.counter("ident.identified");
  unknown_ = &m.counter("ident.unknown");
  abstained_storage_ = &m.counter("ident.abstain_storage");
  rebuilds_ = &m.counter("ident.index_rebuilds");
  shortlist_size_ = &m.histogram("ident.shortlist_size", kCountBuckets);
  verifier_runs_hist_ = &m.histogram("ident.verifier_runs", kCountBuckets);
  // Stage latencies are timing-derived, so they live in gauges and trace
  // spans (both excluded from the deterministic structural report), never
  // in histogram buckets.
  last_prefilter_s_ = &m.gauge("ident.last_prefilter_s");
  last_verify_s_ = &m.gauge("ident.last_verify_s");
  cache_->attach_counters(&m.counter("ident.verifier_cache.hits"),
                          &m.counter("ident.verifier_cache.misses"));
}

bool Identifier::refresh() {
  if (index_built_ && store_->generation() == index_.generation())
    return false;
  EI_SPAN(tracer_, "ident.rebuild");
  index_ = CentroidIndex::from_store(*store_);
  cache_->clear();
  saw_quarantined_lookup_ = false;
  index_built_ = true;
  if (rebuilds_ != nullptr) rebuilds_->add();
  return true;
}

std::shared_ptr<const core::Authenticator> Identifier::load_verifier(
    int user_id) {
  const store::LookupResult looked = store_->lookup(user_id);
  switch (looked.status) {
    case store::LookupStatus::kFound:
      // Owned copy: commit() invalidates record pointers, but a cached
      // verifier must stay usable until the Identifier drops the cache on
      // the generation change.
      return std::make_shared<core::Authenticator>(looked.record->verifier);
    case store::LookupStatus::kQuarantined:
      // fsck can quarantine between snapshot and verify; remember it so
      // the abstain policy holds without waiting for a rebuild.
      saw_quarantined_lookup_ = true;
      return nullptr;
    case store::LookupStatus::kAbsent:
      return nullptr;
  }
  return nullptr;
}

IdentifyResult Identifier::identify(const std::vector<double>& feature) {
  refresh();
  EI_SPAN(tracer_, "ident.identify");
  IdentifyResult result;

  auto t0 = std::chrono::steady_clock::now();
  {
    EI_SPAN(tracer_, "ident.prefilter");
    index_.distances(feature, config_.metric, pool_, distances_);
    result.shortlist =
        top_k_shortlist(index_, distances_, config_.shortlist_k);
  }
  if (last_prefilter_s_ != nullptr) last_prefilter_s_->set(seconds_since(t0));
  if (shortlist_size_ != nullptr)
    shortlist_size_->observe(static_cast<double>(result.shortlist.size()));

  t0 = std::chrono::steady_clock::now();
  std::size_t best = result.shortlist.size();  // npos sentinel
  core::AuthDecision best_decision;
  {
    EI_SPAN(tracer_, "ident.verify");
    for (std::size_t i = 0; i < result.shortlist.size(); ++i) {
      const Candidate& candidate = result.shortlist[i];
      // Re-check the store before trusting the cache: fsck can quarantine
      // a shard without a generation bump, and a verifier cached before
      // that discovery would happily serve the user from bytes the store
      // can no longer prove.
      if (store_->lookup(candidate.user_id).status ==
          store::LookupStatus::kQuarantined) {
        saw_quarantined_lookup_ = true;
        continue;
      }
      const std::shared_ptr<const core::Authenticator> verifier =
          cache_->get(candidate.user_id);
      if (verifier == nullptr) continue;
      ++result.verifier_runs;
      const core::AuthDecision decision = verifier->authenticate(feature);
      if (decision.outcome != core::AuthOutcome::kAccepted) continue;
      // Nearest-accepted wins: the shortlist is already ordered by the
      // prefilter distance (recall@1 ~0.99 at 100k users), and the SVDD is
      // a per-user *gate* — its margin is normalized per user, so ranking
      // candidates by it compares incomparables and measurably misidentifies
      // at scale. Later accepts still run for the exhaustive counters.
      if (best == result.shortlist.size()) {
        best = i;
        best_decision = decision;
      }
    }
  }
  if (last_verify_s_ != nullptr) last_verify_s_->set(seconds_since(t0));
  if (verifier_runs_hist_ != nullptr)
    verifier_runs_hist_->observe(static_cast<double>(result.verifier_runs));

  if (best < result.shortlist.size()) {
    result.status = IdentifyStatus::kIdentified;
    result.user_id = result.shortlist[best].user_id;
    result.svdd_score = best_decision.svdd_score;
    result.distance = result.shortlist[best].distance;
    if (identified_ != nullptr) identified_->add();
    return result;
  }
  if (index_.quarantined_shards() > 0 || saw_quarantined_lookup_) {
    // Someone unreadable might be exactly this probe's user: the only
    // honest answer is "I cannot know", never "not enrolled".
    result.status = IdentifyStatus::kAbstain;
    result.abstain_reason = core::AbstainReason::kStorage;
    if (abstained_storage_ != nullptr) abstained_storage_->add();
    return result;
  }
  result.status = IdentifyStatus::kUnknown;
  if (unknown_ != nullptr) unknown_->add();
  return result;
}

}  // namespace echoimage::ident
