#include "ident/verifier_cache.hpp"

#include <stdexcept>
#include <utility>

namespace echoimage::ident {

VerifierCache::VerifierCache(std::size_t capacity, Loader loader)
    : capacity_(capacity), loader_(std::move(loader)) {
  if (!loader_)
    throw std::invalid_argument("VerifierCache: a loader is required");
}

std::shared_ptr<const core::Authenticator> VerifierCache::get(int user_id) {
  const runtime::sync::LockGuard lock(mutex_);
  const auto it = by_user_.find(user_id);
  if (it != by_user_.end()) {
    ++hits_;
    if (obs_hits_ != nullptr) obs_hits_->add();
    entries_.splice(entries_.begin(), entries_, it->second);
    return it->second->second;
  }
  ++misses_;
  if (obs_misses_ != nullptr) obs_misses_->add();
  std::shared_ptr<const core::Authenticator> loaded = loader_(user_id);
  if (loaded == nullptr || capacity_ == 0) return loaded;
  entries_.emplace_front(user_id, loaded);
  by_user_[user_id] = entries_.begin();
  while (entries_.size() > capacity_) {
    by_user_.erase(entries_.back().first);
    entries_.pop_back();
  }
  return loaded;
}

void VerifierCache::clear() {
  const runtime::sync::LockGuard lock(mutex_);
  entries_.clear();
  by_user_.clear();
}

void VerifierCache::attach_counters(const obs::Counter* hits,
                                    const obs::Counter* misses) {
  obs_hits_ = hits;
  obs_misses_ = misses;
}

}  // namespace echoimage::ident
