// Deterministic top-k shortlist over a prefilter distance vector.
//
// Candidates are ordered by ascending (distance, row): exact-tie distances
// break toward the lowest row index — which, rows being sorted by user id,
// means the lowest user id. The order is a total order over rows, so the
// shortlist is a pure function of the distance vector and k, independent
// of selection-algorithm internals, worker counts, or libc qsort whims.
//
// k >= N degrades to exhaustive search: every row, fully ordered.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ident/centroid_index.hpp"

namespace echoimage::ident {

/// One shortlisted enrollment.
struct Candidate {
  std::size_t row = 0;  ///< index row (ascending user-id order)
  int user_id = 0;
  double distance = 0.0;  ///< prefilter distance (metric-dependent scale)
};

/// The min(k, N) nearest rows by (distance, row) ascending. `distances`
/// must be index.size() long (the vector CentroidIndex::distances fills).
[[nodiscard]] std::vector<Candidate> top_k_shortlist(
    const CentroidIndex& index, const std::vector<double>& distances,
    std::size_t k);

/// splitmix64 step used by the fingerprint folds (same construction as the
/// store sweep's): deterministic and sensitive to order.
[[nodiscard]] std::uint64_t mix_fingerprint(std::uint64_t acc,
                                            std::uint64_t value);

/// Order-sensitive fold of a shortlist's (user_id, distance bit pattern)
/// pairs — the bench's bit-stability acceptance compares these across
/// worker counts and runs.
[[nodiscard]] std::uint64_t shortlist_fingerprint(
    const std::vector<Candidate>& shortlist, std::uint64_t acc = 0x1DEA);

}  // namespace echoimage::ident
