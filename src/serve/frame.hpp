// Frame and completion types flowing through the serving layer.
//
// One CaptureFrame is one authentication request from one device session:
// a beep batch captured on the device, stamped with its arrival time and
// the absolute deadline by which the backend's answer is still useful
// (a voice command waits ~a second; after that the answer is dead air).
// Completions carry the decision plus the per-stage latency breakdown the
// SLO accounting is built from.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/authenticator.hpp"
#include "core/supervisor.hpp"
#include "units/units.hpp"

namespace echoimage::serve {

/// Degradation rung the admission controller picked for a frame. The
/// ladder trades fidelity for latency one step at a time: full imaging →
/// reduced-band imaging (fewer spectral bands, same decision contract) →
/// abstain without processing (the load-shedding floor: an abstention is
/// never a false reject).
enum class ServiceMode {
  kFull,
  kReducedBand,
  kAbstain,
};

[[nodiscard]] const char* to_string(ServiceMode mode);

/// One authentication request in flight.
struct CaptureFrame {
  std::uint64_t session_id = 0;
  std::uint64_t seq = 0;  ///< per-session sequence number
  /// Clock-domain timestamps (see serve::Clock): when the frame entered
  /// ingest, and the absolute time past which any non-abstain answer is
  /// worthless.
  double enqueue_time_s = 0.0;
  double deadline_s = 0.0;
  /// The capture itself, shared: frames are queued, moved between rings
  /// and worker slots, and (under drop policies) destroyed without being
  /// processed — none of which should copy tens of milliseconds of
  /// multichannel audio.
  std::shared_ptr<const core::CaptureAttempt> capture;
};

/// What the scheduler did with one frame.
struct CompletedFrame {
  std::uint64_t session_id = 0;
  std::uint64_t seq = 0;
  core::AuthDecision decision;
  ServiceMode mode = ServiceMode::kFull;  ///< rung the frame was served at
  double enqueue_time_s = 0.0;  ///< copied from the frame (latency anchor)
  double queue_wait_s = 0.0;   ///< ingest → dequeue
  double service_s = 0.0;      ///< processing time (0 when shed unprocessed)
  double completion_time_s = 0.0;  ///< clock time the decision was ready
  bool deadline_missed = false;    ///< completed past `deadline_s`
};

namespace detail {

/// splitmix64 finalizer: the project's stateless seeded-stream idiom
/// (same construction as the supervisor's backoff jitter). Shared by the
/// arrival process and the synthetic frame processor so every random-
/// looking quantity in the serve layer comes from one seeded family.
[[nodiscard]] std::uint64_t mix64(std::uint64_t z);

/// Uniform draw in (0, 1] from the (seed, stream, step) lane — never 0,
/// so -log() stays finite.
[[nodiscard]] double unit_open(std::uint64_t seed, std::uint64_t stream,
                               std::uint64_t step);

}  // namespace detail

/// One synthetic arrival: session `session_id` submits a frame at
/// `time_s`. Produced by make_poisson_arrivals for benches and tests.
struct Arrival {
  double time_s = 0.0;
  std::uint64_t session_id = 0;
};

/// Seeded deterministic open-loop arrival process: `num_sessions` devices
/// each emitting auth requests as a Poisson process of `rate_hz` per
/// session over [0, duration_s), merged into one time-sorted schedule.
/// Pure function of its arguments — the serve determinism contract starts
/// here.
[[nodiscard]] std::vector<Arrival> make_poisson_arrivals(
    std::size_t num_sessions, units::Hertz rate, double duration_s,
    std::uint64_t seed);

}  // namespace echoimage::serve
