// Clock abstraction for the serving layer.
//
// Every latency, deadline, and backoff decision in src/serve reads one
// Clock. Deployment wires a monotonic wall clock; the deterministic mode
// wires a VirtualClock that only moves when the scheduler advances it —
// arrival order, deadline hits, and shed decisions then replay bit-for-bit
// from a seed, which is what the serve unit tests and the bench's
// determinism acceptance pin.
#pragma once

#include <cstdint>

namespace echoimage::serve {

/// Monotonic seconds since an arbitrary epoch. Implementations must be
/// non-decreasing; nothing in serve assumes a relation to calendar time.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual double now_s() const = 0;
};

/// Manually advanced clock for deterministic scheduling. Not thread-safe:
/// the deterministic mode runs the scheduler single-threaded (1 worker),
/// so exactly one caller advances time.
class VirtualClock final : public Clock {
 public:
  [[nodiscard]] double now_s() const override { return now_s_; }

  /// Move time forward by `dt_s` (negative deltas are ignored: a virtual
  /// clock is monotonic like any other).
  void advance(double dt_s) {
    if (dt_s > 0.0) now_s_ += dt_s;
  }

  /// Jump to an absolute time, never backwards.
  void advance_to(double t_s) {
    if (t_s > now_s_) now_s_ = t_s;
  }

 private:
  double now_s_ = 0.0;
};

/// Monotonic wall clock (std::chrono::steady_clock, zeroed at
/// construction) for the real serving path.
class SteadyClock final : public Clock {
 public:
  SteadyClock();
  [[nodiscard]] double now_s() const override;

 private:
  std::uint64_t epoch_ns_ = 0;
};

}  // namespace echoimage::serve
