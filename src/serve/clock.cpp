#include "serve/clock.hpp"

#include <chrono>

namespace echoimage::serve {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SteadyClock::SteadyClock() : epoch_ns_(steady_now_ns()) {}

double SteadyClock::now_s() const {
  return static_cast<double>(steady_now_ns() - epoch_ns_) * 1e-9;
}

}  // namespace echoimage::serve
