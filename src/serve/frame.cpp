#include "serve/frame.hpp"

#include <algorithm>
#include <cmath>

namespace echoimage::serve {

namespace detail {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double unit_open(std::uint64_t seed, std::uint64_t stream,
                 std::uint64_t step) {
  const std::uint64_t z =
      mix64(seed + 0x9E3779B97F4A7C15ULL * (stream + 1) +
            0xD1B54A32D192ED03ULL * (step + 1));
  // (0, 1]: never 0, so -log() below stays finite.
  return (static_cast<double>(z >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace detail

const char* to_string(ServiceMode mode) {
  switch (mode) {
    case ServiceMode::kFull: return "full";
    case ServiceMode::kReducedBand: return "reduced_band";
    case ServiceMode::kAbstain: return "abstain";
  }
  return "?";
}

std::vector<Arrival> make_poisson_arrivals(std::size_t num_sessions,
                                           units::Hertz rate,
                                           double duration_s,
                                           std::uint64_t seed) {
  const double rate_hz = rate.value();
  std::vector<Arrival> out;
  if (rate_hz <= 0.0 || duration_s <= 0.0) return out;
  for (std::uint64_t s = 0; s < num_sessions; ++s) {
    double t = 0.0;
    for (std::uint64_t k = 0;; ++k) {
      // Exponential inter-arrival via inverse transform on the seeded
      // per-(session, step) uniform stream.
      t += -std::log(detail::unit_open(seed, s, k)) / rate_hz;
      if (t >= duration_s) break;
      out.push_back(Arrival{t, s});
    }
  }
  // Merge to one global timeline. Ties (measure-zero, but belt and
  // braces) break by session then by nothing else — arrival order must be
  // a pure function of the inputs.
  std::sort(out.begin(), out.end(), [](const Arrival& a, const Arrival& b) {
    if (a.time_s != b.time_s) return a.time_s < b.time_s;
    return a.session_id < b.session_id;
  });
  return out;
}

}  // namespace echoimage::serve
