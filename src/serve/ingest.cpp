#include "serve/ingest.hpp"

#include <stdexcept>
#include <utility>

namespace echoimage::serve {

void IngestConfig::validate() const {
  if (num_sessions == 0)
    throw std::invalid_argument("IngestQueue: num_sessions must be positive");
  if (per_session_quota == 0)
    throw std::invalid_argument(
        "IngestQueue: per_session_quota must be positive");
  if (global_budget > 0 && global_budget < per_session_quota)
    throw std::invalid_argument(
        "IngestQueue: global_budget must be >= per_session_quota (or 0 to "
        "disable)");
}

const char* to_string(OfferOutcome outcome) {
  switch (outcome) {
    case OfferOutcome::kAccepted: return "accepted";
    case OfferOutcome::kRejectedSessionFull: return "rejected_session_full";
    case OfferOutcome::kReplacedOldest: return "replaced_oldest";
    case OfferOutcome::kRejectedGlobalBudget: return "rejected_global_budget";
    case OfferOutcome::kRejectedUnknownSession: return "rejected_unknown_session";
  }
  return "?";
}

IngestQueue::IngestQueue(IngestConfig config) : config_(config) {
  config_.validate();
  rings_.reserve(config_.num_sessions);
  for (std::size_t s = 0; s < config_.num_sessions; ++s)
    rings_.push_back(std::make_unique<runtime::BoundedRing<CaptureFrame>>(
        config_.per_session_quota));
}

void IngestQueue::attach_observability(
    std::shared_ptr<const obs::Observability> obs) {
  if (obs == nullptr) return;
  accepted_counter_ = &obs->metrics().counter("serve.ingest.accepted");
  rejected_session_counter_ =
      &obs->metrics().counter("serve.ingest.rejected_session_full");
  rejected_global_counter_ =
      &obs->metrics().counter("serve.ingest.rejected_global_budget");
  replaced_counter_ = &obs->metrics().counter("serve.ingest.dropped_oldest");
  depth_gauge_ = &obs->metrics().gauge("serve.ingest.depth");
}

OfferOutcome IngestQueue::offer(CaptureFrame frame) {
  if (frame.session_id >= rings_.size()) {
    rejected_.add();
    return OfferOutcome::kRejectedUnknownSession;
  }
  // Global budget first: a backend at its memory cap refuses even
  // sessions with quota to spare (drop-oldest would otherwise let total
  // footprint ratchet to every session's quota at once). The check is
  // deliberately lock-free and therefore approximate under concurrent
  // producers — racing offers can overshoot by at most one frame each;
  // the hard footprint cap is always the per-session ring capacities.
  const std::size_t budget = config_.global_budget == 0
                                 ? config_.num_sessions * config_.per_session_quota
                                 : config_.global_budget;
  if (depth() >= budget) {
    rejected_.add();
    if (rejected_global_counter_ != nullptr) rejected_global_counter_->add();
    return OfferOutcome::kRejectedGlobalBudget;
  }
  const std::uint64_t session = frame.session_id;
  const runtime::PushOutcome pushed =
      rings_[session]->push(std::move(frame), config_.overflow);
  if (depth_gauge_ != nullptr)
    depth_gauge_->set(static_cast<double>(depth()));
  switch (pushed) {
    case runtime::PushOutcome::kAccepted:
      accepted_.add();
      if (accepted_counter_ != nullptr) accepted_counter_->add();
      return OfferOutcome::kAccepted;
    case runtime::PushOutcome::kReplacedOldest:
      replaced_.add();
      if (replaced_counter_ != nullptr) replaced_counter_->add();
      return OfferOutcome::kReplacedOldest;
    case runtime::PushOutcome::kRejected:
      break;
  }
  rejected_.add();
  if (rejected_session_counter_ != nullptr) rejected_session_counter_->add();
  return OfferOutcome::kRejectedSessionFull;
}

std::size_t IngestQueue::drain(std::size_t max_frames,
                               std::vector<CaptureFrame>& out) {
  const runtime::sync::LockGuard lock(drain_mutex_);
  std::size_t drained = 0;
  std::size_t idle_laps = 0;  // sessions probed since the last hit
  while (drained < max_frames && idle_laps < rings_.size()) {
    CaptureFrame frame;
    if (rings_[cursor_]->try_pop(frame)) {
      out.push_back(std::move(frame));
      ++drained;
      idle_laps = 0;
    } else {
      ++idle_laps;
    }
    cursor_ = (cursor_ + 1) % rings_.size();
  }
  if (depth_gauge_ != nullptr)
    depth_gauge_->set(static_cast<double>(depth()));
  return drained;
}

std::size_t IngestQueue::depth() const {
  std::size_t total = 0;
  for (const auto& ring : rings_) total += ring->size();
  return total;
}

std::size_t IngestQueue::session_depth(std::uint64_t session_id) const {
  return session_id < rings_.size() ? rings_[session_id]->size() : 0;
}

}  // namespace echoimage::serve
