// Admission control: the load-shedding ladder.
//
// The controller turns two observed pressure signals — ingest queue depth
// and the EWMA of recent per-frame service latency — into a ServiceMode
// for the next batch:
//
//   kFull        → the paper's pipeline, every spectral band
//   kReducedBand → reduced-band imaging (cheaper physics, its own
//                  calibrated authenticator — see serve/service.hpp)
//   kAbstain     → shed without processing; the decision is an
//                  abstention, never a reject
//
// Pressure is normalized so a value of 1.0 on either signal means "at the
// configured shed threshold"; the ladder takes the max of the signals
// (one saturated resource is enough). An asymmetric hysteresis band keeps
// the ladder from chattering between rungs on every queue-depth wiggle:
// stepping *up* (more degraded) is immediate — overload must be met in
// one batch — while stepping *down* requires pressure below
// (threshold * (1 - hysteresis)).
//
// Recovery from the abstain floor is guaranteed to make progress: the
// depth signal falls as the scheduler sheds the backlog, and the latency
// signal — which no processed frame can feed while everything is shed —
// is decayed explicitly by observe_shed_batch() on every fully-shed
// batch, so neither signal can pin the ladder at kAbstain after the
// overload has passed.
//
// Determinism: the controller is a pure state machine over the values the
// scheduler feeds it; in virtual-clock mode those are seeded, so the
// whole shed schedule replays bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>

#include "serve/frame.hpp"

namespace echoimage::serve {

struct AdmissionConfig {
  /// Queue depth (frames) at which the ladder reaches kReducedBand /
  /// kAbstain on the depth signal.
  std::size_t depth_reduced = 8;
  std::size_t depth_abstain = 24;
  /// EWMA service latency (seconds per frame) at which the ladder reaches
  /// kReducedBand / kAbstain on the latency signal. Set these from the
  /// per-stage SLO: reduced when full-mode service eats the whole budget,
  /// abstain when even reduced mode blows through it.
  double latency_reduced_s = 0.6;
  double latency_abstain_s = 1.5;
  /// EWMA smoothing factor in (0, 1]: weight of the newest observation.
  double ewma_alpha = 0.2;
  /// Step-down band in [0, 1): the ladder relaxes one rung only when
  /// pressure drops below threshold * (1 - hysteresis).
  double hysteresis = 0.2;

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;
};

/// Threading contract (capability model, DESIGN "Lock-capability model"):
/// the controller is a single-threaded state machine driven entirely by
/// the scheduler thread between fan-out regions — it holds no capability
/// of its own and none of its fields are guarded. Do not call it from
/// FrameProcessor bodies (they run on pool workers); the scheduler feeds
/// observe_latency/update strictly from its own thread.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

  /// Feed one completed frame's service latency (seconds).
  void observe_latency(double service_s);

  /// Feed one batch that was fully shed at the kAbstain floor. Nothing is
  /// processed while shedding, so the latency EWMA receives no organic
  /// observations and a latency-driven escalation would otherwise freeze
  /// above its threshold forever — a recovery livelock. A shed batch is
  /// itself evidence (the backlog drained at zero service cost), so it is
  /// folded in as one zero-latency observation, decaying the EWMA by
  /// (1 - ewma_alpha) per batch until the step-down band clears and the
  /// ladder can relax back to a rung that processes frames again.
  void observe_shed_batch();

  /// Current smoothed service latency (0 until the first observation).
  [[nodiscard]] double ewma_latency_s() const { return ewma_s_; }

  /// Update the ladder from the current queue depth and the latency EWMA,
  /// returning the mode for the next batch.
  ServiceMode update(std::size_t queue_depth);

  /// The rung chosen by the last update (kFull before any).
  [[nodiscard]] ServiceMode mode() const { return mode_; }

  /// Normalized pressure of the last update (1.0 = at the abstain
  /// threshold on the hotter signal); telemetry.
  [[nodiscard]] double pressure() const { return pressure_; }

  /// Ladder transitions so far (telemetry/tests).
  [[nodiscard]] std::uint64_t escalations() const { return escalations_; }
  [[nodiscard]] std::uint64_t relaxations() const { return relaxations_; }

 private:
  [[nodiscard]] ServiceMode target_mode(std::size_t queue_depth,
                                        double relax_scale) const;

  AdmissionConfig config_;
  ServiceMode mode_ = ServiceMode::kFull;
  double ewma_s_ = 0.0;
  bool have_ewma_ = false;
  double pressure_ = 0.0;
  std::uint64_t escalations_ = 0;
  std::uint64_t relaxations_ = 0;
};

}  // namespace echoimage::serve
