#include "serve/admission.hpp"

#include <algorithm>
#include <stdexcept>

namespace echoimage::serve {

namespace {

int rung(ServiceMode mode) {
  switch (mode) {
    case ServiceMode::kFull: return 0;
    case ServiceMode::kReducedBand: return 1;
    case ServiceMode::kAbstain: return 2;
  }
  return 0;
}

ServiceMode mode_of(int r) {
  return r <= 0 ? ServiceMode::kFull
                : (r == 1 ? ServiceMode::kReducedBand : ServiceMode::kAbstain);
}

}  // namespace

void AdmissionConfig::validate() const {
  if (depth_reduced == 0 || depth_abstain <= depth_reduced)
    throw std::invalid_argument(
        "AdmissionController: need 0 < depth_reduced < depth_abstain");
  if (latency_reduced_s <= 0.0 || latency_abstain_s <= latency_reduced_s)
    throw std::invalid_argument(
        "AdmissionController: need 0 < latency_reduced_s < latency_abstain_s");
  if (ewma_alpha <= 0.0 || ewma_alpha > 1.0)
    throw std::invalid_argument(
        "AdmissionController: ewma_alpha must be in (0, 1]");
  if (hysteresis < 0.0 || hysteresis >= 1.0)
    throw std::invalid_argument(
        "AdmissionController: hysteresis must be in [0, 1)");
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  config_.validate();
}

void AdmissionController::observe_latency(double service_s) {
  if (service_s < 0.0) return;
  if (!have_ewma_) {
    ewma_s_ = service_s;
    have_ewma_ = true;
    return;
  }
  ewma_s_ = config_.ewma_alpha * service_s +
            (1.0 - config_.ewma_alpha) * ewma_s_;
}

void AdmissionController::observe_shed_batch() {
  // One zero-cost observation per fully-shed batch: ewma <- (1-α)·ewma.
  // Geometric decay reaches the step-down band in a bounded number of
  // batches from any escalation value, so kAbstain can always relax.
  ewma_s_ *= 1.0 - config_.ewma_alpha;
}

ServiceMode AdmissionController::target_mode(std::size_t queue_depth,
                                            double relax_scale) const {
  // Each signal independently names a rung; the ladder takes the worse.
  const double depth = static_cast<double>(queue_depth);
  int by_depth = 0;
  if (depth >= static_cast<double>(config_.depth_abstain) * relax_scale)
    by_depth = 2;
  else if (depth >= static_cast<double>(config_.depth_reduced) * relax_scale)
    by_depth = 1;
  int by_latency = 0;
  if (ewma_s_ >= config_.latency_abstain_s * relax_scale)
    by_latency = 2;
  else if (ewma_s_ >= config_.latency_reduced_s * relax_scale)
    by_latency = 1;
  return mode_of(std::max(by_depth, by_latency));
}

ServiceMode AdmissionController::update(std::size_t queue_depth) {
  // Pressure gauge: the hotter signal, normalized to its abstain line.
  pressure_ = std::max(
      static_cast<double>(queue_depth) /
          static_cast<double>(config_.depth_abstain),
      config_.latency_abstain_s > 0.0 ? ewma_s_ / config_.latency_abstain_s
                                      : 0.0);

  const int current = rung(mode_);
  // Escalation reads the thresholds verbatim; relaxation demands the
  // pressure clear the step-down band below them.
  const int up = rung(target_mode(queue_depth, 1.0));
  if (up > current) {
    mode_ = mode_of(up);
    ++escalations_;
    return mode_;
  }
  const int down = rung(target_mode(queue_depth, 1.0 - config_.hysteresis));
  if (down < current) {
    // One rung at a time: recovery is deliberately gradual, so a queue
    // that empties because everything was shed does not slam the ladder
    // back to kFull and immediately refill.
    mode_ = mode_of(current - 1);
    ++relaxations_;
  }
  return mode_;
}

}  // namespace echoimage::serve
