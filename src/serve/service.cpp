#include "serve/service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/sharded.hpp"
#include "runtime/thread_pool.hpp"

namespace echoimage::serve {

core::CaptureSupervisorConfig serve_supervisor_config() {
  core::CaptureSupervisorConfig cfg;
  // A backend cannot re-beep: only the device holding the microphone can
  // produce a fresh capture, so within one frame there is one attempt.
  cfg.max_attempts = 1;
  // The backoff schedule is consumed device-side (backoff_step_s) when a
  // shed session retries; the jitter is what keeps a fleet shed together
  // from re-beeping together.
  cfg.backoff_jitter = 0.1;
  cfg.jitter_seed = 0xEC05EEDULL;
  return cfg;
}

void ServiceConfig::validate() const {
  ingest.validate();
  scheduler.validate();
  supervisor.validate();
  if (default_deadline_s <= 0.0)
    throw std::invalid_argument(
        "AuthService: default_deadline_s must be positive");
  if (deterministic &&
      runtime::resolve_workers(scheduler.num_threads) != 1)
    throw std::invalid_argument(
        "AuthService: deterministic mode requires scheduler.num_threads == 1");
}

namespace {

ServiceConfig validated(ServiceConfig config) {
  config.validate();
  return config;
}

}  // namespace

AuthService::AuthService(ServiceConfig config, FrameProcessor processor)
    : AuthService(std::move(config),
                  ProcessorFactory([p = std::move(processor)](const Clock&) {
                    return p;
                  })) {}

AuthService::AuthService(ServiceConfig config, const ProcessorFactory& factory)
    : config_(validated(std::move(config))), ingest_(config_.ingest) {
  if (config_.deterministic) {
    auto clock = std::make_unique<VirtualClock>();
    virtual_clock_ = clock.get();
    clock_ = std::move(clock);
  } else {
    clock_ = std::make_unique<SteadyClock>();
  }
  scheduler_ = std::make_unique<SessionScheduler>(
      config_.scheduler, ingest_, *clock_, factory(*clock_), virtual_clock_);
  seq_.assign(config_.ingest.num_sessions, 0);
}

void AuthService::attach_observability(
    std::shared_ptr<const obs::Observability> obs) {
  ingest_.attach_observability(obs);
  scheduler_->attach_observability(std::move(obs));
}

OfferOutcome AuthService::submit(
    std::uint64_t session_id,
    std::shared_ptr<const core::CaptureAttempt> capture, double deadline_s,
    double enqueue_time_s) {
  CaptureFrame frame;
  frame.session_id = session_id;
  // Sequence every offer, accepted or not: a rejected frame still existed
  // on the device, and seq gaps in the completion log are how tests
  // reconcile offered load against outcomes.
  if (session_id < seq_.size()) frame.seq = seq_[session_id]++;
  const double now_s = clock_->now_s();
  frame.enqueue_time_s =
      enqueue_time_s >= 0.0 ? std::min(enqueue_time_s, now_s) : now_s;
  frame.deadline_s =
      deadline_s > 0.0 ? deadline_s
                       : frame.enqueue_time_s + config_.default_deadline_s;
  frame.capture = std::move(capture);
  return ingest_.offer(std::move(frame));
}

std::size_t AuthService::step(const CompletionSink& sink) {
  return scheduler_->run_once(sink);
}

std::size_t AuthService::drain_all(const CompletionSink& sink) {
  std::size_t total = 0;
  for (;;) {
    const std::size_t drained = scheduler_->run_once(sink);
    if (drained == 0) return total;
    total += drained;
  }
}

std::uint64_t AuthService::submitted(std::uint64_t session_id) const {
  return session_id < seq_.size() ? seq_[session_id] : 0;
}

FrameProcessor make_pipeline_processor(
    const PipelineLanes& lanes, const core::CaptureSupervisorConfig& supervisor,
    const Clock& clock, double synthetic_full_cost_s,
    double synthetic_reduced_cost_s) {
  if (lanes.full == nullptr || lanes.full_auth == nullptr)
    throw std::invalid_argument(
        "make_pipeline_processor: the full lane (pipeline + authenticator) is "
        "required");
  if ((lanes.reduced == nullptr) != (lanes.reduced_auth == nullptr))
    throw std::invalid_argument(
        "make_pipeline_processor: the reduced lane needs both its pipeline "
        "and its authenticator (features are a different dimensionality)");

  struct Lane {
    std::unique_ptr<core::CaptureSupervisor> supervisor;
    const core::Authenticator* auth;
  };
  auto full = std::make_shared<Lane>(
      Lane{std::make_unique<core::CaptureSupervisor>(*lanes.full, supervisor),
           lanes.full_auth});
  std::shared_ptr<Lane> reduced;
  if (lanes.reduced != nullptr)
    reduced = std::make_shared<Lane>(
        Lane{std::make_unique<core::CaptureSupervisor>(*lanes.reduced,
                                                       supervisor),
             lanes.reduced_auth});
  // Wall-time measurement for the cost report (used whenever the served
  // mode's synthetic cost is 0): its own steady clock, because `clock`
  // may be the scheduler's VirtualClock, frozen during processing.
  auto stopwatch = std::make_shared<SteadyClock>();
  const Clock* deadline_clock = &clock;

  return [full, reduced, stopwatch, deadline_clock, synthetic_full_cost_s,
          synthetic_reduced_cost_s](const CaptureFrame& frame,
                                    ServiceMode mode) -> FrameResult {
    const bool use_reduced =
        mode == ServiceMode::kReducedBand && reduced != nullptr;
    const Lane& lane = use_reduced ? *reduced : *full;
    core::DeadlineProbe probe;
    if (frame.deadline_s > 0.0) {
      const double deadline_s = frame.deadline_s;
      probe = [deadline_clock, deadline_s] {
        return deadline_clock->now_s() >= deadline_s;
      };
    }
    // The device already captured; the source just replays the frame's
    // shared capture — no deep copy of the audio on the serving hot path
    // (the ownership contract in serve/frame.hpp). A frame queued without
    // audio abstains at the supervisor, like any failed capture.
    const core::SharedCaptureSource source =
        [&frame](std::size_t) { return frame.capture; };
    const double start_s = stopwatch->now_s();
    FrameResult result;
    result.decision = lane.supervisor->authenticate(source, *lane.auth, probe);
    // Per-mode gating: a lane whose synthetic cost was left at 0 falls
    // back to measured wall time, so the virtual clock always advances
    // (a zero cost would freeze deterministic-mode timing and feed the
    // admission EWMA zeros for that lane).
    const double synthetic =
        use_reduced ? synthetic_reduced_cost_s : synthetic_full_cost_s;
    result.cost_s = synthetic > 0.0 ? synthetic : stopwatch->now_s() - start_s;
    return result;
  };
}

FrameProcessor make_store_processor(
    const StoreLanes& lanes, const core::CaptureSupervisorConfig& supervisor,
    const Clock& clock, double synthetic_cost_s) {
  if (lanes.pipeline == nullptr || lanes.templates == nullptr)
    throw std::invalid_argument(
        "make_store_processor: pipeline and template store are required");
  if (lanes.lookup_cost_s <= 0.0)
    throw std::invalid_argument(
        "make_store_processor: lookup_cost_s must be positive (the virtual "
        "clock must advance on store-answered frames)");

  auto guard = std::make_shared<core::CaptureSupervisor>(*lanes.pipeline,
                                                         supervisor);
  const store::TemplateStore* templates = lanes.templates;
  auto user_of_session = lanes.user_of_session;
  const double lookup_cost_s = lanes.lookup_cost_s;
  // As in make_pipeline_processor: wall time is measured on a private
  // steady clock because `clock` may be a frozen VirtualClock.
  auto stopwatch = std::make_shared<SteadyClock>();
  const Clock* deadline_clock = &clock;

  return [guard, templates, user_of_session, lookup_cost_s, stopwatch,
          deadline_clock, synthetic_cost_s](const CaptureFrame& frame,
                                            ServiceMode) -> FrameResult {
    const int user = user_of_session
                         ? user_of_session(frame.session_id)
                         : static_cast<int>(frame.session_id);
    const store::LookupResult looked = templates->lookup(user);
    FrameResult result;
    switch (looked.status) {
      case store::LookupStatus::kQuarantined:
        // The enrollment bytes are unreadable: abstain, never guess. The
        // kStorage reason marks it backend-side, so the device re-beeps
        // and the session monitor does not count it as blindness.
        result.decision =
            core::AuthDecision::abstain(core::AbstainReason::kStorage);
        result.cost_s = lookup_cost_s;
        return result;
      case store::LookupStatus::kAbsent:
        // Healthy shard, no record: the claim is provably un-enrolled.
        result.decision = core::AuthDecision{};  // rejected, no user
        result.cost_s = lookup_cost_s;
        return result;
      case store::LookupStatus::kFound:
        break;
    }
    core::DeadlineProbe probe;
    if (frame.deadline_s > 0.0) {
      const double deadline_s = frame.deadline_s;
      probe = [deadline_clock, deadline_s] {
        return deadline_clock->now_s() >= deadline_s;
      };
    }
    const core::SharedCaptureSource source =
        [&frame](std::size_t) { return frame.capture; };
    const double start_s = stopwatch->now_s();
    result.decision =
        guard->authenticate(source, looked.record->verifier, probe);
    result.cost_s = synthetic_cost_s > 0.0
                        ? synthetic_cost_s
                        : stopwatch->now_s() - start_s;
    return result;
  };
}

FrameProcessor make_identify_processor(
    const IdentifyLanes& lanes, const core::CaptureSupervisorConfig& supervisor,
    const Clock& clock, double synthetic_cost_s) {
  if (lanes.pipeline == nullptr || lanes.identifier == nullptr)
    throw std::invalid_argument(
        "make_identify_processor: pipeline and identifier are required");

  auto guard = std::make_shared<core::CaptureSupervisor>(*lanes.pipeline,
                                                         supervisor);
  const core::EchoImagePipeline* pipeline = lanes.pipeline;
  ident::Identifier* identifier = lanes.identifier;
  // The Identifier is deliberately stateful (index refresh, verifier LRU,
  // scratch buffers); the FrameProcessor contract requires concurrency
  // safety under a multi-worker scheduler, so identification is serialized
  // behind one region lock. Capture supervision and feature extraction —
  // the expensive DSP — stay outside the critical section.
  auto region = std::make_shared<runtime::RegionLock>();
  auto stopwatch = std::make_shared<SteadyClock>();
  const Clock* deadline_clock = &clock;

  return [guard, pipeline, identifier, region, stopwatch, deadline_clock,
          synthetic_cost_s](const CaptureFrame& frame,
                            ServiceMode) -> FrameResult {
    core::DeadlineProbe probe;
    if (frame.deadline_s > 0.0) {
      const double deadline_s = frame.deadline_s;
      probe = [deadline_clock, deadline_s] {
        return deadline_clock->now_s() >= deadline_s;
      };
    }
    const core::SharedCaptureSource source =
        [&frame](std::size_t) { return frame.capture; };
    const double start_s = stopwatch->now_s();
    FrameResult result;
    const core::SupervisedCapture captured = guard->acquire(source, probe);
    if (captured.abstained || captured.processed.images.empty()) {
      // Late answers are abstained, never rejected: a half-processed
      // capture is not evidence about who is speaking.
      result.decision = core::AuthDecision::abstain(
          captured.processed.deadline_expired ? core::AbstainReason::kDeadline
                                              : core::AbstainReason::kCapture);
      result.cost_s = synthetic_cost_s > 0.0 ? synthetic_cost_s
                                             : stopwatch->now_s() - start_s;
      return result;
    }
    const std::vector<std::vector<double>> features = pipeline->features_batch(
        captured.processed.images,
        captured.processed.distance.user_distance_centroid_m,
        /*augment=*/false);

    // Per-beep identification with majority voting, mirroring the 1:1
    // supervisor's aggregation: the identity named by the most beeps wins,
    // exact vote ties break toward the smaller user id, and the reported
    // SVDD score is the mean over the winning votes.
    std::vector<std::pair<int, double>> votes;  // (user, svdd) per beep
    bool any_abstain = false;
    {
      runtime::LockedRegion hold(*region);
      for (const std::vector<double>& feature : features) {
        const ident::IdentifyResult who = identifier->identify(feature);
        if (who.status == ident::IdentifyStatus::kIdentified)
          votes.emplace_back(who.user_id, who.svdd_score);
        else if (who.status == ident::IdentifyStatus::kAbstain)
          any_abstain = true;
      }
    }
    if (!votes.empty()) {
      std::sort(votes.begin(), votes.end());
      int best_user = votes.front().first;
      std::size_t best_count = 0;
      double best_score_sum = 0.0;
      for (std::size_t i = 0; i < votes.size();) {
        std::size_t j = i;
        double sum = 0.0;
        while (j < votes.size() && votes[j].first == votes[i].first)
          sum += votes[j++].second;
        // Strictly-greater keeps the smallest user id on exact vote ties
        // (votes are sorted ascending by user).
        if (j - i > best_count) {
          best_count = j - i;
          best_user = votes[i].first;
          best_score_sum = sum;
        }
        i = j;
      }
      result.decision.accepted = true;
      result.decision.user_id = best_user;
      result.decision.outcome = core::AuthOutcome::kAccepted;
      result.decision.svdd_score =
          best_score_sum / static_cast<double>(best_count);
    } else if (any_abstain) {
      // Some beep hit degraded storage and nothing identified: the honest
      // answer is the backend shed, so the device re-beeps later.
      result.decision =
          core::AuthDecision::abstain(core::AbstainReason::kStorage);
    } else {
      result.decision = core::AuthDecision{};  // rejected: unknown speaker
    }
    result.cost_s = synthetic_cost_s > 0.0 ? synthetic_cost_s
                                           : stopwatch->now_s() - start_s;
    return result;
  };
}

FrameProcessor make_synthetic_processor(SyntheticProcessorConfig config) {
  return [config](const CaptureFrame& frame, ServiceMode mode) -> FrameResult {
    // Two independent seeded lanes per (session, seq): one for the
    // outcome, one for the cost wiggle.
    const double u_outcome =
        detail::unit_open(config.seed, frame.session_id, frame.seq);
    const double u_cost = detail::unit_open(config.seed ^ 0xC057C057ULL,
                                            frame.session_id, frame.seq);
    FrameResult result;
    if (u_outcome <= config.accept_rate) {
      result.decision.accepted = true;
      result.decision.user_id = static_cast<int>(frame.session_id);
      result.decision.outcome = core::AuthOutcome::kAccepted;
      result.decision.svdd_score = 1.0 - u_outcome;
    } else {
      result.decision.accepted = false;
      result.decision.outcome = core::AuthOutcome::kRejected;
      result.decision.svdd_score = -u_outcome;
    }
    const double base = mode == ServiceMode::kReducedBand
                            ? config.reduced_cost_s
                            : config.full_cost_s;
    result.cost_s = base * (1.0 + config.cost_jitter * (2.0 * u_cost - 1.0));
    return result;
  };
}

}  // namespace echoimage::serve
