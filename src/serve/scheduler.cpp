#include "serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace echoimage::serve {

namespace {

/// Absolute deadlines <= 0 mean "no deadline" (enrollment traffic, tests).
bool has_deadline(const CaptureFrame& frame) { return frame.deadline_s > 0.0; }

}  // namespace

void SchedulerConfig::validate() const {
  if (max_batch == 0)
    throw std::invalid_argument("SessionScheduler: max_batch must be positive");
  admission.validate();
}

SessionScheduler::SessionScheduler(SchedulerConfig config, IngestQueue& ingest,
                                   Clock& clock, FrameProcessor processor,
                                   VirtualClock* virtual_clock)
    : config_(config),
      ingest_(&ingest),
      clock_(&clock),
      processor_(std::move(processor)),
      virtual_clock_(virtual_clock),
      admission_(config.admission) {
  config_.validate();
  if (processor_ == nullptr)
    throw std::invalid_argument("SessionScheduler: processor must be set");
  const std::size_t workers = runtime::resolve_workers(config_.num_threads);
  if (virtual_clock_ != nullptr && workers != 1)
    throw std::invalid_argument(
        "SessionScheduler: a VirtualClock requires num_threads == 1 (virtual "
        "time advances on the scheduler thread only)");
  if (workers > 1) pool_ = std::make_shared<runtime::ThreadPool>(workers);
}

void SessionScheduler::attach_observability(
    std::shared_ptr<const obs::Observability> obs) {
  if (obs == nullptr) return;
  auto& metrics = obs->metrics();
  completed_counter_ = &metrics.counter("serve.sched.completed");
  shed_overload_counter_ = &metrics.counter("serve.shed.overload");
  shed_stale_counter_ = &metrics.counter("serve.shed.stale");
  demoted_late_counter_ = &metrics.counter("serve.shed.deadline");
  mode_full_counter_ = &metrics.counter("serve.mode.full");
  mode_reduced_counter_ = &metrics.counter("serve.mode.reduced");
  // Bounds bracket the per-stage SLOs in AdmissionConfig: the reduced /
  // abstain thresholds land on bucket edges so the shed decision is
  // readable straight off the histogram.
  queue_wait_hist_ = &metrics.histogram(
      "serve.latency.queue_s", {0.01, 0.05, 0.1, 0.3, 0.6, 1.5, 3.0});
  service_hist_ = &metrics.histogram(
      "serve.latency.service_s", {0.01, 0.05, 0.1, 0.3, 0.6, 1.5, 3.0});
  total_latency_hist_ = &metrics.histogram(
      "serve.latency.total_s", {0.05, 0.1, 0.3, 0.6, 1.5, 3.0, 6.0});
  ewma_gauge_ = &metrics.gauge("serve.sched.ewma_service_s");
  pressure_gauge_ = &metrics.gauge("serve.sched.pressure");
}

std::size_t SessionScheduler::run_once(const CompletionSink& sink) {
  // Pressure is read before draining: the ladder reacts to the backlog
  // this batch is up against, not the backlog it leaves behind.
  const std::size_t depth_before = ingest_->depth();

  std::vector<CaptureFrame> batch;
  batch.reserve(config_.max_batch);
  const std::size_t drained = ingest_->drain(config_.max_batch, batch);
  if (drained == 0) return 0;

  const ServiceMode mode = admission_.update(depth_before);
  const double dequeue_s = clock_->now_s();

  // Triage: frames already past deadline are stale (compute would be pure
  // waste) and the ladder floor sheds everything unprocessed.
  enum class Disposition : unsigned char { kProcess, kStale, kOverload };
  std::vector<Disposition> dispo(batch.size(), Disposition::kProcess);
  std::vector<std::size_t> work;  // indices into batch, submission order
  work.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (has_deadline(batch[i]) && dequeue_s >= batch[i].deadline_s) {
      dispo[i] = Disposition::kStale;
    } else if (mode == ServiceMode::kAbstain) {
      dispo[i] = Disposition::kOverload;
    } else {
      work.push_back(i);
    }
  }

  std::vector<FrameResult> results(batch.size());
  std::vector<double> service_s(batch.size(), 0.0);
  std::vector<double> completion_s(batch.size(), dequeue_s);
  if (pool_ == nullptr) {
    // One worker: sequential in submission order. With a VirtualClock
    // every frame's completion time is the running sum of reported costs —
    // the deterministic mode's entire timing model.
    for (const std::size_t i : work) {
      const double start_s = clock_->now_s();
      results[i] = processor_(batch[i], mode);
      if (virtual_clock_ != nullptr)
        virtual_clock_->advance(std::max(results[i].cost_s, 0.0));
      completion_s[i] = clock_->now_s();
      service_s[i] = virtual_clock_ != nullptr ? results[i].cost_s
                                               : completion_s[i] - start_s;
    }
  } else {
    // Static stride partition: frame i runs on worker i % W, so the
    // frame→worker assignment (though not the finish order) is
    // reproducible. Workers touch disjoint slots; the clock here is a
    // SteadyClock, safe to read concurrently.
    pool_->run([&](std::size_t worker) {
      for (std::size_t k = worker; k < work.size();
           k += pool_->num_workers()) {
        const std::size_t i = work[k];
        const double start_s = clock_->now_s();
        results[i] = processor_(batch[i], mode);
        completion_s[i] = clock_->now_s();
        service_s[i] = completion_s[i] - start_s;
      }
    });
  }

  // Completion pass, submission order: exactly one CompletedFrame per
  // drained frame, deadline demotion applied after the fact.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const CaptureFrame& frame = batch[i];
    CompletedFrame done;
    done.session_id = frame.session_id;
    done.seq = frame.seq;
    done.enqueue_time_s = frame.enqueue_time_s;
    done.queue_wait_s = std::max(dequeue_s - frame.enqueue_time_s, 0.0);
    done.service_s = service_s[i];
    done.completion_time_s = completion_s[i];
    switch (dispo[i]) {
      case Disposition::kStale:
        done.mode = ServiceMode::kAbstain;
        done.decision =
            core::AuthDecision::abstain(core::AbstainReason::kDeadline);
        done.deadline_missed = true;
        ++shed_stale_;
        if (shed_stale_counter_ != nullptr) shed_stale_counter_->add();
        break;
      case Disposition::kOverload:
        done.mode = ServiceMode::kAbstain;
        done.decision =
            core::AuthDecision::abstain(core::AbstainReason::kOverload);
        ++shed_overload_;
        if (shed_overload_counter_ != nullptr) shed_overload_counter_->add();
        break;
      case Disposition::kProcess: {
        done.mode = mode;
        admission_.observe_latency(service_s[i]);
        const bool late =
            has_deadline(frame) && completion_s[i] > frame.deadline_s;
        if (late) {
          // The computed decision — whatever it was — is dead air now; a
          // late accept must never unlock a door.
          done.decision =
              core::AuthDecision::abstain(core::AbstainReason::kDeadline);
          done.deadline_missed = true;
          ++demoted_late_;
          if (demoted_late_counter_ != nullptr) demoted_late_counter_->add();
        } else {
          done.decision = results[i].decision;
          ++completed_;
          if (completed_counter_ != nullptr) completed_counter_->add();
        }
        if (mode == ServiceMode::kFull) {
          if (mode_full_counter_ != nullptr) mode_full_counter_->add();
        } else if (mode_reduced_counter_ != nullptr) {
          mode_reduced_counter_->add();
        }
        if (service_hist_ != nullptr) service_hist_->observe(service_s[i]);
        break;
      }
    }
    if (queue_wait_hist_ != nullptr) queue_wait_hist_->observe(done.queue_wait_s);
    if (total_latency_hist_ != nullptr)
      total_latency_hist_->observe(
          std::max(done.completion_time_s - frame.enqueue_time_s, 0.0));
    if (sink) sink(done);
  }

  // The abstain floor processes nothing, so no frame above fed
  // observe_latency; without this the latency EWMA would freeze at its
  // escalation value and a latency-driven kAbstain could never relax.
  if (mode == ServiceMode::kAbstain) admission_.observe_shed_batch();

  if (ewma_gauge_ != nullptr) ewma_gauge_->set(admission_.ewma_latency_s());
  if (pressure_gauge_ != nullptr) pressure_gauge_->set(admission_.pressure());
  return drained;
}

}  // namespace echoimage::serve
