// Session scheduler: drains the ingest queue in round-robin batches,
// fans the frames of a batch out across sessions onto a runtime
// ThreadPool, and enforces per-frame deadlines and the admission ladder.
//
// Parallelism is ACROSS frames, never within one: each frame is processed
// by a serial pipeline on one worker while its batch-mates run on the
// others. (A frame's own pipeline must not share the scheduler's pool —
// ThreadPool serializes overlapping regions, so a worker re-entering the
// pool would deadlock; the service constructs its pipelines with
// num_threads = 1 for exactly this reason.)
//
// Deadline discipline, in order:
//   * already past deadline at dequeue  → abstain(kDeadline), unprocessed
//     (the frame went stale in the queue; compute would be pure waste);
//   * admission ladder says kAbstain    → abstain(kOverload), unprocessed;
//   * completed past its deadline       → the decision — accept, reject,
//     or otherwise — is demoted to abstain(kDeadline). A late accept must
//     never unlock a door, and a late reject must never count against the
//     owner.
//
// Time: the scheduler reads one serve::Clock. In deterministic mode the
// clock is a VirtualClock (1 worker required) advanced by the per-frame
// costs the processor reports, so batch completion times — and therefore
// every deadline decision — are a pure function of the arrival schedule
// and the cost model. With a SteadyClock the same code path measures real
// elapsed time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/observability.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/admission.hpp"
#include "serve/clock.hpp"
#include "serve/ingest.hpp"

namespace echoimage::serve {

/// What a frame processor hands back: the decision plus the service cost
/// it wants accounted. With a VirtualClock the cost *is* the frame's
/// virtual service time (a synthetic model, or real compute measured by
/// the processor and folded into virtual time); with a SteadyClock it
/// still feeds the admission EWMA.
struct FrameResult {
  core::AuthDecision decision;
  double cost_s = 0.0;
};

/// Serves one frame at the given ladder rung. Called from pool workers —
/// implementations must be safe to invoke concurrently on distinct
/// frames (the pipeline-backed processor is: it only reads const state).
using FrameProcessor =
    std::function<FrameResult(const CaptureFrame&, ServiceMode)>;

/// Receives every completion, in batch order (deterministic given the
/// offer sequence). Called from the scheduler's own thread.
using CompletionSink = std::function<void(const CompletedFrame&)>;

struct SchedulerConfig {
  /// Frames drained per run_once (the batching grain across sessions).
  std::size_t max_batch = 8;
  /// Pool workers for the cross-frame fan-out; 1 = inline (required for
  /// VirtualClock), 0 = one per hardware thread.
  std::size_t num_threads = 1;
  AdmissionConfig admission{};

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;
};

/// Threading contract (capability model, DESIGN "Lock-capability model"):
/// one scheduler is driven by one thread — run_once mutates the admission
/// ladder and the shed/completed tallies without a capability because the
/// fan-out inside it touches only disjoint per-frame slots and the pool's
/// join is the happens-before edge back to the scheduler thread. The
/// shared structures it leans on carry their own capabilities: the ingest
/// queue's drain cursor, the rings, and the pool's region state are all
/// lock-guarded (and Clang-verified) inside their own classes.
class SessionScheduler {
 public:
  /// `ingest` and `clock` must outlive the scheduler. Pass `virtual_clock`
  /// (the same object as `clock`) to enter deterministic mode; requires
  /// num_threads == 1 (throws std::invalid_argument otherwise).
  SessionScheduler(SchedulerConfig config, IngestQueue& ingest, Clock& clock,
                   FrameProcessor processor,
                   VirtualClock* virtual_clock = nullptr);

  [[nodiscard]] const SchedulerConfig& config() const { return config_; }
  [[nodiscard]] const AdmissionController& admission() const {
    return admission_;
  }

  /// Wire latency histograms and shed counters into `obs` (null = off).
  void attach_observability(std::shared_ptr<const obs::Observability> obs);

  /// Drain and serve one batch; every drained frame produces exactly one
  /// completion through `sink`. Returns the number of frames drained (0 =
  /// queue was empty; the caller owns what to do with idle time).
  std::size_t run_once(const CompletionSink& sink);

  /// Totals since construction (telemetry/tests).
  [[nodiscard]] std::uint64_t completed_count() const { return completed_; }
  [[nodiscard]] std::uint64_t shed_overload_count() const {
    return shed_overload_;
  }
  [[nodiscard]] std::uint64_t shed_stale_count() const { return shed_stale_; }
  [[nodiscard]] std::uint64_t demoted_late_count() const {
    return demoted_late_;
  }

 private:
  SchedulerConfig config_;
  IngestQueue* ingest_;
  Clock* clock_;
  FrameProcessor processor_;
  VirtualClock* virtual_clock_;
  std::shared_ptr<runtime::ThreadPool> pool_;  ///< null when num_threads == 1
  AdmissionController admission_;

  std::uint64_t completed_ = 0;
  std::uint64_t shed_overload_ = 0;  ///< ladder floor: never processed
  std::uint64_t shed_stale_ = 0;     ///< stale at dequeue: never processed
  std::uint64_t demoted_late_ = 0;   ///< processed, finished late, demoted

  const obs::Counter* completed_counter_ = nullptr;
  const obs::Counter* shed_overload_counter_ = nullptr;
  const obs::Counter* shed_stale_counter_ = nullptr;
  const obs::Counter* demoted_late_counter_ = nullptr;
  const obs::Counter* mode_full_counter_ = nullptr;
  const obs::Counter* mode_reduced_counter_ = nullptr;
  const obs::Histogram* queue_wait_hist_ = nullptr;
  const obs::Histogram* service_hist_ = nullptr;
  const obs::Histogram* total_latency_hist_ = nullptr;
  const obs::Gauge* ewma_gauge_ = nullptr;
  const obs::Gauge* pressure_gauge_ = nullptr;
};

}  // namespace echoimage::serve
