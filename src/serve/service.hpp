// AuthService: the streaming authentication backend, assembled.
//
// One service = one bounded IngestQueue + one SessionScheduler + one
// clock, behind a two-call API: devices `submit` capture frames, the
// serving loop calls `step` to drain and serve a batch. Everything else —
// admission ladder, deadlines, shed accounting — happens inside.
//
// Two clock domains, one code path:
//   * deterministic = true  → a VirtualClock the scheduler advances from
//     reported frame costs; with the synthetic processor the whole run
//     (completions, sheds, deadline misses) is a bit-stable pure function
//     of (config, arrival schedule, seed). Requires 1 scheduler worker.
//   * deterministic = false → a SteadyClock; same logic against real time.
//
// Frame processors: `make_pipeline_processor` serves frames through the
// real EchoImage pipeline — two lanes, full and reduced-band, each with
// its own trained Authenticator, because pipeline features concatenate
// per-band blocks and a reduced-band image is a different feature space.
// `make_synthetic_processor` replaces the physics with a seeded cost +
// outcome model for benches and scheduler tests.
//
// Backend supervision: the serve supervisor default (see
// `serve_supervisor_config`) uses max_attempts = 1 — a backend cannot
// re-beep; only the device holding the microphone can. Device-side
// retries after an abstain are scheduled by the caller using
// core::backoff_step_s with the same config, whose nonzero seeded
// backoff_jitter keeps a fleet that was shed together from re-beeping in
// lockstep (see eval/serve_scenario.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/supervisor.hpp"
#include "ident/identify.hpp"
#include "obs/observability.hpp"
#include "store/store.hpp"
#include "serve/clock.hpp"
#include "serve/frame.hpp"
#include "serve/ingest.hpp"
#include "serve/scheduler.hpp"

namespace echoimage::serve {

/// Supervisor defaults for the serving path: single attempt (re-beeps are
/// device-side) and — deliberately nonzero, unlike the library default —
/// seeded backoff jitter, so the device retry schedules derived from this
/// config desynchronize across a fleet.
[[nodiscard]] core::CaptureSupervisorConfig serve_supervisor_config();

struct ServiceConfig {
  IngestConfig ingest{};
  SchedulerConfig scheduler{};
  core::CaptureSupervisorConfig supervisor = serve_supervisor_config();
  /// Latency budget granted to a frame submitted without an explicit
  /// deadline: absolute deadline = enqueue time + this.
  double default_deadline_s = 1.5;
  /// Virtual clock + single worker + reported costs = bit-stable runs.
  bool deterministic = false;

  /// Throws std::invalid_argument when inconsistent (e.g. deterministic
  /// with more than one scheduler worker).
  void validate() const;
};

/// Builds the frame processor against the service's own clock — the hook
/// for processors that need deadline probes in the service's time domain
/// (make_pipeline_processor) before that clock exists.
using ProcessorFactory = std::function<FrameProcessor(const Clock& clock)>;

class AuthService {
 public:
  AuthService(ServiceConfig config, FrameProcessor processor);
  AuthService(ServiceConfig config, const ProcessorFactory& factory);

  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] Clock& clock() { return *clock_; }
  [[nodiscard]] const Clock& clock() const { return *clock_; }
  /// Non-null only in deterministic mode; the test/bench driver advances
  /// it to the next arrival between steps.
  [[nodiscard]] VirtualClock* virtual_clock() { return virtual_clock_; }

  [[nodiscard]] const IngestQueue& ingest() const { return ingest_; }
  [[nodiscard]] const SessionScheduler& scheduler() const {
    return *scheduler_;
  }

  /// Wire ingest + scheduler metrics into `obs` (null = off).
  void attach_observability(std::shared_ptr<const obs::Observability> obs);

  /// Submit one capture for `session_id`, stamped with the current clock
  /// time and sequenced per session. `deadline_s` is the absolute answer-
  /// by time; <= 0 applies `default_deadline_s` from the enqueue stamp.
  /// `enqueue_time_s` >= 0 backdates the stamp (clamped to now) — the
  /// simulation hook for arrivals that occurred while the virtual-clock
  /// scheduler was mid-batch.
  OfferOutcome submit(std::uint64_t session_id,
                      std::shared_ptr<const core::CaptureAttempt> capture,
                      double deadline_s = 0.0, double enqueue_time_s = -1.0);

  /// Serve one batch; every drained frame reaches `sink` exactly once.
  /// Returns frames drained (0 = nothing queued).
  std::size_t step(const CompletionSink& sink);

  /// Serve until the queue is empty; returns total frames drained.
  std::size_t drain_all(const CompletionSink& sink);

  /// Frames submitted so far for `session_id` (the next frame's seq).
  [[nodiscard]] std::uint64_t submitted(std::uint64_t session_id) const;

 private:
  ServiceConfig config_;
  std::unique_ptr<Clock> clock_;
  VirtualClock* virtual_clock_ = nullptr;  ///< aliases clock_ when set
  IngestQueue ingest_;
  std::unique_ptr<SessionScheduler> scheduler_;
  std::vector<std::uint64_t> seq_;  ///< per-session submit count
};

/// The two trained lanes a pipeline processor serves from. `full` and
/// `full_auth` are required; when the reduced lane is absent,
/// kReducedBand frames are served on the full lane (no cheaper physics
/// available — the ladder still sheds via kAbstain above it). All
/// pointees must outlive the processor.
struct PipelineLanes {
  const core::EchoImagePipeline* full = nullptr;
  const core::Authenticator* full_auth = nullptr;
  const core::EchoImagePipeline* reduced = nullptr;
  const core::Authenticator* reduced_auth = nullptr;
};

/// Frame processor over the real pipeline. Each frame runs through a
/// CaptureSupervisor (deadline probe wired to `clock`), so capture-gate
/// abstains, drift handling, and deadline early-outs all behave exactly
/// as in the single-device path. Per-frame cost: measured wall time by
/// default; a synthetic cost > 0 replaces the measurement for frames
/// served at that mode (deterministic virtual-time accounting around real
/// compute), gated per mode — a lane whose synthetic cost is 0 keeps
/// reporting wall time, so the cost never silently reads 0. `clock` must
/// outlive the processor.
[[nodiscard]] FrameProcessor make_pipeline_processor(
    const PipelineLanes& lanes, const core::CaptureSupervisorConfig& supervisor,
    const Clock& clock, double synthetic_full_cost_s = 0.0,
    double synthetic_reduced_cost_s = 0.0);

/// Store-backed serving: the template-lookup backend of ISSUE 7. Instead
/// of one shared multi-user authenticator, each frame resolves its
/// session's claimed identity to a per-user verifier held in a durable
/// store::TemplateStore, then runs the capture through the supervisor
/// against that verifier. The store's honesty contract maps straight onto
/// the decision space:
///   * kFound       -> authenticate against the user's committed template;
///   * kAbsent      -> reject (the shard is healthy — the user is provably
///                     not enrolled);
///   * kQuarantined -> abstain with AbstainReason::kStorage (the bytes are
///                     unreadable; neither reject nor stale accept is
///                     honest, and shed_by_backend() keeps the session
///                     alive for a device-side re-beep).
struct StoreLanes {
  const core::EchoImagePipeline* pipeline = nullptr;
  const store::TemplateStore* templates = nullptr;
  /// Claimed identity per session; null means the identity map
  /// (session id == enrolled user id).
  std::function<int(std::uint64_t session_id)> user_of_session;
  /// Cost charged to frames answered from store state alone (absent or
  /// quarantined lookups): there is no pipeline run to measure, and the
  /// deterministic virtual clock must still advance.
  double lookup_cost_s = 2e-4;
};

/// Frame processor over a template store. `synthetic_cost_s` > 0 replaces
/// the measured wall time of authenticated (kFound) frames, as in
/// make_pipeline_processor. `clock`, the pipeline, and the store must
/// outlive the processor; commits into the store between frames are fine
/// (each frame re-resolves its record), concurrent commits are not — the
/// store is single-writer.
[[nodiscard]] FrameProcessor make_store_processor(
    const StoreLanes& lanes, const core::CaptureSupervisorConfig& supervisor,
    const Clock& clock, double synthetic_cost_s = 0.0);

/// Identification mode (ISSUE 8): frames carry no claimed identity — the
/// backend answers "who is speaking" against the whole enrolled gallery
/// through a two-stage ident::Identifier (centroid prefilter shortlist,
/// then per-user verification; see src/ident). The decision space:
///   * identified -> accepted with the winning user id;
///   * unknown    -> rejected (storage healthy: provably nobody enrolled
///                   verified);
///   * abstain    -> AbstainReason::kStorage backend shed (quarantined
///                   shards: "I cannot know" is the only honest answer).
/// Multi-beep captures vote per beep; the majority identity wins, exact
/// ties break toward the smaller user id.
struct IdentifyLanes {
  const core::EchoImagePipeline* pipeline = nullptr;
  /// Shared mutable identification state (index refresh, verifier cache);
  /// the processor serializes access internally, so it is safe under a
  /// multi-worker scheduler. Must outlive the processor.
  ident::Identifier* identifier = nullptr;
};

/// Frame processor running gallery identification. `synthetic_cost_s` > 0
/// replaces the measured wall time, as in make_pipeline_processor.
/// `clock`, the pipeline, and the identifier (and its store) must outlive
/// the processor.
[[nodiscard]] FrameProcessor make_identify_processor(
    const IdentifyLanes& lanes, const core::CaptureSupervisorConfig& supervisor,
    const Clock& clock, double synthetic_cost_s = 0.0);

/// Seeded stand-in for the physics: cost and outcome are pure functions
/// of (seed, session, seq), so scheduler benches and tests replay
/// bit-for-bit with zero DSP in the loop.
struct SyntheticProcessorConfig {
  double full_cost_s = 0.08;
  double reduced_cost_s = 0.03;
  /// Per-frame cost wiggle as a fraction of the base (seeded, in
  /// [1 - jitter, 1 + jitter]).
  double cost_jitter = 0.25;
  /// Fraction of frames whose (legitimate) owner is accepted; the rest
  /// are rejected as spoofer-like.
  double accept_rate = 0.9;
  std::uint64_t seed = 0xEC401;
};

[[nodiscard]] FrameProcessor make_synthetic_processor(
    SyntheticProcessorConfig config = {});

}  // namespace echoimage::serve
