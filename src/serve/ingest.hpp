// Bounded multi-session ingest: the front door of the auth service.
//
// Each device session owns a fixed-quota BoundedRing of capture frames —
// the per-session quota is the fairness mechanism (one chatty device can
// fill only its own ring, never the backend) and the ring bound plus a
// global frame budget is the overload mechanism (memory and staleness are
// capped by construction; there is no unbounded queue anywhere on the
// ingest path, a property echolint R5 enforces project-wide).
//
// Overflow is a policy, not an accident: kRejectNew backpressures the
// device (it keeps its frame, may retry after backoff), kDropOldest keeps
// the freshest evidence (the dropped frame's device simply never hears
// back — indistinguishable from a shed, and counted). Every drop path
// increments a named counter so the bench can reconcile offered load
// against completions exactly.
//
// Determinism: sessions are stored densely by id and drained round-robin
// from a persistent cursor, so the dequeue order is a pure function of
// the offer sequence — no hashing, no pointer order, no timing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/observability.hpp"
#include "runtime/ring_buffer.hpp"
#include "runtime/sharded.hpp"
#include "runtime/sync.hpp"
#include "serve/frame.hpp"

namespace echoimage::serve {

struct IngestConfig {
  /// Device sessions the queue is sized for (ids are [0, num_sessions)).
  std::size_t num_sessions = 16;
  /// Frames one session may have queued (its ring capacity / quota).
  std::size_t per_session_quota = 4;
  /// Frames queued across all sessions before new offers are rejected
  /// outright (the backend's memory budget). 0 = num_sessions * quota
  /// (i.e. only the per-session bound applies).
  std::size_t global_budget = 0;
  /// What to do when a session's ring is full.
  runtime::OverflowPolicy overflow = runtime::OverflowPolicy::kRejectNew;

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;
};

/// Outcome of one offer; mirrors runtime::PushOutcome plus the global cap.
enum class OfferOutcome {
  kAccepted,
  kRejectedSessionFull,   ///< per-session ring full under kRejectNew
  kReplacedOldest,        ///< accepted; session's stalest frame evicted
  kRejectedGlobalBudget,  ///< total queued frames at the global budget
  kRejectedUnknownSession,
};

[[nodiscard]] const char* to_string(OfferOutcome outcome);

class IngestQueue {
 public:
  explicit IngestQueue(IngestConfig config);

  [[nodiscard]] const IngestConfig& config() const { return config_; }

  /// Wire drop/depth accounting into `obs` (null = off). Call before
  /// serving traffic.
  void attach_observability(std::shared_ptr<const obs::Observability> obs);

  /// Submit one frame (any thread; concurrent offers from different
  /// sessions are safe — each ring locks internally and the tallies are
  /// atomic). The frame's session_id picks the ring; the configured
  /// OverflowPolicy applies when it is full. The global budget is checked
  /// without a queue-wide lock, so under concurrent producers it is
  /// approximate: racing offers can overshoot by at most one frame per
  /// in-flight producer (the hard bound is always the per-session rings,
  /// num_sessions * per_session_quota).
  OfferOutcome offer(CaptureFrame frame);

  /// Dequeue up to `max_frames` frames round-robin across sessions (one
  /// frame per session per lap, resuming at the cursor left by the last
  /// drain), appended to `out`. Returns the number dequeued. The intended
  /// consumer is single (the scheduler); the cursor is nevertheless a
  /// guarded capability, so a second drainer serializes instead of racing.
  std::size_t drain(std::size_t max_frames, std::vector<CaptureFrame>& out);

  /// Total frames currently queued (exact only while quiescent; the
  /// scheduler reads it between batches, where it is exact in the
  /// deterministic mode and a faithful snapshot otherwise).
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t session_depth(std::uint64_t session_id) const;

  /// Offer accounting since construction (exact, monotonic).
  [[nodiscard]] std::uint64_t accepted_count() const {
    return accepted_.load();
  }
  [[nodiscard]] std::uint64_t rejected_count() const {
    return rejected_.load();
  }
  [[nodiscard]] std::uint64_t replaced_count() const {
    return replaced_.load();
  }

 private:
  IngestConfig config_;
  /// Rings are internally synchronized (each BoundedRing locks per
  /// operation); the vector itself is laid out at construction and never
  /// reshaped, so the unique_ptrs are safe to read from any thread.
  std::vector<std::unique_ptr<runtime::BoundedRing<CaptureFrame>>> rings_;
  runtime::sync::Mutex drain_mutex_;  ///< capability over the drain cursor
  /// Round-robin resume point.
  std::size_t cursor_ EI_GUARDED_BY(drain_mutex_) = 0;
  // Atomic tallies: offer() is documented as callable from any thread, so
  // sessions may submit concurrently. Each count is an independent
  // monotonic total — no cross-count ordering is needed, only loss-free
  // increments (runtime::RelaxedCounter; echolint R2 keeps the raw atomic
  // inside src/runtime).
  runtime::RelaxedCounter accepted_;
  runtime::RelaxedCounter rejected_;
  runtime::RelaxedCounter replaced_;
  const obs::Counter* accepted_counter_ = nullptr;
  const obs::Counter* rejected_session_counter_ = nullptr;
  const obs::Counter* rejected_global_counter_ = nullptr;
  const obs::Counter* replaced_counter_ = nullptr;
  const obs::Gauge* depth_gauge_ = nullptr;
};

}  // namespace echoimage::serve
