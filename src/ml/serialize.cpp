#include "ml/serialize.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace echoimage::ml {

void write_tag(std::ostream& os, const char* tag) { os << tag << '\n'; }

void expect_tag(std::istream& is, const char* tag) {
  std::string got;
  if (!(is >> got) || got != tag)
    throw std::runtime_error(std::string("serialize: expected tag '") + tag +
                             "', got '" + got + "'");
}

void write_double(std::ostream& os, double v) {
  os << std::hexfloat << v << std::defaultfloat << '\n';
}

double read_double(std::istream& is) {
  // std::hexfloat extraction is unreliable across standard libraries; parse
  // the token with strtod, which accepts the hexfloat format. strtod never
  // throws, so malformed tokens must be caught via the end pointer: a
  // partially consumed token (or one strtod rejected outright) is corrupt
  // input, not a zero.
  std::string token;
  if (!(is >> token)) throw std::runtime_error("serialize: missing double");
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty())
    throw std::runtime_error("serialize: bad double '" + token + "'");
  return v;
}

void write_size(std::ostream& os, std::size_t v) { os << v << '\n'; }

std::size_t read_size(std::istream& is) {
  // Parse the token by hand: stream extraction into an unsigned type
  // silently wraps negative input modulo 2^64, turning "-1" into an
  // enormous (and fatal) allocation request downstream.
  std::string token;
  if (!(is >> token)) throw std::runtime_error("serialize: missing size");
  for (const char c : token)
    if (!std::isdigit(static_cast<unsigned char>(c)))
      throw std::runtime_error("serialize: bad size '" + token + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size())
    throw std::runtime_error("serialize: bad size '" + token + "'");
  return static_cast<std::size_t>(v);
}

void write_vector(std::ostream& os, const std::vector<double>& v) {
  write_size(os, v.size());
  for (const double x : v) write_double(os, x);
}

std::vector<double> read_vector(std::istream& is) {
  const std::size_t n = read_size(is);
  if (n > (1u << 26))
    throw std::runtime_error("serialize: implausible vector size");
  std::vector<double> v(n);
  for (double& x : v) x = read_double(is);
  return v;
}

void write_matrix(std::ostream& os,
                  const std::vector<std::vector<double>>& m) {
  write_size(os, m.size());
  for (const auto& row : m) write_vector(os, row);
}

std::vector<std::vector<double>> read_matrix(std::istream& is) {
  const std::size_t n = read_size(is);
  if (n > (1u << 22))
    throw std::runtime_error("serialize: implausible matrix size");
  std::vector<std::vector<double>> m(n);
  for (auto& row : m) row = read_vector(is);
  return m;
}

void save(std::ostream& os, const KernelParams& k) {
  write_tag(os, "kernel");
  write_size(os, k.type == KernelType::kLinear ? 0 : 1);
  write_double(os, k.gamma);
}

KernelParams load_kernel(std::istream& is) {
  expect_tag(is, "kernel");
  KernelParams k;
  k.type = read_size(is) == 0 ? KernelType::kLinear : KernelType::kRbf;
  k.gamma = read_double(is);
  return k;
}

void save(std::ostream& os, const StandardScaler& s) {
  write_tag(os, "scaler");
  write_vector(os, s.mean_);
  write_vector(os, s.std_);
}

StandardScaler load_scaler(std::istream& is) {
  expect_tag(is, "scaler");
  StandardScaler s;
  s.mean_ = read_vector(is);
  s.std_ = read_vector(is);
  if (s.mean_.size() != s.std_.size())
    throw std::runtime_error("serialize: scaler mean/std size mismatch");
  return s;
}

void save(std::ostream& os, const BinarySvm& svm) {
  write_tag(os, "binary_svm");
  save(os, svm.kernel_);
  write_matrix(os, svm.support_vectors_);
  write_vector(os, svm.coeffs_);
  write_double(os, svm.bias_);
}

BinarySvm load_binary_svm(std::istream& is) {
  expect_tag(is, "binary_svm");
  BinarySvm svm;
  svm.kernel_ = load_kernel(is);
  svm.support_vectors_ = read_matrix(is);
  svm.coeffs_ = read_vector(is);
  svm.bias_ = read_double(is);
  if (svm.support_vectors_.size() != svm.coeffs_.size())
    throw std::runtime_error("serialize: SVM sv/coeff count mismatch");
  return svm;
}

void save(std::ostream& os, const MultiClassSvm& svm) {
  write_tag(os, "multiclass_svm");
  write_size(os, svm.classes_.size());
  for (const int c : svm.classes_) os << c << '\n';
  write_size(os, svm.pairs_.size());
  for (const auto& p : svm.pairs_) {
    os << p.class_a << ' ' << p.class_b << '\n';
    save(os, p.svm);
  }
}

MultiClassSvm load_multiclass_svm(std::istream& is) {
  expect_tag(is, "multiclass_svm");
  MultiClassSvm svm;
  const std::size_t nc = read_size(is);
  if (nc > (1u << 16))
    throw std::runtime_error("serialize: implausible class count");
  svm.classes_.resize(nc);
  for (int& c : svm.classes_)
    if (!(is >> c)) throw std::runtime_error("serialize: missing class");
  const std::size_t np = read_size(is);
  if (np > (1u << 20))
    throw std::runtime_error("serialize: implausible pair count");
  svm.pairs_.resize(np);
  for (auto& p : svm.pairs_) {
    if (!(is >> p.class_a >> p.class_b))
      throw std::runtime_error("serialize: missing pair labels");
    p.svm = load_binary_svm(is);
  }
  return svm;
}

void save(std::ostream& os, const Svdd& svdd) {
  write_tag(os, "svdd");
  save(os, svdd.kernel_);
  write_matrix(os, svdd.support_vectors_);
  write_vector(os, svdd.alphas_);
  write_double(os, svdd.center_norm_sq_);
  write_double(os, svdd.radius_sq_);
  write_double(os, svdd.margin_);
}

Svdd load_svdd(std::istream& is) {
  expect_tag(is, "svdd");
  Svdd svdd;
  svdd.kernel_ = load_kernel(is);
  svdd.support_vectors_ = read_matrix(is);
  svdd.alphas_ = read_vector(is);
  svdd.center_norm_sq_ = read_double(is);
  svdd.radius_sq_ = read_double(is);
  svdd.margin_ = read_double(is);
  if (svdd.support_vectors_.size() != svdd.alphas_.size())
    throw std::runtime_error("serialize: SVDD sv/alpha count mismatch");
  return svdd;
}

}  // namespace echoimage::ml
