// Support vector machine classifiers (paper Sec. V-E).
//
// A from-scratch SMO solver for the binary soft-margin C-SVC dual, plus a
// one-vs-one multi-class wrapper — the "n-class SVM classifier" that
// verifies which registered user is speaking after the SVDD spoofer gate.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "ml/kernels.hpp"

namespace echoimage::ml {

struct SvmTrainParams {
  double c = 10.0;          ///< soft-margin penalty
  double tolerance = 1e-3;  ///< KKT violation tolerance
  std::size_t max_passes = 8;    ///< passes without change before stopping
  std::size_t max_iterations = 20000;  ///< hard cap on SMO sweeps
};

/// Trained binary classifier: f(x) = sum_i alpha_i y_i k(x_i, x) + b.
class BinarySvm {
 public:
  BinarySvm() = default;

  /// Train on labels in {-1, +1}. Throws std::invalid_argument on empty,
  /// ragged, single-class, or mislabeled input.
  static BinarySvm train(const std::vector<std::vector<double>>& x,
                         const std::vector<int>& y,
                         const KernelParams& kernel,
                         const SvmTrainParams& params = {});

  /// Signed decision value; positive means class +1.
  [[nodiscard]] double decision(const std::vector<double>& x) const;

  /// Predicted label in {-1, +1}.
  [[nodiscard]] int predict(const std::vector<double>& x) const;

  [[nodiscard]] std::size_t num_support_vectors() const {
    return support_vectors_.size();
  }
  [[nodiscard]] double bias() const { return bias_; }
  [[nodiscard]] const KernelParams& kernel() const { return kernel_; }

 private:
  friend void save(std::ostream&, const BinarySvm&);
  friend BinarySvm load_binary_svm(std::istream&);
  KernelParams kernel_;
  std::vector<std::vector<double>> support_vectors_;
  std::vector<double> coeffs_;  ///< alpha_i * y_i per support vector
  double bias_ = 0.0;
};

/// One-vs-one multi-class SVM with majority voting (decision-value sum
/// breaks ties).
class MultiClassSvm {
 public:
  MultiClassSvm() = default;

  /// Train on integer labels (any values; at least two distinct).
  static MultiClassSvm train(const std::vector<std::vector<double>>& x,
                             const std::vector<int>& y,
                             const KernelParams& kernel,
                             const SvmTrainParams& params = {});

  [[nodiscard]] int predict(const std::vector<double>& x) const;
  [[nodiscard]] const std::vector<int>& classes() const { return classes_; }

 private:
  friend void save(std::ostream&, const MultiClassSvm&);
  friend MultiClassSvm load_multiclass_svm(std::istream&);
  struct PairModel {
    int class_a = 0, class_b = 0;  ///< +1 label, -1 label
    BinarySvm svm;
  };
  std::vector<int> classes_;
  std::vector<PairModel> pairs_;
};

}  // namespace echoimage::ml
