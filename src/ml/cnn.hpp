// Forward-only convolutional feature extractor (paper Sec. V-D).
//
// The paper feeds acoustic images to a frozen, pre-trained VGGish network
// and takes the 5th pooling layer's activations as features for the SVM.
// Shipping AudioSet weights is not possible offline, so this extractor uses
// the same *architecture family* (stacked 3x3 conv + ReLU + 2x2 max-pool
// blocks) with fixed, seeded He-initialized filters — "random convolutional
// features". The network is never trained, exactly as in the paper; the
// SVM/SVDD layer on top does all the learning. See DESIGN.md for why this
// substitution preserves the paper's behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/tensor.hpp"

namespace echoimage::ml {

/// 3x3 same-padding convolution with per-output-channel bias.
class Conv2D {
 public:
  /// He-normal initialization from the given seed (deterministic).
  Conv2D(std::size_t in_channels, std::size_t out_channels,
         std::uint64_t seed);

  [[nodiscard]] std::size_t in_channels() const { return in_; }
  [[nodiscard]] std::size_t out_channels() const { return out_; }

  [[nodiscard]] Tensor3 forward(const Tensor3& x) const;

 private:
  [[nodiscard]] double weight(std::size_t ky, std::size_t kx, std::size_t ci,
                              std::size_t co) const {
    return weights_[((ky * 3 + kx) * in_ + ci) * out_ + co];
  }
  std::size_t in_, out_;
  std::vector<double> weights_;  ///< [3][3][in][out]
  std::vector<double> bias_;     ///< [out]
};

/// Element-wise ReLU.
[[nodiscard]] Tensor3 relu(const Tensor3& x);

/// Element-wise leaky ReLU (slope `alpha` for negative inputs).
[[nodiscard]] Tensor3 leaky_relu(const Tensor3& x, double alpha);

/// 2x2 max pooling with stride 2 (odd trailing rows/cols dropped, as in
/// VGG).
[[nodiscard]] Tensor3 max_pool2(const Tensor3& x);

/// 2x2 average pooling with stride 2.
[[nodiscard]] Tensor3 avg_pool2(const Tensor3& x);

/// VGGish-style extractor: resize -> [conv3x3 + ReLU + pool2] blocks ->
/// flatten the final pooled activations.
class VggishFeatureExtractor {
 public:
  struct Config {
    std::size_t input_size = 48;  ///< images are resized to this square size
    std::vector<std::size_t> block_channels = {8, 16, 32, 32};
    std::uint64_t seed = 0xF00DF00DULL;
    /// Log-scale pixels before the network: x -> log(x + eps). VGGish
    /// consumes log-magnitude inputs, and the compression turns
    /// multiplicative nuisances (pose gain, spreading loss) into small
    /// additive offsets while keeping the user's reflectivity pattern — and
    /// the distance information that data augmentation models — intact.
    bool log_scale = false;
    double log_epsilon = 1e-6;
    /// Untrained (seeded random) filters act as a random projection; that
    /// projection must preserve image geometry (Johnson-Lindenstrauss) for
    /// the SVM layer to see user separation. Average pooling and a leaky
    /// activation keep the map near-isometric on the smooth acoustic
    /// images; hard max-pool + ReLU (VGG's choices, which work with
    /// *trained* filters) are available for the ablation bench.
    bool average_pool = true;
    double leaky_slope = 0.3;  ///< 0 = hard ReLU
    /// Skip the network entirely and return the resized image as the
    /// feature vector — the "manual/raw feature" baseline the paper argues
    /// against (Sec. V-D), kept for the ablation bench.
    bool bypass_network = false;
  };

  VggishFeatureExtractor();  ///< default Config
  explicit VggishFeatureExtractor(Config config);

  [[nodiscard]] const Config& config() const { return config_; }

  /// Number of features produced per image.
  [[nodiscard]] std::size_t feature_dim() const;

  /// Full pipeline: bilinear-resize the acoustic image to the input size,
  /// run the frozen network, flatten the last pool output. Deliberately does
  /// NOT normalize image amplitude: the overall echo level carries distance
  /// information the data-augmentation experiment (paper Sec. VI-E)
  /// depends on.
  [[nodiscard]] std::vector<double> extract(const Matrix2D& image) const;

  /// Forward pass on an already-sized tensor (exposed for tests).
  [[nodiscard]] Tensor3 forward(const Tensor3& input) const;

 private:
  Config config_;
  std::vector<Conv2D> convs_;
};

}  // namespace echoimage::ml
