#include "ml/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace echoimage::ml {

void StandardScaler::fit(const std::vector<std::vector<double>>& x) {
  if (x.empty())
    throw std::invalid_argument("StandardScaler: empty training set");
  const std::size_t d = x.front().size();
  if (d == 0) throw std::invalid_argument("StandardScaler: zero-dim data");
  for (const auto& row : x)
    if (row.size() != d)
      throw std::invalid_argument("StandardScaler: ragged dataset");
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  const double n = static_cast<double>(x.size());
  for (const auto& row : x)
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  for (std::size_t j = 0; j < d; ++j) mean_[j] /= n;
  for (const auto& row : x)
    for (std::size_t j = 0; j < d; ++j) {
      const double dv = row[j] - mean_[j];
      std_[j] += dv * dv;
    }
  double sigma_sum = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    std_[j] = std::sqrt(std_[j] / n);
    sigma_sum += std_[j];
  }
  // Relative floor: features that happen to be (nearly) constant on the
  // training set must not produce unbounded z-scores on unseen data.
  const double floor =
      std::max(1e-12, 0.05 * sigma_sum / static_cast<double>(d));
  for (std::size_t j = 0; j < d; ++j) std_[j] = std::max(std_[j], floor);
}

std::vector<double> StandardScaler::transform(
    const std::vector<double>& x) const {
  if (!is_fitted()) throw std::logic_error("StandardScaler: not fitted");
  if (x.size() != mean_.size())
    throw std::invalid_argument("StandardScaler: dimension mismatch");
  std::vector<double> out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j)
    out[j] = (x[j] - mean_[j]) / std_[j];
  return out;
}

std::vector<std::vector<double>> StandardScaler::transform_batch(
    const std::vector<std::vector<double>>& x) const {
  std::vector<std::vector<double>> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(transform(row));
  return out;
}

}  // namespace echoimage::ml
