// Support Vector Domain Description (Tax & Duin 1999) — the one-class
// spoofer gate of paper Sec. V-E.
//
// SVDD fits the smallest hypersphere (in kernel feature space) enclosing
// the legitimate users' training features; a test sample is accepted when
// it falls inside the (slightly relaxed) sphere. Dual problem:
//   min_a  sum_ij a_i a_j K_ij - sum_i a_i K_ii
//   s.t.   0 <= a_i <= C,  sum_i a_i = 1
// solved by pairwise coordinate descent that preserves the equality
// constraint (SMO-style).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "ml/kernels.hpp"

namespace echoimage::ml {

struct SvddTrainParams {
  /// Upper bound on the outlier fraction of the training set; C = 1/(nu*n).
  double nu = 0.01;
  double tolerance = 1e-6;
  std::size_t max_sweeps = 200;
  /// Acceptance slack: a sample passes when dist^2 <= (1+margin) * R^2.
  double radius_margin = 0.10;
};

class Svdd {
 public:
  Svdd() = default;

  /// Train on one-class data. Throws std::invalid_argument on empty/ragged
  /// input or nu outside (0, 1].
  static Svdd train(const std::vector<std::vector<double>>& x,
                    const KernelParams& kernel,
                    const SvddTrainParams& params = {});

  /// Squared kernel-space distance from x to the sphere center.
  [[nodiscard]] double distance_sq(const std::vector<double>& x) const;

  /// R^2 of the fitted sphere.
  [[nodiscard]] double radius_sq() const { return radius_sq_; }

  /// Decision value: (1+margin)*R^2 - dist^2(x); >= 0 means accept.
  [[nodiscard]] double decision(const std::vector<double>& x) const;

  /// True when x is inside the (relaxed) sphere — a legitimate user.
  [[nodiscard]] bool accepts(const std::vector<double>& x) const {
    return decision(x) >= 0.0;
  }

  [[nodiscard]] std::size_t num_support_vectors() const {
    return support_vectors_.size();
  }

 private:
  friend void save(std::ostream&, const Svdd&);
  friend Svdd load_svdd(std::istream&);
  KernelParams kernel_;
  std::vector<std::vector<double>> support_vectors_;
  std::vector<double> alphas_;
  double center_norm_sq_ = 0.0;  ///< sum_ij a_i a_j K_ij (the a^T K a term)
  double radius_sq_ = 0.0;
  double margin_ = 0.0;
};

}  // namespace echoimage::ml
