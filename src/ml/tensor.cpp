#include "ml/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace echoimage::ml {

Tensor3 to_tensor(const Matrix2D& m) {
  Tensor3 t(m.rows(), m.cols(), 1);
  t.data() = m.data();
  return t;
}

Matrix2D bilinear_resize(const Matrix2D& in, std::size_t rows,
                         std::size_t cols) {
  Matrix2D out(rows, cols);
  if (in.rows() == 0 || in.cols() == 0 || rows == 0 || cols == 0) return out;
  const double ry = rows > 1
                        ? static_cast<double>(in.rows() - 1) /
                              static_cast<double>(rows - 1)
                        : 0.0;
  const double rx = cols > 1
                        ? static_cast<double>(in.cols() - 1) /
                              static_cast<double>(cols - 1)
                        : 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double sy = static_cast<double>(r) * ry;
    const std::size_t y0 = static_cast<std::size_t>(sy);
    const std::size_t y1 = std::min(y0 + 1, in.rows() - 1);
    const double fy = sy - static_cast<double>(y0);
    for (std::size_t c = 0; c < cols; ++c) {
      const double sx = static_cast<double>(c) * rx;
      const std::size_t x0 = static_cast<std::size_t>(sx);
      const std::size_t x1 = std::min(x0 + 1, in.cols() - 1);
      const double fx = sx - static_cast<double>(x0);
      const double top = in(y0, x0) * (1.0 - fx) + in(y0, x1) * fx;
      const double bot = in(y1, x0) * (1.0 - fx) + in(y1, x1) * fx;
      out(r, c) = top * (1.0 - fy) + bot * fy;
    }
  }
  return out;
}

Matrix2D min_max_normalize(const Matrix2D& in) {
  Matrix2D out = in;
  if (in.size() == 0) return out;
  const auto [mn_it, mx_it] =
      std::minmax_element(in.data().begin(), in.data().end());
  const double mn = *mn_it, mx = *mx_it;
  const double range = mx - mn;
  if (range <= 0.0) {
    std::fill(out.data().begin(), out.data().end(), 0.0);
    return out;
  }
  for (double& v : out.data()) v = (v - mn) / range;
  return out;
}

}  // namespace echoimage::ml
