#include "ml/svm.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <stdexcept>

namespace echoimage::ml {

namespace {

void validate_training_set(const std::vector<std::vector<double>>& x,
                           const std::vector<int>& y) {
  if (x.empty()) throw std::invalid_argument("svm: empty training set");
  if (x.size() != y.size())
    throw std::invalid_argument("svm: feature/label count mismatch");
  const std::size_t d = x.front().size();
  if (d == 0) throw std::invalid_argument("svm: zero-dimensional features");
  for (const auto& row : x)
    if (row.size() != d) throw std::invalid_argument("svm: ragged dataset");
}

}  // namespace

BinarySvm BinarySvm::train(const std::vector<std::vector<double>>& x,
                           const std::vector<int>& y,
                           const KernelParams& kernel,
                           const SvmTrainParams& params) {
  validate_training_set(x, y);
  for (const int label : y)
    if (label != 1 && label != -1)
      throw std::invalid_argument("BinarySvm: labels must be +1 / -1");
  const std::size_t n = x.size();
  bool has_pos = false, has_neg = false;
  for (const int label : y) (label == 1 ? has_pos : has_neg) = true;
  if (!has_pos || !has_neg)
    throw std::invalid_argument("BinarySvm: need both classes present");

  const std::vector<double> k = gram_matrix(kernel, x);
  std::vector<double> alpha(n, 0.0);
  double b = 0.0;

  // f(i) - y_i, using the current alphas.
  const auto error = [&](std::size_t i) {
    double f = b;
    for (std::size_t j = 0; j < n; ++j)
      if (alpha[j] > 0.0) f += alpha[j] * y[j] * k[j * n + i];
    return f - static_cast<double>(y[i]);
  };

  // Simplified SMO (Platt; CS229 variant): sweep examples, pair each KKT
  // violator with a random partner, solve the two-variable subproblem
  // analytically.
  std::mt19937_64 rng(0xC0FFEE);
  std::size_t passes = 0, iters = 0;
  const double c = params.c;
  const double tol = params.tolerance;
  while (passes < params.max_passes && iters < params.max_iterations) {
    ++iters;
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ei = error(i);
      const bool violates = (y[i] * ei < -tol && alpha[i] < c) ||
                            (y[i] * ei > tol && alpha[i] > 0.0);
      if (!violates) continue;
      std::size_t j = std::uniform_int_distribution<std::size_t>(0, n - 2)(rng);
      if (j >= i) ++j;
      const double ej = error(j);
      const double ai_old = alpha[i], aj_old = alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
      if (eta >= 0.0) continue;
      double aj = aj_old - static_cast<double>(y[j]) * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-7) continue;
      const double ai =
          ai_old + static_cast<double>(y[i] * y[j]) * (aj_old - aj);
      alpha[i] = ai;
      alpha[j] = aj;
      const double b1 = b - ei - y[i] * (ai - ai_old) * k[i * n + i] -
                        y[j] * (aj - aj_old) * k[i * n + j];
      const double b2 = b - ej - y[i] * (ai - ai_old) * k[i * n + j] -
                        y[j] * (aj - aj_old) * k[j * n + j];
      if (ai > 0.0 && ai < c)
        b = b1;
      else if (aj > 0.0 && aj < c)
        b = b2;
      else
        b = 0.5 * (b1 + b2);
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  BinarySvm model;
  model.kernel_ = kernel;
  model.bias_ = b;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-9) {
      model.support_vectors_.push_back(x[i]);
      model.coeffs_.push_back(alpha[i] * static_cast<double>(y[i]));
    }
  }
  return model;
}

double BinarySvm::decision(const std::vector<double>& x) const {
  double f = bias_;
  for (std::size_t i = 0; i < support_vectors_.size(); ++i)
    f += coeffs_[i] * kernel_value(kernel_, support_vectors_[i], x);
  return f;
}

int BinarySvm::predict(const std::vector<double>& x) const {
  return decision(x) >= 0.0 ? 1 : -1;
}

MultiClassSvm MultiClassSvm::train(const std::vector<std::vector<double>>& x,
                                   const std::vector<int>& y,
                                   const KernelParams& kernel,
                                   const SvmTrainParams& params) {
  validate_training_set(x, y);
  MultiClassSvm model;
  for (const int label : y)
    if (std::find(model.classes_.begin(), model.classes_.end(), label) ==
        model.classes_.end())
      model.classes_.push_back(label);
  std::sort(model.classes_.begin(), model.classes_.end());
  if (model.classes_.size() < 2)
    throw std::invalid_argument("MultiClassSvm: need at least two classes");

  for (std::size_t a = 0; a < model.classes_.size(); ++a) {
    for (std::size_t bi = a + 1; bi < model.classes_.size(); ++bi) {
      const int ca = model.classes_[a], cb = model.classes_[bi];
      std::vector<std::vector<double>> xs;
      std::vector<int> ys;
      for (std::size_t i = 0; i < x.size(); ++i) {
        if (y[i] == ca) {
          xs.push_back(x[i]);
          ys.push_back(1);
        } else if (y[i] == cb) {
          xs.push_back(x[i]);
          ys.push_back(-1);
        }
      }
      PairModel pm;
      pm.class_a = ca;
      pm.class_b = cb;
      pm.svm = BinarySvm::train(xs, ys, kernel, params);
      model.pairs_.push_back(std::move(pm));
    }
  }
  return model;
}

int MultiClassSvm::predict(const std::vector<double>& x) const {
  if (pairs_.empty()) throw std::logic_error("MultiClassSvm: not trained");
  std::map<int, double> votes;       // label -> vote count
  std::map<int, double> confidence;  // label -> sum |decision|
  for (const PairModel& pm : pairs_) {
    const double d = pm.svm.decision(x);
    const int winner = d >= 0.0 ? pm.class_a : pm.class_b;
    votes[winner] += 1.0;
    confidence[winner] += std::abs(d);
  }
  int best = classes_.front();
  double best_votes = -1.0, best_conf = -1.0;
  for (const int c : classes_) {
    const double v = votes.count(c) ? votes.at(c) : 0.0;
    const double conf = confidence.count(c) ? confidence.at(c) : 0.0;
    if (v > best_votes || (v == best_votes && conf > best_conf)) {
      best = c;
      best_votes = v;
      best_conf = conf;
    }
  }
  return best;
}

}  // namespace echoimage::ml
