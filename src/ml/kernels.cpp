#include "ml/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace echoimage::ml {

double kernel_value(const KernelParams& params, const std::vector<double>& a,
                    const std::vector<double>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("kernel_value: dimension mismatch");
  switch (params.type) {
    case KernelType::kLinear: {
      double s = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
      return s;
    }
    case KernelType::kRbf: {
      double d2 = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
      }
      return std::exp(-params.gamma * d2);
    }
  }
  throw std::invalid_argument("kernel_value: unknown kernel type");
}

std::vector<double> gram_matrix(const KernelParams& params,
                                const std::vector<std::vector<double>>& x) {
  const std::size_t n = x.size();
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel_value(params, x[i], x[j]);
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }
  return k;
}

double rbf_gamma_scale(const std::vector<std::vector<double>>& x) {
  if (x.empty() || x.front().empty()) return 1.0;
  const std::size_t n = x.size();
  const std::size_t d = x.front().size();
  double total_var = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    double s = 0.0, s2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      s += x[i][j];
      s2 += x[i][j] * x[i][j];
    }
    const double m = s / static_cast<double>(n);
    total_var += std::max(0.0, s2 / static_cast<double>(n) - m * m);
  }
  const double mean_var = total_var / static_cast<double>(d);
  if (mean_var <= 1e-12) return 1.0;
  return 1.0 / (static_cast<double>(d) * mean_var);
}

double rbf_gamma_median(const std::vector<std::vector<double>>& x,
                        std::size_t max_pairs) {
  const std::size_t n = x.size();
  if (n < 2) return 1.0;
  std::vector<double> d2s;
  d2s.reserve(max_pairs);
  // Deterministic strided pair sampling keeps large datasets cheap.
  const std::size_t total_pairs = n * (n - 1) / 2;
  const std::size_t stride = std::max<std::size_t>(1, total_pairs / max_pairs);
  std::size_t counter = 0;
  for (std::size_t i = 0; i < n && d2s.size() < max_pairs; ++i) {
    for (std::size_t j = i + 1; j < n && d2s.size() < max_pairs; ++j) {
      if (counter++ % stride != 0) continue;
      double d2 = 0.0;
      for (std::size_t k = 0; k < x[i].size(); ++k) {
        const double d = x[i][k] - x[j][k];
        d2 += d * d;
      }
      d2s.push_back(d2);
    }
  }
  if (d2s.empty()) return 1.0;
  std::nth_element(d2s.begin(), d2s.begin() + d2s.size() / 2, d2s.end());
  const double med = d2s[d2s.size() / 2];
  return med > 1e-12 ? 1.0 / med : 1.0;
}

}  // namespace echoimage::ml
