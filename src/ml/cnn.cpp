#include "ml/cnn.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace echoimage::ml {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::uint64_t seed)
    : in_(in_channels), out_(out_channels) {
  if (in_ == 0 || out_ == 0)
    throw std::invalid_argument("Conv2D: channel counts must be positive");
  std::mt19937_64 gen(seed);
  // He-normal: std = sqrt(2 / fan_in) suits ReLU activations.
  const double stddev = std::sqrt(2.0 / (9.0 * static_cast<double>(in_)));
  std::normal_distribution<double> dist(0.0, stddev);
  weights_.resize(9 * in_ * out_);
  for (double& w : weights_) w = dist(gen);
  bias_.assign(out_, 0.0);
}

Tensor3 Conv2D::forward(const Tensor3& x) const {
  if (x.channels() != in_)
    throw std::invalid_argument("Conv2D: channel mismatch");
  const std::size_t h = x.height(), w = x.width();
  Tensor3 y(h, w, out_);
  for (std::size_t oy = 0; oy < h; ++oy) {
    for (std::size_t ox = 0; ox < w; ++ox) {
      for (std::size_t ky = 0; ky < 3; ++ky) {
        const std::ptrdiff_t iy =
            static_cast<std::ptrdiff_t>(oy + ky) - 1;
        if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
        for (std::size_t kx = 0; kx < 3; ++kx) {
          const std::ptrdiff_t ix =
              static_cast<std::ptrdiff_t>(ox + kx) - 1;
          if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
          for (std::size_t ci = 0; ci < in_; ++ci) {
            const double v = x.at(static_cast<std::size_t>(iy),
                                  static_cast<std::size_t>(ix), ci);
            if (v == 0.0) continue;
            const double* wrow =
                &weights_[((ky * 3 + kx) * in_ + ci) * out_];
            double* yrow = &y.at(oy, ox, 0);
            for (std::size_t co = 0; co < out_; ++co) yrow[co] += v * wrow[co];
          }
        }
      }
      double* yrow = &y.at(oy, ox, 0);
      for (std::size_t co = 0; co < out_; ++co) yrow[co] += bias_[co];
    }
  }
  return y;
}

Tensor3 relu(const Tensor3& x) {
  Tensor3 y = x;
  for (double& v : y.data()) v = std::max(0.0, v);
  return y;
}

Tensor3 leaky_relu(const Tensor3& x, double alpha) {
  Tensor3 y = x;
  for (double& v : y.data())
    if (v < 0.0) v *= alpha;
  return y;
}

Tensor3 max_pool2(const Tensor3& x) {
  const std::size_t h = x.height() / 2, w = x.width() / 2;
  Tensor3 y(h, w, x.channels());
  for (std::size_t oy = 0; oy < h; ++oy)
    for (std::size_t ox = 0; ox < w; ++ox)
      for (std::size_t c = 0; c < x.channels(); ++c) {
        const double a = x.at(2 * oy, 2 * ox, c);
        const double b = x.at(2 * oy, 2 * ox + 1, c);
        const double d = x.at(2 * oy + 1, 2 * ox, c);
        const double e = x.at(2 * oy + 1, 2 * ox + 1, c);
        y.at(oy, ox, c) = std::max(std::max(a, b), std::max(d, e));
      }
  return y;
}

VggishFeatureExtractor::VggishFeatureExtractor()
    : VggishFeatureExtractor(Config{}) {}

VggishFeatureExtractor::VggishFeatureExtractor(Config config)
    : config_(std::move(config)) {
  if (config_.block_channels.empty())
    throw std::invalid_argument("VggishFeatureExtractor: no blocks");
  if (config_.input_size >> config_.block_channels.size() == 0)
    throw std::invalid_argument(
        "VggishFeatureExtractor: input too small for the pooling depth");
  std::size_t in = 1;
  std::uint64_t seed = config_.seed;
  for (const std::size_t out : config_.block_channels) {
    convs_.emplace_back(in, out, seed);
    in = out;
    seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  }
}

std::size_t VggishFeatureExtractor::feature_dim() const {
  std::size_t side = config_.input_size;
  for (std::size_t i = 0; i < convs_.size(); ++i) side /= 2;
  return side * side * config_.block_channels.back();
}

Tensor3 avg_pool2(const Tensor3& x) {
  const std::size_t h = x.height() / 2, w = x.width() / 2;
  Tensor3 y(h, w, x.channels());
  for (std::size_t oy = 0; oy < h; ++oy)
    for (std::size_t ox = 0; ox < w; ++ox)
      for (std::size_t c = 0; c < x.channels(); ++c) {
        y.at(oy, ox, c) = 0.25 * (x.at(2 * oy, 2 * ox, c) +
                                  x.at(2 * oy, 2 * ox + 1, c) +
                                  x.at(2 * oy + 1, 2 * ox, c) +
                                  x.at(2 * oy + 1, 2 * ox + 1, c));
      }
  return y;
}

Tensor3 VggishFeatureExtractor::forward(const Tensor3& input) const {
  Tensor3 t = input;
  for (const Conv2D& conv : convs_) {
    t = conv.forward(t);
    t = config_.leaky_slope > 0.0 ? leaky_relu(t, config_.leaky_slope)
                                  : relu(t);
    t = config_.average_pool ? avg_pool2(t) : max_pool2(t);
  }
  return t;
}

std::vector<double> VggishFeatureExtractor::extract(
    const Matrix2D& image) const {
  Matrix2D resized =
      bilinear_resize(image, config_.input_size, config_.input_size);
  if (config_.log_scale) {
    for (double& v : resized.data())
      v = std::log(std::max(v, 0.0) + config_.log_epsilon);
  }
  if (config_.bypass_network) return resized.data();
  const Tensor3 out = forward(to_tensor(resized));
  return out.data();
}

}  // namespace echoimage::ml
