// Model serialization: save/load trained classifiers and scalers through
// std::ostream / std::istream so an enrollment database survives restarts.
//
// The format is a line-oriented tagged text format; doubles are written in
// hexfloat so round-trips are bit-exact. Every `save` is paired with a
// `load` that throws std::runtime_error on malformed input.
#pragma once

#include <iosfwd>

#include "ml/kernels.hpp"
#include "ml/scaler.hpp"
#include "ml/svdd.hpp"
#include "ml/svm.hpp"

namespace echoimage::ml {

/// Primitive writers/readers (exposed for reuse by higher layers).
void write_tag(std::ostream& os, const char* tag);
void expect_tag(std::istream& is, const char* tag);
void write_double(std::ostream& os, double v);
[[nodiscard]] double read_double(std::istream& is);
void write_size(std::ostream& os, std::size_t v);
[[nodiscard]] std::size_t read_size(std::istream& is);
void write_vector(std::ostream& os, const std::vector<double>& v);
[[nodiscard]] std::vector<double> read_vector(std::istream& is);
void write_matrix(std::ostream& os,
                  const std::vector<std::vector<double>>& m);
[[nodiscard]] std::vector<std::vector<double>> read_matrix(std::istream& is);

void save(std::ostream& os, const KernelParams& k);
[[nodiscard]] KernelParams load_kernel(std::istream& is);

void save(std::ostream& os, const StandardScaler& s);
[[nodiscard]] StandardScaler load_scaler(std::istream& is);

void save(std::ostream& os, const BinarySvm& svm);
[[nodiscard]] BinarySvm load_binary_svm(std::istream& is);

void save(std::ostream& os, const MultiClassSvm& svm);
[[nodiscard]] MultiClassSvm load_multiclass_svm(std::istream& is);

void save(std::ostream& os, const Svdd& svdd);
[[nodiscard]] Svdd load_svdd(std::istream& is);

}  // namespace echoimage::ml
