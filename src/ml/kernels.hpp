// Kernel functions shared by the SVM and SVDD classifiers.
#pragma once

#include <cstddef>
#include <vector>

namespace echoimage::ml {

enum class KernelType { kLinear, kRbf };

struct KernelParams {
  KernelType type = KernelType::kRbf;
  double gamma = 1.0;  ///< RBF: exp(-gamma * ||a - b||^2)
};

/// k(a, b). Throws std::invalid_argument on dimension mismatch.
[[nodiscard]] double kernel_value(const KernelParams& params,
                                  const std::vector<double>& a,
                                  const std::vector<double>& b);

/// Full Gram matrix (row-major n x n) for a dataset.
[[nodiscard]] std::vector<double> gram_matrix(
    const KernelParams& params, const std::vector<std::vector<double>>& x);

/// sklearn-style "scale" heuristic: gamma = 1 / (dim * mean feature
/// variance), with a floor for degenerate (constant) data.
[[nodiscard]] double rbf_gamma_scale(const std::vector<std::vector<double>>& x);

/// Median heuristic: gamma = 1 / median(||x_i - x_j||^2) over (a sample of)
/// training pairs. Robust when feature variances are heterogeneous — the
/// typical pair then sits at k ~ exp(-1) instead of collapsing the Gram
/// matrix to the identity.
[[nodiscard]] double rbf_gamma_median(const std::vector<std::vector<double>>& x,
                                      std::size_t max_pairs = 2000);

}  // namespace echoimage::ml
