// Minimal dense tensors for the forward-only CNN feature extractor.
#pragma once

#include <cstddef>
#include <vector>

namespace echoimage::ml {

/// 2-D row-major matrix of doubles (acoustic images, feature maps).
class Matrix2D {
 public:
  Matrix2D() = default;
  Matrix2D(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const double& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// 3-D tensor in HWC layout (height, width, channels).
class Tensor3 {
 public:
  Tensor3() = default;
  Tensor3(std::size_t h, std::size_t w, std::size_t c, double fill = 0.0)
      : h_(h), w_(w), c_(c), data_(h * w * c, fill) {}

  [[nodiscard]] std::size_t height() const { return h_; }
  [[nodiscard]] std::size_t width() const { return w_; }
  [[nodiscard]] std::size_t channels() const { return c_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& at(std::size_t y, std::size_t x, std::size_t ch) {
    return data_[(y * w_ + x) * c_ + ch];
  }
  [[nodiscard]] const double& at(std::size_t y, std::size_t x,
                                 std::size_t ch) const {
    return data_[(y * w_ + x) * c_ + ch];
  }
  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

 private:
  std::size_t h_ = 0, w_ = 0, c_ = 0;
  std::vector<double> data_;
};

/// Single-channel tensor from a matrix.
[[nodiscard]] Tensor3 to_tensor(const Matrix2D& m);

/// Bilinear resize of a matrix to (rows, cols).
[[nodiscard]] Matrix2D bilinear_resize(const Matrix2D& in, std::size_t rows,
                                       std::size_t cols);

/// Min-max normalize a matrix into [0, 1] (constant images map to 0).
[[nodiscard]] Matrix2D min_max_normalize(const Matrix2D& in);

}  // namespace echoimage::ml
