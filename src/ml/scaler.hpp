// Per-feature standardization (zero mean, unit variance) fit on training
// data and applied to both training and test features. Distance-dependent
// amplitude differences survive standardization as feature-space shifts,
// which is exactly what the data-augmentation experiment measures.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace echoimage::ml {

class StandardScaler {
 public:
  StandardScaler() = default;

  /// Fit means and standard deviations. Throws std::invalid_argument on an
  /// empty or ragged dataset.
  void fit(const std::vector<std::vector<double>>& x);

  [[nodiscard]] bool is_fitted() const { return !mean_.empty(); }
  [[nodiscard]] std::size_t dim() const { return mean_.size(); }
  [[nodiscard]] const std::vector<double>& mean() const { return mean_; }
  [[nodiscard]] const std::vector<double>& stddev() const { return std_; }

  /// Transform one sample; throws std::logic_error before fit() and
  /// std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::vector<double> transform(
      const std::vector<double>& x) const;

  /// Transform a batch.
  [[nodiscard]] std::vector<std::vector<double>> transform_batch(
      const std::vector<std::vector<double>>& x) const;

 private:
  friend void save(std::ostream&, const StandardScaler&);
  friend StandardScaler load_scaler(std::istream&);
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace echoimage::ml
