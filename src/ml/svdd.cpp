#include "ml/svdd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace echoimage::ml {

Svdd Svdd::train(const std::vector<std::vector<double>>& x,
                 const KernelParams& kernel, const SvddTrainParams& params) {
  if (x.empty()) throw std::invalid_argument("Svdd: empty training set");
  const std::size_t d = x.front().size();
  for (const auto& row : x)
    if (row.size() != d) throw std::invalid_argument("Svdd: ragged dataset");
  if (params.nu <= 0.0 || params.nu > 1.0)
    throw std::invalid_argument("Svdd: nu must be in (0, 1]");

  const std::size_t n = x.size();
  // C = 1/(nu*n); C >= 1/n is required for sum a = 1 to be feasible.
  const double c =
      std::max(1.0 / static_cast<double>(n),
               1.0 / (params.nu * static_cast<double>(n)));
  const std::vector<double> k = gram_matrix(kernel, x);

  // Start feasible: uniform weights.
  std::vector<double> alpha(n, 1.0 / static_cast<double>(n));
  // g_i = sum_j a_j K_ij, maintained incrementally.
  std::vector<double> g(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) g[i] += alpha[j] * k[i * n + j];

  // Objective J = sum_ij a_i a_j K_ij - sum_i a_i K_ii.
  // Gradient: dJ/da_i = 2 g_i - K_ii. A pairwise move a_i += t, a_j -= t
  // keeps the equality constraint; the optimal unconstrained step is
  //   t* = -(dJ/da_i - dJ/da_j) / (2 (K_ii + K_jj - 2 K_ij)),
  // clipped so both variables stay in [0, C].
  for (std::size_t sweep = 0; sweep < params.max_sweeps; ++sweep) {
    double max_change = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Partner: the index with the most opposing gradient.
      const double grad_i = 2.0 * g[i] - k[i * n + i];
      std::size_t j = n;
      double best_score = 0.0;
      for (std::size_t cand = 0; cand < n; ++cand) {
        if (cand == i) continue;
        const double grad_c = 2.0 * g[cand] - k[cand * n + cand];
        const double diff = grad_i - grad_c;
        // Moving mass from the higher-gradient variable to the lower one
        // decreases J; the move must be feasible.
        const bool feasible = (diff > 0.0 && alpha[i] > 0.0 && alpha[cand] < c) ||
                              (diff < 0.0 && alpha[i] < c && alpha[cand] > 0.0);
        if (feasible && std::abs(diff) > best_score) {
          best_score = std::abs(diff);
          j = cand;
        }
      }
      if (j == n || best_score < params.tolerance) continue;
      const double grad_j = 2.0 * g[j] - k[j * n + j];
      const double curv =
          2.0 * (k[i * n + i] + k[j * n + j] - 2.0 * k[i * n + j]);
      double t;
      if (curv > 1e-12) {
        t = -(grad_i - grad_j) / curv;
      } else {
        t = grad_i > grad_j ? -alpha[i] : c - alpha[i];
      }
      // Clip: a_i + t in [0, C], a_j - t in [0, C].
      t = std::clamp(t, -alpha[i], c - alpha[i]);
      t = std::clamp(t, alpha[j] - c, alpha[j]);
      if (std::abs(t) < 1e-14) continue;
      alpha[i] += t;
      alpha[j] -= t;
      for (std::size_t m = 0; m < n; ++m)
        g[m] += t * (k[i * n + m] - k[j * n + m]);
      max_change = std::max(max_change, std::abs(t));
    }
    if (max_change < params.tolerance) break;
  }

  Svdd model;
  model.kernel_ = kernel;
  model.margin_ = params.radius_margin;
  // a^T K a = sum_i a_i g_i.
  double ata = 0.0;
  for (std::size_t i = 0; i < n; ++i) ata += alpha[i] * g[i];
  model.center_norm_sq_ = ata;

  // Keep support vectors; R^2 from boundary vectors (0 < a < C), falling
  // back to the largest distance when none are strictly inside the box.
  std::vector<double> boundary_d2;
  double max_d2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d2 = k[i * n + i] - 2.0 * g[i] + ata;
    if (alpha[i] > 1e-10) {
      model.support_vectors_.push_back(x[i]);
      model.alphas_.push_back(alpha[i]);
      if (alpha[i] < c - 1e-10) boundary_d2.push_back(d2);
    }
    max_d2 = std::max(max_d2, d2);
  }
  if (!boundary_d2.empty()) {
    std::nth_element(boundary_d2.begin(),
                     boundary_d2.begin() + boundary_d2.size() / 2,
                     boundary_d2.end());
    model.radius_sq_ = boundary_d2[boundary_d2.size() / 2];
  } else {
    model.radius_sq_ = max_d2;
  }
  return model;
}

double Svdd::distance_sq(const std::vector<double>& x) const {
  if (support_vectors_.empty()) throw std::logic_error("Svdd: not trained");
  double cross = 0.0;
  for (std::size_t i = 0; i < support_vectors_.size(); ++i)
    cross += alphas_[i] * kernel_value(kernel_, support_vectors_[i], x);
  const double kxx = kernel_value(kernel_, x, x);
  return kxx - 2.0 * cross + center_norm_sq_;
}

double Svdd::decision(const std::vector<double>& x) const {
  return (1.0 + margin_) * radius_sq_ - distance_sq(x);
}

}  // namespace echoimage::ml
