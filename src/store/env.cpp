#include "store/env.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>
#include <utility>

namespace echoimage::store {

void atomic_write_file(StorageEnv& env, const std::string& path,
                       std::string_view data) {
  const std::string tmp = path + ".tmp";
  env.write_file(tmp, data, /*flush=*/true);
  env.rename_file(tmp, path);
}

// ---------------------------------------------------------------- MemoryEnv

MemoryEnv::MemoryEnv() { dirs_.insert(""); }

std::string MemoryEnv::parent_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

void MemoryEnv::require_dir(const std::string& path) const {
  if (dirs_.find(path) == dirs_.end())
    throw StorageError("MemoryEnv: no such directory '" + path + "'");
}

void MemoryEnv::write_file(const std::string& path, std::string_view data,
                           bool /*flush*/) {
  require_dir(parent_of(path));
  files_[path] = std::string(data);
}

void MemoryEnv::rename_file(const std::string& from, const std::string& to) {
  const auto it = files_.find(from);
  if (it == files_.end())
    throw StorageError("MemoryEnv: rename of missing file '" + from + "'");
  require_dir(parent_of(to));
  files_[to] = std::move(it->second);
  files_.erase(it);
}

void MemoryEnv::remove_file(const std::string& path) { files_.erase(path); }

void MemoryEnv::make_dirs(const std::string& path) {
  std::string cur;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      dirs_.insert(cur);
    }
    if (i < path.size()) cur.push_back(path[i]);
  }
  dirs_.insert(path);
}

void MemoryEnv::remove_dir(const std::string& path) {
  if (dirs_.find(path) == dirs_.end()) return;
  const std::string prefix = path + "/";
  for (const auto& [file, bytes] : files_) {
    (void)bytes;
    if (file.compare(0, prefix.size(), prefix) == 0)
      throw StorageError("MemoryEnv: remove_dir on non-empty '" + path + "'");
  }
  for (const auto& dir : dirs_)
    if (dir.compare(0, prefix.size(), prefix) == 0)
      throw StorageError("MemoryEnv: remove_dir on non-empty '" + path + "'");
  dirs_.erase(path);
}

std::optional<std::string> MemoryEnv::read_file(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

bool MemoryEnv::exists(const std::string& path) const {
  return files_.count(path) != 0 || dirs_.count(path) != 0;
}

std::vector<std::string> MemoryEnv::list_dir(const std::string& path) const {
  const std::string prefix = path.empty() ? std::string() : path + "/";
  std::vector<std::string> names;
  const auto maybe_add = [&](const std::string& entry) {
    if (entry.size() <= prefix.size() ||
        entry.compare(0, prefix.size(), prefix) != 0)
      return;
    const std::string rest = entry.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  };
  for (const auto& [file, bytes] : files_) {
    (void)bytes;
    maybe_add(file);
  }
  for (const auto& dir : dirs_) maybe_add(dir);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void MemoryEnv::corrupt_file(const std::string& path, std::string bytes) {
  const auto it = files_.find(path);
  if (it == files_.end())
    throw StorageError("MemoryEnv: corrupt_file on missing '" + path + "'");
  it->second = std::move(bytes);
}

// ------------------------------------------------------------ FileSystemEnv

namespace fs = std::filesystem;

void FileSystemEnv::write_file(const std::string& path, std::string_view data,
                               bool flush) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw StorageError("FileSystemEnv: cannot open '" + path + "'");
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (flush) os.flush();
  if (!os.good())
    throw StorageError("FileSystemEnv: short write to '" + path + "'");
}

void FileSystemEnv::rename_file(const std::string& from,
                                const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec)
    throw StorageError("FileSystemEnv: rename '" + from + "' -> '" + to +
                       "': " + ec.message());
}

void FileSystemEnv::remove_file(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // missing is fine; other errors are best-effort too
}

void FileSystemEnv::make_dirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec)
    throw StorageError("FileSystemEnv: mkdir '" + path + "': " + ec.message());
}

void FileSystemEnv::remove_dir(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // refuses non-empty dirs; best-effort like remove_file
}

std::optional<std::string> FileSystemEnv::read_file(
    const std::string& path) const {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  if (is.bad()) throw StorageError("FileSystemEnv: read of '" + path + "'");
  return bytes;
}

bool FileSystemEnv::exists(const std::string& path) const {
  std::error_code ec;
  return fs::exists(path, ec);
}

std::vector<std::string> FileSystemEnv::list_dir(const std::string& path) const {
  std::vector<std::string> names;
  std::error_code ec;
  fs::directory_iterator it(path, ec);
  if (ec) return names;
  for (const auto& entry : it) names.push_back(entry.path().filename().string());
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace echoimage::store
