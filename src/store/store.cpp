#include "store/store.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/trace.hpp"
#include "store/checksum.hpp"
#include "store/shard.hpp"

namespace echoimage::store {

namespace {

constexpr std::string_view kManifestMagic = "echoimage-store-manifest";

struct ManifestData {
  std::uint64_t generation = 0;
  std::size_t num_shards = 0;
  std::size_t slot_bytes = 0;
};

std::string encode_manifest(const ManifestData& m) {
  std::ostringstream os;
  os << kManifestMagic << " v1\n"
     << "generation " << m.generation << '\n'
     << "shards " << m.num_shards << '\n'
     << "slot " << m.slot_bytes << '\n';
  const std::string body = os.str();
  return body + "crc " + crc32_hex(crc32(body)) + '\n';
}

bool parse_line(std::istream& is, const char* key, std::uint64_t* out) {
  std::string word, value;
  if (!(is >> word >> value) || word != key) return false;
  if (value.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_manifest(const std::string& bytes, ManifestData* out) {
  // The crc line covers everything before it, byte-for-byte.
  const std::size_t crc_pos = bytes.rfind("crc ");
  if (crc_pos == std::string::npos || crc_pos == 0 ||
      bytes[crc_pos - 1] != '\n')
    return false;
  std::istringstream crc_is{bytes.substr(crc_pos)};
  std::string word, hex;
  if (!(crc_is >> word >> hex) || word != "crc") return false;
  std::uint32_t stored = 0;
  try {
    stored = parse_crc32_hex(hex);
  } catch (const std::runtime_error&) {
    return false;
  }
  if (crc32(std::string_view(bytes).substr(0, crc_pos)) != stored)
    return false;

  std::istringstream is{bytes.substr(0, crc_pos)};
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kManifestMagic || version != "v1")
    return false;
  std::uint64_t gen = 0, shards = 0, slot = 0;
  if (!parse_line(is, "generation", &gen)) return false;
  if (!parse_line(is, "shards", &shards)) return false;
  if (!parse_line(is, "slot", &slot)) return false;
  if (shards == 0 || shards > (1u << 16)) return false;
  out->generation = gen;
  out->num_shards = static_cast<std::size_t>(shards);
  out->slot_bytes = static_cast<std::size_t>(slot);
  return true;
}

/// Strict "gen-<digits>" parse; nullopt for anything else.
std::optional<std::uint64_t> parse_gen_dir(const std::string& name) {
  if (name.size() <= 4 || name.compare(0, 4, "gen-") != 0) return std::nullopt;
  std::uint64_t v = 0;
  for (std::size_t i = 4; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

void StoreConfig::validate() const {
  if (root.empty())
    throw std::invalid_argument("StoreConfig: root must be non-empty");
  if (num_shards == 0 || num_shards > (1u << 16))
    throw std::invalid_argument("StoreConfig: num_shards out of range");
  if (slot_bytes != 0 && slot_bytes < 64)
    throw std::invalid_argument(
        "StoreConfig: slot_bytes must be 0 (derive) or >= 64");
}

const char* to_string(LookupStatus status) {
  switch (status) {
    case LookupStatus::kFound: return "found";
    case LookupStatus::kAbsent: return "absent";
    case LookupStatus::kQuarantined: return "quarantined";
  }
  return "?";
}

const char* to_string(RecoverySource source) {
  switch (source) {
    case RecoverySource::kManifest: return "manifest";
    case RecoverySource::kScanFull: return "scan_full";
    case RecoverySource::kScanPartial: return "scan_partial";
  }
  return "?";
}

std::string StoreStats::describe() const {
  std::ostringstream os;
  os << "template store: generation " << generation << " via "
     << to_string(recovery) << ", " << records << " records in " << num_shards
     << " shards (slot " << slot_bytes << " B, " << stored_bytes
     << " B committed)";
  if (quarantined_shards == 0) {
    os << ", all shards healthy";
  } else {
    os << ", " << quarantined_shards << " shard(s) QUARANTINED";
    for (std::size_t k = 0; k < shards.size(); ++k)
      if (shards[k].quarantined)
        os << "\n  shard " << k << ": " << shards[k].error;
  }
  return os.str();
}

bool FsckReport::clean() const {
  return std::all_of(shards.begin(), shards.end(),
                     [](const ShardHealth& s) { return !s.quarantined; });
}

std::string FsckReport::describe() const {
  std::ostringstream os;
  os << "fsck generation " << generation << ": ";
  if (clean()) {
    std::size_t records = 0;
    for (const ShardHealth& s : shards) records += s.records;
    os << "clean (" << shards.size() << " shards, " << records << " records)";
    return os.str();
  }
  for (std::size_t k = 0; k < shards.size(); ++k)
    if (shards[k].quarantined)
      os << "\n  shard " << k << " CORRUPT: " << shards[k].error;
  return os.str();
}

TemplateStore::TemplateStore(StoreConfig config, StorageEnv& env)
    : config_(std::move(config)), env_(&env) {}

std::string TemplateStore::gen_dir(std::uint64_t gen) const {
  return config_.root + "/gen-" + std::to_string(gen);
}

std::string TemplateStore::shard_path(std::uint64_t gen,
                                      std::size_t shard) const {
  return gen_dir(gen) + "/shard-" + std::to_string(shard) + ".tpl";
}

std::string TemplateStore::manifest_path() const {
  return config_.root + "/MANIFEST";
}

void TemplateStore::resolve_handles() {
  if (obs_ == nullptr) {
    tracer_ = nullptr;
    opens_ = commits_ = fallback_recoveries_ = quarantined_shards_ =
        corrupt_records_ = lookups_found_ = lookups_absent_ =
            lookups_quarantined_ = nullptr;
    return;
  }
  tracer_ = &obs_->tracer();
  auto& m = obs_->metrics();
  opens_ = &m.counter("store.opens");
  commits_ = &m.counter("store.commits");
  fallback_recoveries_ = &m.counter("store.recovered_fallback");
  quarantined_shards_ = &m.counter("store.shards_quarantined");
  corrupt_records_ = &m.counter("store.records_dropped_corrupt");
  lookups_found_ = &m.counter("store.lookup.found");
  lookups_absent_ = &m.counter("store.lookup.absent");
  lookups_quarantined_ = &m.counter("store.lookup.quarantined");
}

void TemplateStore::attach_observability(
    std::shared_ptr<const obs::Observability> obs) {
  obs_ = std::move(obs);
  resolve_handles();
}

void TemplateStore::note_quarantine(const Shard& shard) const {
  (void)shard;
  if (quarantined_shards_ != nullptr) quarantined_shards_->add();
}

TemplateStore TemplateStore::init(StoreConfig config, StorageEnv& env) {
  config.validate();
  TemplateStore store(std::move(config), env);
  if (env.exists(store.manifest_path()))
    throw StorageError("TemplateStore: '" + store.config_.root +
                       "' is already initialized");
  env.make_dirs(store.config_.root);
  {
    // Static factories are not constructors to the thread-safety analysis
    // (and the local is about to escape by value), so the capability is
    // taken explicitly around the mutation.
    const runtime::sync::LockGuard lock(*store.mutex_);
    store.write_generation(
        0, std::vector<std::vector<TemplateRecord>>(store.config_.num_shards));
  }
  return store;
}

TemplateStore TemplateStore::open(
    StoreConfig config, StorageEnv& env,
    std::shared_ptr<const obs::Observability> obs) {
  config.validate();
  TemplateStore store(std::move(config), env);
  store.obs_ = std::move(obs);
  store.resolve_handles();
  EI_SPAN(store.tracer_, "store.open");

  ManifestData manifest;
  const std::optional<std::string> bytes =
      env.read_file(store.manifest_path());
  {
    const runtime::sync::LockGuard lock(*store.mutex_);
    if (bytes.has_value() && parse_manifest(*bytes, &manifest)) {
      store.generation_ = manifest.generation;
      store.slot_bytes_ = manifest.slot_bytes;
      store.recovery_ = RecoverySource::kManifest;
      store.load_generation(manifest.generation, manifest.num_shards);
    } else {
      // Rung 1/2: the pointer is gone; the generations must speak for
      // themselves.
      if (!store.try_scan_recovery())
        throw StorageError("TemplateStore: no recoverable generation under '" +
                           store.config_.root + "'");
      if (store.fallback_recoveries_ != nullptr)
        store.fallback_recoveries_->add();
    }
  }
  if (store.opens_ != nullptr) store.opens_->add();
  return store;
}

void TemplateStore::load_generation(std::uint64_t gen,
                                    std::size_t shard_count) {
  shards_.assign(shard_count, Shard{});
  for (std::size_t k = 0; k < shard_count; ++k) {
    Shard& shard = shards_[k];
    const std::optional<std::string> bytes =
        env_->read_file(shard_path(gen, k));
    if (!bytes.has_value()) {
      shard.quarantined = true;
      shard.error = "missing file";
      note_quarantine(shard);
      continue;
    }
    ShardReadResult read = read_shard(*bytes);
    if (read.ok && (read.header.generation != gen ||
                    read.header.shard_id != k ||
                    read.header.shard_count != shard_count)) {
      read.ok = false;
      read.error = "header does not match its place in the store";
    }
    if (!read.ok) {
      shard.quarantined = true;
      shard.error = read.error;
      note_quarantine(shard);
      continue;
    }
    slot_bytes_ = read.header.slot_bytes;
    shard.records = std::move(read.records);
    for (std::size_t i = 0; i < shard.records.size(); ++i)
      shard.index[shard.records[i].user_id] = i;
  }
}

bool TemplateStore::try_scan_recovery() {
  std::vector<std::uint64_t> gens;
  for (const std::string& name : env_->list_dir(config_.root))
    if (const auto gen = parse_gen_dir(name)) gens.push_back(*gen);
  std::sort(gens.rbegin(), gens.rend());

  // One read pass per candidate: how many of its shards verify, and what
  // geometry do the valid ones agree on?
  struct Candidate {
    std::uint64_t gen = 0;
    std::size_t shard_count = 0;
    std::size_t valid = 0;
    std::size_t records = 0;
  };
  std::optional<Candidate> best_partial;
  for (const std::uint64_t gen : gens) {
    std::size_t shard_count = 0;
    std::size_t valid = 0;
    std::size_t records = 0;
    for (const std::string& name : env_->list_dir(gen_dir(gen))) {
      const std::string path = gen_dir(gen) + "/" + name;
      const std::optional<std::string> bytes = env_->read_file(path);
      if (!bytes.has_value()) continue;
      const ShardReadResult read = read_shard(*bytes);
      if (!read.ok || read.header.generation != gen) continue;
      if (shard_count == 0) shard_count = read.header.shard_count;
      if (read.header.shard_count == shard_count &&
          read.header.shard_id < shard_count) {
        ++valid;
        records += read.header.record_count;
      }
    }
    if (shard_count == 0) continue;  // nothing valid in this generation
    if (valid == shard_count) {
      // Newest fully intact generation wins outright — unless it is empty
      // and a newer partial candidate still holds templates. Recovering to
      // an empty gallery would silently un-enroll every user (healthy
      // sessions would start *rejecting*); serving the newer survivors and
      // abstaining on the quarantined shard is strictly safer.
      if (records == 0 && best_partial.has_value() &&
          best_partial->records > 0)
        break;
      generation_ = gen;
      recovery_ = RecoverySource::kScanFull;
      load_generation(gen, shard_count);
      return true;
    }
    if (!best_partial.has_value() && valid > 0)
      best_partial = Candidate{gen, shard_count, valid, records};
  }
  if (!best_partial.has_value()) return false;
  generation_ = best_partial->gen;
  recovery_ = RecoverySource::kScanPartial;
  load_generation(best_partial->gen, best_partial->shard_count);
  return true;
}

std::size_t TemplateStore::size() const {
  const runtime::sync::SharedLockGuard lock(*mutex_);
  return size_locked();
}

std::size_t TemplateStore::size_locked() const {
  std::size_t n = 0;
  for (const Shard& s : shards_)
    if (!s.quarantined) n += s.records.size();
  return n;
}

std::size_t TemplateStore::shard_of(int user_id) const {
  const runtime::sync::SharedLockGuard lock(*mutex_);
  return shard_of_locked(user_id);
}

std::size_t TemplateStore::shard_of_locked(int user_id) const {
  return static_cast<std::size_t>(
      detail::mix64(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(user_id))) %
      shards_.size());
}

void TemplateStore::write_generation(
    std::uint64_t gen, std::vector<std::vector<TemplateRecord>> by_shard) {
  const std::size_t shard_count = by_shard.size();
  std::vector<std::vector<std::string>> payloads(shard_count);
  std::size_t max_payload = 0;
  for (std::size_t k = 0; k < shard_count; ++k) {
    payloads[k].reserve(by_shard[k].size());
    for (const TemplateRecord& record : by_shard[k]) {
      payloads[k].push_back(encode_record(record));
      max_payload = std::max(max_payload, payloads[k].back().size());
    }
  }
  const std::size_t slot = config_.slot_bytes != 0
                               ? config_.slot_bytes
                               : slot_bytes_for(max_payload);

  const std::string dir = gen_dir(gen);
  env_->make_dirs(dir);
  // A crashed earlier commit may have left stale shard/tmp files in this
  // very directory (recovery fell back past it); clear them so the
  // directory holds exactly this generation's files afterwards.
  for (const std::string& name : env_->list_dir(dir))
    env_->remove_file(dir + "/" + name);

  for (std::size_t k = 0; k < shard_count; ++k) {
    ShardHeader header;
    header.shard_id = k;
    header.shard_count = shard_count;
    header.generation = gen;
    header.slot_bytes = slot;
    atomic_write_file(*env_, shard_path(gen, k),
                      encode_shard(header, payloads[k]));
  }

  ManifestData manifest;
  manifest.generation = gen;
  manifest.num_shards = shard_count;
  manifest.slot_bytes = slot;
  // The linearization point: everything before this rename is invisible
  // to recovery, everything after it is the committed state.
  atomic_write_file(*env_, manifest_path(), encode_manifest(manifest));

  generation_ = gen;
  slot_bytes_ = slot;
  recovery_ = RecoverySource::kManifest;
  shards_.assign(shard_count, Shard{});
  for (std::size_t k = 0; k < shard_count; ++k) {
    shards_[k].records = std::move(by_shard[k]);
    for (std::size_t i = 0; i < shards_[k].records.size(); ++i)
      shards_[k].index[shards_[k].records[i].user_id] = i;
  }
}

void TemplateStore::collect_garbage(std::uint64_t keep_a,
                                    std::uint64_t keep_b) {
  for (const std::string& name : env_->list_dir(config_.root)) {
    const auto gen = parse_gen_dir(name);
    if (!gen.has_value() || *gen == keep_a || *gen == keep_b) continue;
    const std::string dir = config_.root + "/" + name;
    for (const std::string& file : env_->list_dir(dir))
      env_->remove_file(dir + "/" + file);
    env_->remove_dir(dir);
  }
}

void TemplateStore::commit(const std::vector<TemplateRecord>& upserts) {
  EI_SPAN(tracer_, "store.commit");
  // Exclusive for the whole merge + publish: lookups must never observe
  // the in-memory state mid-swap, and the I/O staying under the lock is
  // the semantics (a commit blocks reads until the new generation is the
  // committed one).
  const runtime::sync::LockGuard lock(*mutex_);
  for (const Shard& shard : shards_)
    if (shard.quarantined)
      throw StorageError(
          "TemplateStore: refusing to commit over a quarantined shard — a "
          "new generation would silently drop its unreadable records; "
          "resolve the corruption (or re-enroll) first");

  const std::size_t shard_count = shards_.size();
  std::vector<std::vector<TemplateRecord>> by_shard(shard_count);
  std::unordered_map<int, const TemplateRecord*> incoming;
  incoming.reserve(upserts.size());
  for (const TemplateRecord& record : upserts)
    incoming[record.user_id] = &record;
  for (const Shard& shard : shards_)
    for (const TemplateRecord& record : shard.records)
      if (incoming.find(record.user_id) == incoming.end())
        by_shard[shard_of_locked(record.user_id)].push_back(record);
  for (const TemplateRecord& record : upserts)
    by_shard[shard_of_locked(record.user_id)].push_back(
        *incoming[record.user_id]);
  // Deterministic slot order within each shard regardless of merge path.
  for (auto& bucket : by_shard)
    std::sort(bucket.begin(), bucket.end(),
              [](const TemplateRecord& a, const TemplateRecord& b) {
                return a.user_id < b.user_id;
              });

  const std::uint64_t old_gen = generation_;
  write_generation(old_gen + 1, std::move(by_shard));
  // Double-buffering: the generation just superseded stays on disk as the
  // fallback; everything older goes.
  collect_garbage(old_gen, generation_);
  if (commits_ != nullptr) commits_->add();
}

LookupResult TemplateStore::lookup(int user_id) const {
  const runtime::sync::SharedLockGuard lock(*mutex_);
  const Shard& shard = shards_[shard_of_locked(user_id)];
  if (shard.quarantined) {
    if (lookups_quarantined_ != nullptr) lookups_quarantined_->add();
    return {LookupStatus::kQuarantined, nullptr};
  }
  const auto it = shard.index.find(user_id);
  if (it == shard.index.end()) {
    if (lookups_absent_ != nullptr) lookups_absent_->add();
    return {LookupStatus::kAbsent, nullptr};
  }
  if (lookups_found_ != nullptr) lookups_found_->add();
  return {LookupStatus::kFound, &shard.records[it->second]};
}

CentroidSnapshot TemplateStore::centroid_snapshot() const {
  EI_SPAN(tracer_, "store.centroid_snapshot");
  const runtime::sync::SharedLockGuard lock(*mutex_);
  CentroidSnapshot snapshot;
  snapshot.generation = generation_;

  // Gather (user id -> centroid pointer) across the healthy shards, then
  // pack in ascending-id order: the layout depends only on what was
  // committed, never on shard hashing or iteration order.
  std::vector<std::pair<int, const std::vector<double>*>> rows;
  for (const Shard& shard : shards_) {
    if (shard.quarantined) {
      ++snapshot.quarantined_shards;
      continue;
    }
    for (const TemplateRecord& record : shard.records)
      rows.emplace_back(record.user_id, &record.centroid);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  if (rows.empty()) return snapshot;
  snapshot.dims = rows.front().second->size();
  snapshot.user_ids.reserve(rows.size());
  snapshot.matrix.reserve(rows.size() * snapshot.dims);
  for (const auto& [user_id, centroid] : rows) {
    if (centroid->size() != snapshot.dims)
      throw StorageError(
          "centroid_snapshot: user " + std::to_string(user_id) + " has " +
          std::to_string(centroid->size()) + "-dim centroid in a " +
          std::to_string(snapshot.dims) +
          "-dim store — one prefilter cannot score mixed feature spaces");
    snapshot.user_ids.push_back(user_id);
    snapshot.matrix.insert(snapshot.matrix.end(), centroid->begin(),
                           centroid->end());
  }
  return snapshot;
}

FsckReport TemplateStore::fsck() {
  EI_SPAN(tracer_, "store.fsck");
  // Exclusive: fsck rewrites quarantine flags and record vectors in place.
  const runtime::sync::LockGuard lock(*mutex_);
  FsckReport report;
  report.generation = generation_;
  report.shards.resize(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = shards_[k];
    ShardHealth& health = report.shards[k];
    const std::optional<std::string> bytes =
        env_->read_file(shard_path(generation_, k));
    ShardReadResult read;
    if (!bytes.has_value()) {
      read.ok = false;
      read.error = "missing file";
    } else {
      read = read_shard(*bytes);
      if (read.ok && (read.header.generation != generation_ ||
                      read.header.shard_id != k ||
                      read.header.shard_count != shards_.size())) {
        read.ok = false;
        read.error = "header does not match its place in the store";
      }
    }
    if (read.ok) {
      // The medium just proved these bytes; a previously quarantined
      // shard earns its way back in (fsck is how an operator re-verifies
      // after repairing storage).
      shard.quarantined = false;
      shard.error.clear();
      shard.records = std::move(read.records);
      shard.index.clear();
      for (std::size_t i = 0; i < shard.records.size(); ++i)
        shard.index[shard.records[i].user_id] = i;
      health.records = shard.records.size();
      continue;
    }
    if (!shard.quarantined) {
      // Newly discovered at-rest corruption: drop what memory still held —
      // after fsck the store serves only what the disk can prove.
      if (corrupt_records_ != nullptr)
        corrupt_records_->add(shard.records.size());
      shard.quarantined = true;
      note_quarantine(shard);
      shard.records.clear();
      shard.index.clear();
    }
    shard.error = read.error;
    health.quarantined = true;
    health.error = read.error;
  }
  return report;
}

StoreStats TemplateStore::stats() const {
  const runtime::sync::SharedLockGuard lock(*mutex_);
  StoreStats stats;
  stats.generation = generation_;
  stats.num_shards = shards_.size();
  stats.slot_bytes = slot_bytes_;
  stats.records = size_locked();
  stats.recovery = recovery_;
  stats.shards.resize(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    stats.shards[k].quarantined = shards_[k].quarantined;
    stats.shards[k].error = shards_[k].error;
    stats.shards[k].records = shards_[k].records.size();
    if (shards_[k].quarantined) ++stats.quarantined_shards;
    stats.stored_bytes +=
        kShardHeaderBytes + shards_[k].records.size() * slot_bytes_;
  }
  return stats;
}

}  // namespace echoimage::store
