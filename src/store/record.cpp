#include "store/record.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "ml/serialize.hpp"

namespace echoimage::store {

std::string encode_record(const TemplateRecord& record) {
  std::ostringstream os;
  ml::write_tag(os, "echoimage_template_v1");
  os << record.user_id << '\n';
  ml::write_vector(os, record.centroid);
  record.verifier.save(os);
  ml::write_tag(os, "end_template");
  return os.str();
}

TemplateRecord decode_record(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  ml::expect_tag(is, "echoimage_template_v1");
  TemplateRecord record;
  if (!(is >> record.user_id))
    throw std::runtime_error("template: missing user id");
  record.centroid = ml::read_vector(is);
  record.verifier = core::Authenticator::load(is);
  ml::expect_tag(is, "end_template");
  return record;
}

TemplateRecord make_template_record(
    int user_id, std::vector<std::vector<double>> features,
    std::vector<std::vector<double>> calibration,
    const core::AuthenticatorConfig& config) {
  if (features.empty())
    throw std::invalid_argument("make_template_record: no features");
  TemplateRecord record;
  record.user_id = user_id;
  record.centroid.assign(features.front().size(), 0.0);
  for (const auto& f : features) {
    if (f.size() != record.centroid.size())
      throw std::invalid_argument(
          "make_template_record: ragged feature dimensions");
    for (std::size_t d = 0; d < f.size(); ++d) record.centroid[d] += f[d];
  }
  for (double& c : record.centroid)
    c /= static_cast<double>(features.size());

  core::EnrolledUser user;
  user.user_id = user_id;
  user.features = std::move(features);
  user.calibration_features = std::move(calibration);
  record.verifier = core::Authenticator::train({std::move(user)}, config);
  return record;
}

}  // namespace echoimage::store
