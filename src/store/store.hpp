// Durable, sharded enrollment template store with a crash-consistency
// model proven by fault injection (store/sweep.hpp).
//
// On-disk layout under a root directory:
//
//   root/MANIFEST              <- points at the committed generation
//   root/gen-<N>/shard-<k>.tpl <- shard files of generation N (shard.hpp)
//
// Commit protocol (double-buffered generations): a commit writes every
// shard of generation N+1 into a fresh gen-(N+1)/ directory via
// atomic_write_file (temp -> flush -> rename), then publishes by
// atomically replacing MANIFEST. The manifest rename is the single
// linearization point — a crash anywhere before it leaves MANIFEST naming
// the old, fully intact generation; a crash anywhere after it leaves the
// new generation complete on disk. Only after publishing is generation
// N-1 garbage-collected, so the two newest generations are never both
// mid-write.
//
// Recovery ladder on open:
//   rung 0 (kManifest):    MANIFEST verifies -> load its generation,
//                          quarantining any shard that fails the
//                          integrity ladder (at-rest media corruption).
//   rung 1 (kScanFull):    MANIFEST missing/corrupt -> scan gen-* dirs
//                          newest-first for one whose every shard
//                          verifies, and serve it.
//   rung 2 (kScanPartial): no fully intact generation -> serve the newest
//                          generation with at least one valid shard,
//                          quarantining the rest.
// Lookups into a quarantined shard answer kQuarantined — the serve layer
// maps that to an AbstainReason::kStorage abstain, never a reject and
// never a stale accept (see ISSUE 7: losing enrollment state is an
// authentication-integrity failure, so the store degrades to "I cannot
// know", not to a guess).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/observability.hpp"
#include "runtime/sync.hpp"
#include "store/env.hpp"
#include "store/record.hpp"

namespace echoimage::store {

struct StoreConfig {
  std::string root = "template_store";
  /// Shard count for init/commit. Opening an existing store takes the
  /// shard count from disk; this value then only shapes future commits
  /// made through a store initialized here.
  std::size_t num_shards = 8;
  /// Fixed record slot size; 0 derives the smallest sufficient slot from
  /// the largest record at each commit (see shard.hpp).
  std::size_t slot_bytes = 0;

  void validate() const;
};

enum class LookupStatus {
  kFound,        ///< record decoded from the committed generation
  kAbsent,       ///< shard healthy, user not enrolled
  kQuarantined,  ///< shard corrupt: the only honest answer is abstain
};
[[nodiscard]] const char* to_string(LookupStatus status);

struct LookupResult {
  LookupStatus status = LookupStatus::kAbsent;
  /// Valid only when kFound; owned by the store, invalidated by commit()
  /// and fsck(). The pointer escapes the store's internal shared lock, so
  /// that invalidation contract is the caller's to uphold (dereference
  /// promptly; do not hold across a writer) — the thread-safety analysis
  /// checks accesses inside the store, not pointers it hands out.
  const TemplateRecord* record = nullptr;
};

/// Packed view of every healthy record's centroid, for the 1:N prefilter
/// (src/ident): one contiguous row-major matrix instead of 100k scattered
/// TemplateRecord loads. Rows are ordered by ascending user id, so the
/// layout is a pure function of the committed records — the identification
/// shortlist built on it is bit-stable across runs and worker counts.
struct CentroidSnapshot {
  std::uint64_t generation = 0;
  std::size_t dims = 0;
  /// Ascending; row r of `matrix` is user_ids[r]'s centroid.
  std::vector<int> user_ids;
  /// Row-major user_ids.size() x dims.
  std::vector<double> matrix;
  /// Quarantined shards at snapshot time. Nonzero means the snapshot is
  /// honest but incomplete: a user absent from it may still be enrolled,
  /// just unreadable — identification must abstain rather than answer
  /// "unknown" for probes nothing in the snapshot claims.
  std::size_t quarantined_shards = 0;
};

enum class RecoverySource { kManifest, kScanFull, kScanPartial };
[[nodiscard]] const char* to_string(RecoverySource source);

struct ShardHealth {
  bool quarantined = false;
  std::string error;  ///< integrity-ladder rung that failed
  std::size_t records = 0;
};

struct StoreStats {
  std::uint64_t generation = 0;
  std::size_t num_shards = 0;
  std::size_t slot_bytes = 0;
  std::size_t records = 0;
  std::size_t quarantined_shards = 0;
  RecoverySource recovery = RecoverySource::kManifest;
  std::vector<ShardHealth> shards;
  /// Committed bytes of the live generation (header + slots, from
  /// geometry — no filesystem stat needed).
  std::uint64_t stored_bytes = 0;

  [[nodiscard]] std::string describe() const;
};

/// Result of re-verifying the live generation against the medium.
struct FsckReport {
  std::uint64_t generation = 0;
  std::vector<ShardHealth> shards;
  [[nodiscard]] bool clean() const;
  [[nodiscard]] std::string describe() const;
};

class TemplateStore {
 public:
  /// Create an empty store (generation 0) at config.root. Throws
  /// StorageError if a MANIFEST already exists there.
  static TemplateStore init(StoreConfig config, StorageEnv& env);

  /// Open an existing store through the recovery ladder above. Throws
  /// StorageError only when nothing recoverable exists at all (no
  /// manifest and no generation directory with a single valid shard).
  static TemplateStore open(
      StoreConfig config, StorageEnv& env,
      std::shared_ptr<const obs::Observability> obs = nullptr);

  /// Rebinds the metric handles. Not lock-guarded: call once before the
  /// store serves concurrent traffic (the serve layer attaches at wiring
  /// time), like every other attach_observability in the codebase.
  void attach_observability(std::shared_ptr<const obs::Observability> obs);

  [[nodiscard]] std::uint64_t generation() const {
    const runtime::sync::SharedLockGuard lock(*mutex_);
    return generation_;
  }
  [[nodiscard]] std::size_t num_shards() const {
    const runtime::sync::SharedLockGuard lock(*mutex_);
    return shards_.size();
  }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] RecoverySource recovery_source() const {
    const runtime::sync::SharedLockGuard lock(*mutex_);
    return recovery_;
  }
  [[nodiscard]] const StoreConfig& config() const { return config_; }

  /// Merge `upserts` over the live records and publish them as the next
  /// generation (the commit protocol above). Refuses (StorageError) while
  /// any shard is quarantined: committing would silently drop every
  /// record whose bytes are unreadable — corruption must be resolved (or
  /// the users re-enrolled) explicitly, not laundered away by the next
  /// write. Throws StorageCrash through from a fault-injecting env.
  void commit(const std::vector<TemplateRecord>& upserts);

  /// Which shard a user's record lives in (splitmix64 of the id).
  [[nodiscard]] std::size_t shard_of(int user_id) const;

  [[nodiscard]] LookupResult lookup(int user_id) const;

  /// Copy every healthy shard's centroids into one packed matrix (rows by
  /// ascending user id). Throws StorageError when records disagree on the
  /// centroid dimension — a store mixing feature spaces cannot be scored
  /// by one prefilter. Invalidated semantics: the snapshot owns its data,
  /// so unlike lookup() results it survives commit(); staleness is
  /// detected by comparing `generation` against generation().
  [[nodiscard]] CentroidSnapshot centroid_snapshot() const;

  /// Re-read the live generation from the medium and re-run the full
  /// integrity ladder. Newly discovered at-rest corruption quarantines
  /// the shard (and drops its in-memory records) — after fsck the store
  /// serves only what the disk can still prove.
  FsckReport fsck();

  [[nodiscard]] StoreStats stats() const;

 private:
  struct Shard {
    bool quarantined = false;
    std::string error;
    std::vector<TemplateRecord> records;
    std::unordered_map<int, std::size_t> index;  ///< user_id -> records idx
  };

  TemplateStore(StoreConfig config, StorageEnv& env);
  [[nodiscard]] std::string gen_dir(std::uint64_t gen) const;
  [[nodiscard]] std::string shard_path(std::uint64_t gen,
                                       std::size_t shard) const;
  [[nodiscard]] std::string manifest_path() const;
  void load_generation(std::uint64_t gen, std::size_t shard_count)
      EI_REQUIRES(*mutex_);
  void write_generation(std::uint64_t gen,
                        std::vector<std::vector<TemplateRecord>> by_shard)
      EI_REQUIRES(*mutex_);
  void collect_garbage(std::uint64_t keep_a, std::uint64_t keep_b);
  [[nodiscard]] bool try_scan_recovery() EI_REQUIRES(*mutex_);
  void resolve_handles();
  void note_quarantine(const Shard& shard) const;
  // *_locked variants exist because std::shared_mutex re-entry is UB:
  // public methods that already hold the capability must not call the
  // locking public API (stats -> size, commit/lookup -> shard_of).
  [[nodiscard]] std::size_t size_locked() const EI_REQUIRES_SHARED(*mutex_);
  [[nodiscard]] std::size_t shard_of_locked(int user_id) const
      EI_REQUIRES_SHARED(*mutex_);

  StoreConfig config_;
  StorageEnv* env_;
  /// Capability over the mutable store state below: exclusive for
  /// commit/fsck/recovery, shared for lookups and snapshots. Held through
  /// a unique_ptr so TemplateStore stays movable (the factories return by
  /// value and callers move-assign into std::optional); the guarded
  /// fields name the dereferenced capability, so every lock site spells
  /// `*mutex_` identically for the analysis to match expressions.
  std::unique_ptr<runtime::sync::SharedMutex> mutex_ =
      std::make_unique<runtime::sync::SharedMutex>();
  std::uint64_t generation_ EI_GUARDED_BY(*mutex_) = 0;
  /// Live generation's slot size.
  std::size_t slot_bytes_ EI_GUARDED_BY(*mutex_) = 0;
  RecoverySource recovery_ EI_GUARDED_BY(*mutex_) = RecoverySource::kManifest;
  std::vector<Shard> shards_ EI_GUARDED_BY(*mutex_);

  std::shared_ptr<const obs::Observability> obs_;
  const obs::Tracer* tracer_ = nullptr;
  const obs::Counter* opens_ = nullptr;
  const obs::Counter* commits_ = nullptr;
  const obs::Counter* fallback_recoveries_ = nullptr;
  const obs::Counter* quarantined_shards_ = nullptr;
  const obs::Counter* corrupt_records_ = nullptr;
  const obs::Counter* lookups_found_ = nullptr;
  const obs::Counter* lookups_absent_ = nullptr;
  const obs::Counter* lookups_quarantined_ = nullptr;
};

}  // namespace echoimage::store
