// Seeded storage-fault injection, in the style of sim/faults.hpp for the
// capture chain: a deterministic spec says exactly which mutation dies and
// how, so every crash point is enumerable and every run replays exactly.
//
// The injector wraps any StorageEnv and counts mutations (write_file,
// rename_file, remove_file, make_dirs, remove_dir — the full injectable
// surface of env.hpp). At mutation index `op_index` it applies its fault
// kind and then *crashes the process*: the injected op throws StorageCrash
// after its partial effect lands in the inner env, and every subsequent
// operation throws immediately. The inner env afterwards holds precisely
// the disk a real crash at that point would have left — recovery code is
// then pointed at it with a plain env.
//
// Fault kinds that do not apply to the op at the crash point (e.g. a torn
// write landing on a rename) degrade to crash-before-op: the op simply
// never happens. That keeps the sweep grid rectangular — every
// (kind x op_index) cell is a valid crash scenario.
#pragma once

#include <cstddef>
#include <cstdint>

#include "store/env.hpp"

namespace echoimage::store {

enum class StorageFaultKind {
  kNone,         ///< count ops only (enumerates a sweep's fault points)
  kTornWrite,    ///< a seeded strict prefix of the data reaches the medium
  kBitFlip,      ///< the full write lands, with 1-3 seeded bits flipped
  kTruncate,     ///< the file is created but truncated to zero bytes
  kFailedFlush,  ///< the durability barrier silently does nothing: no bytes
  kStaleRename,  ///< the rename never happens; the old name survives
};

[[nodiscard]] const char* to_string(StorageFaultKind kind);

struct StorageFaultSpec {
  StorageFaultKind kind = StorageFaultKind::kNone;
  /// 0-based mutation index at which the fault fires.
  std::size_t op_index = 0;
  /// Seeds the fault's free parameters (tear offset, flipped bit
  /// positions) through the store's splitmix64 mixer.
  std::uint64_t seed = 0x57A6EFA17ULL;
};

class StorageFaultInjector final : public StorageEnv {
 public:
  explicit StorageFaultInjector(StorageEnv& inner, StorageFaultSpec spec = {});

  /// Mutations observed so far (including the crashing one).
  [[nodiscard]] std::size_t op_count() const { return ops_; }
  /// True once the spec's fault has fired.
  [[nodiscard]] bool injected() const { return injected_; }
  /// True once the simulated process is dead (every further op throws).
  [[nodiscard]] bool crashed() const { return crashed_; }

  void write_file(const std::string& path, std::string_view data,
                  bool flush) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;
  void make_dirs(const std::string& path) override;
  void remove_dir(const std::string& path) override;

  [[nodiscard]] std::optional<std::string> read_file(
      const std::string& path) const override;
  [[nodiscard]] bool exists(const std::string& path) const override;
  [[nodiscard]] std::vector<std::string> list_dir(
      const std::string& path) const override;

 private:
  /// Returns true when this mutation is the injection point; afterwards
  /// the injector is crashed regardless of what the caller does next.
  [[nodiscard]] bool arm_mutation();
  [[noreturn]] void die();
  void require_alive() const;

  StorageEnv* inner_;
  StorageFaultSpec spec_;
  std::size_t ops_ = 0;
  bool injected_ = false;
  bool crashed_ = false;
};

}  // namespace echoimage::store
