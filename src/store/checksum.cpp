#include "store/checksum.hpp"

#include <array>
#include <stdexcept>

namespace echoimage::store {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

void Crc32::update(std::string_view bytes) noexcept {
  std::uint32_t c = state_;
  for (const char ch : bytes)
    c = kCrcTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  state_ = c;
}

std::uint32_t crc32(std::string_view bytes) noexcept {
  Crc32 crc;
  crc.update(bytes);
  return crc.value();
}

std::string crc32_hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

std::uint32_t parse_crc32_hex(std::string_view hex) {
  if (hex.size() != 8)
    throw std::runtime_error("checksum: bad crc width");
  std::uint32_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    else
      throw std::runtime_error("checksum: bad crc digit");
  }
  return v;
}

}  // namespace echoimage::store
