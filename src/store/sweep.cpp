#include "store/sweep.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "store/checksum.hpp"

namespace echoimage::store {

namespace {

using detail::mix64;

double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

/// Deterministic synthetic enrollment — no sim dependency: user `u`'s
/// feature manifold is a seeded point with small seeded per-sample jitter.
std::vector<std::vector<double>> synth_features(const CrashSweepConfig& cfg,
                                                std::size_t u,
                                                std::uint64_t stream) {
  std::vector<std::vector<double>> features(
      cfg.samples_per_user, std::vector<double>(cfg.feature_dims));
  for (std::size_t s = 0; s < cfg.samples_per_user; ++s) {
    for (std::size_t d = 0; d < cfg.feature_dims; ++d) {
      const std::uint64_t base = mix64(cfg.seed ^ (u * 1000003ULL + d));
      const std::uint64_t jit =
          mix64(cfg.seed ^ stream ^ (((u * 131ULL + s) << 20) | d));
      features[s][d] =
          (2.0 * unit(base) - 1.0) + 0.05 * (2.0 * unit(jit) - 1.0);
    }
  }
  return features;
}

struct SweepFixture {
  MemoryEnv baseline;          ///< disk after the first committed generation
  MemoryEnv committed;         ///< disk after the second (clean) commit
  StoreConfig store_config;
  std::vector<TemplateRecord> second_batch;
  /// user -> canonical payload per committed generation.
  std::map<int, std::string> expected_gen1;
  std::map<int, std::string> expected_gen2;
  std::size_t commit_ops = 0;
};

SweepFixture build_fixture(const CrashSweepConfig& cfg) {
  SweepFixture fx;
  fx.store_config.root = "sweep_store";
  fx.store_config.num_shards = cfg.num_shards;

  const std::size_t half = cfg.num_users / 2;
  std::vector<TemplateRecord> first_batch;
  for (std::size_t u = 0; u < half; ++u)
    first_batch.push_back(make_template_record(
        static_cast<int>(u) + 1, synth_features(cfg, u, 0x0EAF00DULL)));
  // The second commit re-enrolls a third of the first batch (fresh
  // captures) and enrolls everyone else — both upsert paths crash-tested.
  for (std::size_t u = 0; u < half; u += 3)
    fx.second_batch.push_back(make_template_record(
        static_cast<int>(u) + 1, synth_features(cfg, u, 0x12E7EA1ULL)));
  for (std::size_t u = half; u < cfg.num_users; ++u)
    fx.second_batch.push_back(make_template_record(
        static_cast<int>(u) + 1, synth_features(cfg, u, 0x0EAF00DULL)));

  {
    TemplateStore store = TemplateStore::init(fx.store_config, fx.baseline);
    store.commit(first_batch);
    for (const TemplateRecord& r : first_batch)
      fx.expected_gen1[r.user_id] = encode_record(r);
  }
  fx.expected_gen2 = fx.expected_gen1;
  for (const TemplateRecord& r : fx.second_batch)
    fx.expected_gen2[r.user_id] = encode_record(r);

  // Counting pass: enumerate the mutations of the second commit, and keep
  // its fully committed disk for phase B.
  fx.committed = fx.baseline;
  {
    StorageFaultInjector counter(fx.committed, {});
    TemplateStore store = TemplateStore::open(fx.store_config, counter);
    store.commit(fx.second_batch);
    fx.commit_ops = counter.op_count();
  }
  return fx;
}

/// Verify every enrolled (and one never-enrolled) user against the
/// expected payload map, filling the point's served/bad tallies.
void verify_serving(const TemplateStore& store,
                    const std::map<int, std::string>& expected,
                    std::size_t total_users, CrashPointResult* point,
                    std::size_t quarantined_shard = static_cast<std::size_t>(-1)) {
  for (std::size_t u = 0; u <= total_users; ++u) {
    const int user_id = static_cast<int>(u) + 1;
    const LookupResult found = store.lookup(user_id);
    const auto want = expected.find(user_id);
    const bool in_quarantined_shard =
        quarantined_shard != static_cast<std::size_t>(-1) &&
        store.shard_of(user_id) == quarantined_shard;
    switch (found.status) {
      case LookupStatus::kFound:
        ++point->served_found;
        if (in_quarantined_shard || want == expected.end() ||
            encode_record(*found.record) != want->second)
          ++point->bad_serves;  // stale, corrupt, or fabricated template
        break;
      case LookupStatus::kAbsent:
        ++point->served_absent;
        if (in_quarantined_shard || want != expected.end())
          ++point->bad_serves;  // an enrolled user must never look absent
        break;
      case LookupStatus::kQuarantined:
        ++point->served_quarantined;
        if (!in_quarantined_shard) ++point->bad_serves;
        break;
    }
  }
}

CrashPointResult run_commit_crash_point(const SweepFixture& fx,
                                        const CrashSweepConfig& cfg,
                                        std::size_t op_index,
                                        StorageFaultKind kind) {
  CrashPointResult point;
  point.op_index = op_index;
  point.kind = kind;

  MemoryEnv env = fx.baseline;
  StorageFaultSpec spec;
  spec.kind = kind;
  spec.op_index = op_index;
  spec.seed = mix64(cfg.seed ^ (op_index * 0x9E37ULL) ^
                    static_cast<std::uint64_t>(kind));
  StorageFaultInjector injector(env, spec);
  try {
    TemplateStore store = TemplateStore::open(fx.store_config, injector);
    store.commit(fx.second_batch);
  } catch (const StorageCrash&) {
    point.commit_crashed = true;
  }
  if (!point.commit_crashed) {
    point.error = "commit survived its own crash point";
    return point;
  }

  std::optional<TemplateStore> recovered;
  try {
    recovered = TemplateStore::open(fx.store_config, env);
  } catch (const StorageError& e) {
    point.error = std::string("recovery failed: ") + e.what();
    return point;
  }

  point.recovered_generation = recovered->generation();
  point.recovery = recovered->recovery_source();
  point.quarantined_shards = recovered->stats().quarantined_shards;
  // A commit crash must never cost integrity: MANIFEST always names an
  // intact generation, so recovery stays on the manifest rung with zero
  // quarantine.
  if (point.recovery != RecoverySource::kManifest)
    point.error = "commit crash forced recovery off the manifest rung";
  if (point.quarantined_shards != 0)
    point.error = "commit crash left a quarantined shard";
  const std::map<int, std::string>* expected = nullptr;
  if (recovered->generation() == 1)
    expected = &fx.expected_gen1;
  else if (recovered->generation() == 2)
    expected = &fx.expected_gen2;
  else
    point.error = "recovered to a generation that was never committed";
  if (expected != nullptr)
    verify_serving(*recovered, *expected, cfg.num_users, &point);
  return point;
}

CrashPointResult run_media_point(const SweepFixture& fx,
                                 const CrashSweepConfig& cfg,
                                 std::size_t index) {
  // Cells: per shard {bit flip, truncate, delete}, then one corrupt
  // MANIFEST cell at the end.
  CrashPointResult point;
  point.op_index = index;
  MemoryEnv env = fx.committed;
  const std::size_t manifest_cell = cfg.num_shards * 3;
  const std::string root = fx.store_config.root;

  if (index == manifest_cell) {
    point.kind = StorageFaultKind::kBitFlip;
    const std::string path = root + "/MANIFEST";
    std::string bytes = env.read_file(path).value();
    bytes[bytes.size() / 2] ^= 0x10;
    env.corrupt_file(path, bytes);
    TemplateStore recovered = TemplateStore::open(fx.store_config, env);
    point.recovered_generation = recovered.generation();
    point.recovery = recovered.recovery_source();
    point.quarantined_shards = recovered.stats().quarantined_shards;
    if (point.recovery != RecoverySource::kScanFull ||
        recovered.generation() != 2 || point.quarantined_shards != 0)
      point.error = "manifest corruption did not recover via full scan";
    else
      verify_serving(recovered, fx.expected_gen2, cfg.num_users, &point);
    return point;
  }

  const std::size_t shard = index / 3;
  const std::size_t mode = index % 3;
  const std::string path =
      root + "/gen-2/shard-" + std::to_string(shard) + ".tpl";
  std::string bytes = env.read_file(path).value();
  switch (mode) {
    case 0: {
      point.kind = StorageFaultKind::kBitFlip;
      const std::uint64_t h = mix64(cfg.seed ^ (0xB17ULL + index));
      bytes[h % bytes.size()] ^= static_cast<char>(1u << ((h >> 32) % 8));
      env.corrupt_file(path, bytes);
      break;
    }
    case 1:
      point.kind = StorageFaultKind::kTruncate;
      env.corrupt_file(path, bytes.substr(0, bytes.size() / 3));
      break;
    default:
      point.kind = StorageFaultKind::kFailedFlush;  // stands in for "lost"
      env.remove_file(path);
      break;
  }

  TemplateStore recovered = TemplateStore::open(fx.store_config, env);
  point.recovered_generation = recovered.generation();
  point.recovery = recovered.recovery_source();
  point.quarantined_shards = recovered.stats().quarantined_shards;
  if (recovered.generation() != 2 || point.quarantined_shards != 1)
    point.error = "media corruption must quarantine exactly the hit shard";
  else
    verify_serving(recovered, fx.expected_gen2, cfg.num_users, &point,
                   shard);
  return point;
}

}  // namespace

void CrashSweepConfig::validate() const {
  if (num_shards == 0) throw std::invalid_argument("sweep: num_shards == 0");
  if (num_users < 4) throw std::invalid_argument("sweep: num_users < 4");
  if (feature_dims == 0 || samples_per_user < 2)
    throw std::invalid_argument("sweep: degenerate enrollment shape");
  for (const StorageFaultKind kind : kinds)
    if (kind == StorageFaultKind::kNone)
      throw std::invalid_argument("sweep: kNone is not a sweepable fault");
}

bool CrashSweepReport::pass() const {
  const auto point_ok = [](const CrashPointResult& p) {
    return p.error.empty() && p.bad_serves == 0;
  };
  return commit_ops > 0 &&
         std::all_of(points.begin(), points.end(), point_ok) &&
         std::all_of(media_points.begin(), media_points.end(), point_ok);
}

std::uint64_t CrashSweepReport::fingerprint() const {
  std::uint64_t z = mix64(0xF16E59157ULL ^ commit_ops);
  const auto fold = [&z](const CrashPointResult& p) {
    z = mix64(z ^ p.op_index);
    z = mix64(z ^ static_cast<std::uint64_t>(p.kind));
    z = mix64(z ^ (p.commit_crashed ? 1u : 0u));
    z = mix64(z ^ p.recovered_generation);
    z = mix64(z ^ static_cast<std::uint64_t>(p.recovery));
    z = mix64(z ^ p.quarantined_shards);
    z = mix64(z ^ p.served_found);
    z = mix64(z ^ p.served_absent);
    z = mix64(z ^ p.served_quarantined);
    z = mix64(z ^ p.bad_serves);
    z = mix64(z ^ crc32(p.error));
  };
  for (const CrashPointResult& p : points) fold(p);
  for (const CrashPointResult& p : media_points) fold(p);
  return z;
}

std::string CrashSweepReport::describe() const {
  std::size_t bad = 0, errored = 0;
  const auto tally = [&](const CrashPointResult& p) {
    bad += p.bad_serves;
    if (!p.error.empty()) ++errored;
  };
  for (const CrashPointResult& p : points) tally(p);
  for (const CrashPointResult& p : media_points) tally(p);
  std::ostringstream os;
  os << "crash sweep: " << points.size() << " commit-crash points over "
     << commit_ops << " ops + " << media_points.size()
     << " media points; " << (pass() ? "PASS" : "FAIL") << " (bad serves "
     << bad << ", contract violations " << errored << "), fingerprint 0x"
     << std::hex << fingerprint();
  return os.str();
}

CrashSweepReport run_crash_sweep(const CrashSweepConfig& config) {
  config.validate();
  const SweepFixture fx = build_fixture(config);

  CrashSweepReport report;
  report.commit_ops = fx.commit_ops;
  report.points.resize(fx.commit_ops * config.kinds.size());
  report.media_points.resize(config.num_shards * 3 + 1);

  runtime::ThreadPool pool(runtime::resolve_workers(config.num_threads));
  // Every point forks its own snapshot of the baseline disk, so points are
  // independent; results land at their index and the fingerprint folds in
  // index order — bit-stable for any worker count.
  runtime::parallel_for(
      pool, report.points.size(), [&](std::size_t i, std::size_t) {
        const std::size_t op = i / config.kinds.size();
        const StorageFaultKind kind = config.kinds[i % config.kinds.size()];
        report.points[i] = run_commit_crash_point(fx, config, op, kind);
      });
  runtime::parallel_for(
      pool, report.media_points.size(), [&](std::size_t i, std::size_t) {
        report.media_points[i] = run_media_point(fx, config, i);
      });
  return report;
}

}  // namespace echoimage::store
