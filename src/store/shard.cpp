#include "store/shard.hpp"

#include <sstream>
#include <stdexcept>

#include "store/checksum.hpp"
#include "store/env.hpp"

namespace echoimage::store {

namespace {

constexpr std::size_t kSlotAlign = 64;
// "rec " + int + ' ' + len + ' ' + crc + '\n' with generous digit room.
constexpr std::size_t kSlotHeaderReserve = 48;

std::string header_prefix(const ShardHeader& h, std::uint32_t payload_crc) {
  std::ostringstream os;
  os << kShardMagic << " v" << kShardFormatVersion << '\n'
     << "shard " << h.shard_id << " of " << h.shard_count << '\n'
     << "generation " << h.generation << '\n'
     << "records " << h.record_count << " slot " << h.slot_bytes << '\n'
     << "payload_crc " << crc32_hex(payload_crc) << '\n';
  return os.str();
}

/// Reads one '\n'-terminated line out of [pos, bytes.size()); empty return
/// plus pos unchanged means no terminator before the limit.
std::string_view next_line(std::string_view bytes, std::size_t& pos,
                           std::size_t limit) {
  const std::size_t nl = bytes.find('\n', pos);
  if (nl == std::string_view::npos || nl >= limit) return {};
  const std::string_view line = bytes.substr(pos, nl - pos);
  pos = nl + 1;
  return line;
}

bool parse_fields(std::string_view line, std::initializer_list<const char*> lit,
                  std::vector<std::uint64_t>* out) {
  std::istringstream is{std::string(line)};
  auto lit_it = lit.begin();
  std::string word;
  out->clear();
  for (;;) {
    const bool want_literal = lit_it != lit.end();
    if (!(is >> word)) return !want_literal;
    if (want_literal && word == *lit_it) {
      ++lit_it;
      continue;
    }
    // Numeric field: digits only (strict — corrupt headers must not parse).
    std::uint64_t v = 0;
    if (word.empty()) return false;
    for (const char c : word) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out->push_back(v);
  }
}

}  // namespace

std::size_t slot_bytes_for(std::size_t max_payload_bytes) {
  const std::size_t raw = max_payload_bytes + kSlotHeaderReserve;
  return (raw + kSlotAlign - 1) / kSlotAlign * kSlotAlign;
}

std::string encode_shard(ShardHeader header,
                         const std::vector<std::string>& payloads) {
  header.record_count = payloads.size();
  if (header.slot_bytes == 0)
    throw StorageError("encode_shard: slot_bytes must be set");
  std::string slots;
  slots.reserve(payloads.size() * header.slot_bytes);
  for (const std::string& payload : payloads) {
    const std::size_t before = slots.size();
    // The slot header names the user for cheap scans; it is re-derived
    // from the payload itself (and cross-checked against the decode on
    // read) rather than trusted from a caller-supplied ordering.
    std::istringstream peek{payload};
    std::string tag;
    long long user_id = 0;
    if (!(peek >> tag >> user_id))
      throw StorageError("encode_shard: unparseable payload");
    std::ostringstream line;
    line << "rec " << user_id << ' ' << payload.size() << ' '
         << crc32_hex(crc32(payload)) << '\n';
    const std::string slot_header = line.str();
    if (slot_header.size() + payload.size() > header.slot_bytes)
      throw StorageError("encode_shard: payload exceeds slot size");
    slots += slot_header;
    slots += payload;
    slots.resize(before + header.slot_bytes, '\0');
  }
  const std::string prefix = header_prefix(header, crc32(slots));
  // The header CRC covers the entire fixed-size header — padding and the
  // crc line included — computed with its own hex field zeroed, then
  // patched in. A flip of *any* header byte is therefore detectable.
  std::string head = prefix + "header_crc 00000000\n";
  if (head.size() > kShardHeaderBytes - 1)
    throw StorageError("encode_shard: header overflow");
  head.resize(kShardHeaderBytes - 1, '#');
  head.push_back('\n');
  head.replace(prefix.size() + 11, 8, crc32_hex(crc32(head)));
  return head + slots;
}

ShardReadResult read_shard(std::string_view bytes) {
  ShardReadResult result;
  const auto fail = [&](std::string why) {
    result.ok = false;
    result.error = std::move(why);
    return result;
  };

  if (bytes.size() < kShardHeaderBytes) return fail("short file");

  std::size_t pos = 0;
  std::vector<std::uint64_t> nums;

  const std::string_view magic_line = next_line(bytes, pos, kShardHeaderBytes);
  std::ostringstream want_magic;
  want_magic << kShardMagic << " v" << kShardFormatVersion;
  if (std::string(magic_line) != want_magic.str())
    return fail("bad magic or format version");

  const std::string_view shard_line = next_line(bytes, pos, kShardHeaderBytes);
  if (!parse_fields(shard_line, {"shard", "of"}, &nums) || nums.size() != 2)
    return fail("bad shard line");
  result.header.shard_id = static_cast<std::size_t>(nums[0]);
  result.header.shard_count = static_cast<std::size_t>(nums[1]);

  const std::string_view gen_line = next_line(bytes, pos, kShardHeaderBytes);
  if (!parse_fields(gen_line, {"generation"}, &nums) || nums.size() != 1)
    return fail("bad generation line");
  result.header.generation = nums[0];

  const std::string_view rec_line = next_line(bytes, pos, kShardHeaderBytes);
  if (!parse_fields(rec_line, {"records", "slot"}, &nums) || nums.size() != 2)
    return fail("bad records line");
  result.header.record_count = static_cast<std::size_t>(nums[0]);
  result.header.slot_bytes = static_cast<std::size_t>(nums[1]);

  const std::string_view crc_line = next_line(bytes, pos, kShardHeaderBytes);
  std::uint32_t stored_payload_crc = 0;
  {
    std::istringstream is{std::string(crc_line)};
    std::string word, hex;
    if (!(is >> word >> hex) || word != "payload_crc")
      return fail("bad payload_crc line");
    try {
      stored_payload_crc = parse_crc32_hex(hex);
    } catch (const std::runtime_error&) {
      return fail("bad payload_crc line");
    }
  }
  const std::size_t header_text_end = pos;  // header_crc line starts here

  const std::string_view hdr_crc_line = next_line(bytes, pos, kShardHeaderBytes);
  {
    std::istringstream is{std::string(hdr_crc_line)};
    std::string word, hex;
    std::uint32_t stored = 0;
    if (!(is >> word >> hex) || word != "header_crc")
      return fail("bad header_crc line");
    try {
      stored = parse_crc32_hex(hex);
    } catch (const std::runtime_error&) {
      return fail("bad header_crc line");
    }
    // Re-zero the crc field and checksum the whole fixed-size header, so
    // corruption of the padding or of the crc line itself is caught too.
    if (header_text_end + 19 > kShardHeaderBytes)
      return fail("bad header_crc line");
    std::string head(bytes.substr(0, kShardHeaderBytes));
    head.replace(header_text_end + 11, 8, "00000000");
    if (stored != crc32(head)) return fail("header crc mismatch");
  }

  if (result.header.slot_bytes == 0 ||
      result.header.record_count > (1u << 24) ||
      result.header.slot_bytes > (1u << 26))
    return fail("implausible geometry");
  const std::size_t want_size =
      kShardHeaderBytes + result.header.record_count * result.header.slot_bytes;
  if (bytes.size() != want_size) return fail("geometry mismatch");

  const std::string_view slots = bytes.substr(kShardHeaderBytes);
  if (crc32(slots) != stored_payload_crc) return fail("payload crc mismatch");

  result.records.reserve(result.header.record_count);
  for (std::size_t i = 0; i < result.header.record_count; ++i) {
    const std::string_view slot =
        slots.substr(i * result.header.slot_bytes, result.header.slot_bytes);
    const std::size_t nl = slot.find('\n');
    if (nl == std::string_view::npos)
      return fail("slot " + std::to_string(i) + ": no header line");
    std::istringstream is{std::string(slot.substr(0, nl))};
    std::string word, hex;
    long long slot_user = 0;
    std::uint64_t len = 0;
    if (!(is >> word >> slot_user >> len >> hex) || word != "rec")
      return fail("slot " + std::to_string(i) + ": bad header line");
    if (nl + 1 + len > slot.size())
      return fail("slot " + std::to_string(i) + ": length exceeds slot");
    const std::string_view payload = slot.substr(nl + 1, len);
    std::uint32_t stored = 0;
    try {
      stored = parse_crc32_hex(hex);
    } catch (const std::runtime_error&) {
      return fail("slot " + std::to_string(i) + ": bad crc field");
    }
    if (crc32(payload) != stored)
      return fail("slot " + std::to_string(i) + ": record crc mismatch");
    TemplateRecord record;
    try {
      record = decode_record(payload);
    } catch (const std::exception& e) {
      return fail("slot " + std::to_string(i) + ": decode: " + e.what());
    }
    if (record.user_id != static_cast<int>(slot_user))
      return fail("slot " + std::to_string(i) + ": user id mismatch");
    result.records.push_back(std::move(record));
  }
  result.ok = true;
  return result;
}

}  // namespace echoimage::store
