// Integrity primitives for the durable template store.
//
// Every on-disk artifact the store writes carries CRC-32 checksums: one per
// record slot, one over a shard's payload region, one over each header.
// CRC-32 (the reflected IEEE 802.3 polynomial, as used by zlib/ethernet) is
// cheap enough to verify on every open and strong enough to catch the fault
// classes the injector models — torn writes, bit flips, truncation. It is
// *not* a cryptographic MAC: the store defends against media and crash
// corruption, not a malicious writer with filesystem access.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace echoimage::store {

/// Incremental CRC-32 (poly 0xEDB88320, reflected, init/final 0xFFFFFFFF).
/// crc32("123456789") == 0xCBF43926 — the standard check value.
class Crc32 {
 public:
  void update(std::string_view bytes) noexcept;
  [[nodiscard]] std::uint32_t value() const noexcept {
    return state_ ^ 0xFFFFFFFFu;
  }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

[[nodiscard]] std::uint32_t crc32(std::string_view bytes) noexcept;

/// Fixed-width lowercase 8-hex-digit rendering — the on-disk form, chosen
/// so headers that embed a checksum keep a byte-stable layout.
[[nodiscard]] std::string crc32_hex(std::uint32_t crc);

/// Parse the 8-hex-digit form back; throws std::runtime_error on anything
/// that is not exactly eight hex digits.
[[nodiscard]] std::uint32_t parse_crc32_hex(std::string_view hex);

namespace detail {

/// splitmix64 finalizer — the store's seed/shard/fingerprint mixer, kept
/// local so the store does not depend on sim (same construction as
/// sim::mix_seed and serve::detail::mix64).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace detail

}  // namespace echoimage::store
