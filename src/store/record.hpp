// The unit of durable enrollment: one user's template record.
//
// A record is self-contained — the feature centroid (the 1:N prefilter key
// ROADMAP item 3 needs) plus a fully trained single-user verifier (scaler,
// SVDD gate, calibrated accept threshold) serialized through ml/serialize's
// hexfloat text format, so a record decoded from disk authenticates
// bit-identically to the freshly trained object. Records are what shards
// store and what the serve layer's store-backed processor looks up per
// frame.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/authenticator.hpp"

namespace echoimage::store {

struct TemplateRecord {
  int user_id = 0;
  /// Mean enrollment feature vector.
  std::vector<double> centroid;
  /// Single-user verifier for this template (see core::Authenticator's
  /// single-user mode: scaler + one SVDD + calibrated threshold).
  core::Authenticator verifier;
};

/// Tagged hexfloat text encoding (bit-exact round-trip).
[[nodiscard]] std::string encode_record(const TemplateRecord& record);

/// Throws std::runtime_error on any malformed payload — a decode failure
/// is a corruption signal the shard reader turns into quarantine, never a
/// partially filled record.
[[nodiscard]] TemplateRecord decode_record(std::string_view payload);

/// Train a self-contained 1:1 template from one user's enrollment
/// features. `calibration` may be empty (the trainer then holds out a
/// stride of `features`, see core::EnrolledUser).
[[nodiscard]] TemplateRecord make_template_record(
    int user_id, std::vector<std::vector<double>> features,
    std::vector<std::vector<double>> calibration = {},
    const core::AuthenticatorConfig& config = {});

}  // namespace echoimage::store
