// Storage environment abstraction: the narrow filesystem surface the
// template store is written against.
//
// Every byte the store persists flows through a StorageEnv, for two
// reasons. First, crash-consistency claims are only as good as their test
// harness: the fault injector (store/faults.hpp) wraps any env and crashes
// the "process" at an exact mutation index, which is impossible to do
// deterministically against a real kernel. Second, the crash-point sweep
// needs to snapshot and restore whole filesystems cheaply — MemoryEnv is
// copyable, so every sweep point starts from a bit-identical disk.
//
// Paths are '/'-separated relative or absolute strings; envs do not
// interpret them beyond splitting on '/'. The mutation surface
// (write_file, rename_file, remove_file, make_dirs, remove_dir) is exactly
// the set of injectable fault points.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace echoimage::store {

/// Environment-level failure (missing file on a required read, short
/// write, rename of a non-existent source). Callers above the recovery
/// ladder see std::runtime_error.
class StorageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by a fault-injecting env for the injected operation and every
/// operation after it: from the store's point of view the process died at
/// the fault point. Distinct from StorageError so tests can assert that a
/// sweep point actually crashed rather than failed cleanly.
class StorageCrash : public StorageError {
 public:
  using StorageError::StorageError;
};

class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  // ---- mutations (the injectable fault points, in op-count order) ----

  /// Create or truncate `path` and write `data`. `flush` requests a
  /// durability barrier (fsync-equivalent); a failed-flush fault models
  /// the barrier silently not happening.
  virtual void write_file(const std::string& path, std::string_view data,
                          bool flush) = 0;
  /// Atomically replace `to` with `from` (POSIX rename semantics). The
  /// commit protocol's linearization point.
  virtual void rename_file(const std::string& from, const std::string& to) = 0;
  /// Remove a file; missing is not an error (cleanup is best-effort).
  virtual void remove_file(const std::string& path) = 0;
  /// mkdir -p.
  virtual void make_dirs(const std::string& path) = 0;
  /// Remove an *empty* directory; missing is not an error.
  virtual void remove_dir(const std::string& path) = 0;

  // ---- reads ----

  /// Whole-file read; nullopt when missing.
  [[nodiscard]] virtual std::optional<std::string> read_file(
      const std::string& path) const = 0;
  [[nodiscard]] virtual bool exists(const std::string& path) const = 0;
  /// Immediate children of a directory (names, not paths), sorted;
  /// empty for a missing directory.
  [[nodiscard]] virtual std::vector<std::string> list_dir(
      const std::string& path) const = 0;
};

/// The store's atomic-commit helper and the only sanctioned way for
/// library code to produce a durable artifact (echolint R6): write
/// `path`.tmp, flush it, then rename over `path`. A crash before the
/// rename leaves at most a stray .tmp; a crash after leaves the complete
/// new file. There is no window where `path` holds partial data.
void atomic_write_file(StorageEnv& env, const std::string& path,
                       std::string_view data);

/// In-memory filesystem: files as strings, directories as a path set.
/// Copy-constructible — a copy is a point-in-time disk snapshot, which is
/// what the crash-point sweep forks per fault point.
class MemoryEnv final : public StorageEnv {
 public:
  MemoryEnv();

  void write_file(const std::string& path, std::string_view data,
                  bool flush) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;
  void make_dirs(const std::string& path) override;
  void remove_dir(const std::string& path) override;

  [[nodiscard]] std::optional<std::string> read_file(
      const std::string& path) const override;
  [[nodiscard]] bool exists(const std::string& path) const override;
  [[nodiscard]] std::vector<std::string> list_dir(
      const std::string& path) const override;

  /// Direct byte-level access for tests and the sweep's at-rest media
  /// corruption phase (mutating a file without counting as a store op).
  void corrupt_file(const std::string& path, std::string bytes);
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

 private:
  [[nodiscard]] static std::string parent_of(const std::string& path);
  void require_dir(const std::string& path) const;

  std::unordered_map<std::string, std::string> files_;
  std::unordered_set<std::string> dirs_;
};

/// Real-filesystem env (std::filesystem + ofstream). Used by the CLI and
/// bench_store; the crash sweep never runs against it — determinism of
/// fault points cannot be guaranteed on a real kernel.
class FileSystemEnv final : public StorageEnv {
 public:
  void write_file(const std::string& path, std::string_view data,
                  bool flush) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;
  void make_dirs(const std::string& path) override;
  void remove_dir(const std::string& path) override;

  [[nodiscard]] std::optional<std::string> read_file(
      const std::string& path) const override;
  [[nodiscard]] bool exists(const std::string& path) const override;
  [[nodiscard]] std::vector<std::string> list_dir(
      const std::string& path) const override;
};

}  // namespace echoimage::store
