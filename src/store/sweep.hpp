// Crash-point sweep: the store's crash-consistency proof harness.
//
// Phase A (commit crashes): a baseline store is built in a MemoryEnv and a
// counting pass (StorageFaultKind::kNone) enumerates every mutation a
// second commit performs. Then, for every (mutation index x fault kind)
// cell, the sweep forks a bit-identical snapshot of the baseline disk,
// re-runs the commit under a StorageFaultInjector that kills the "process"
// at exactly that cell, reopens the wreckage with a plain env, and
// verifies the recovery contract: the store comes back on a *committed*
// generation (old or new, depending on which side of the manifest rename
// the crash fell), every lookup answer is bit-exact against that
// generation's encoded records, nothing is quarantined, and recovery never
// needed to leave the manifest rung.
//
// Phase B (at-rest media corruption): each shard file of a committed store
// is bit-flipped, truncated, or deleted in place, plus one cell for a
// corrupt MANIFEST. Recovery must quarantine exactly the damaged shard
// (its users answer kQuarantined — abstain, never reject, never a stale
// accept) while every other user still gets bit-exact templates; the
// manifest cell must fall back to the scan rung and recover everything.
//
// The whole report folds into a splitmix64 fingerprint that is bit-stable
// across runs and across sweep thread counts (points are computed in
// parallel but folded in index order) — the determinism tests pin it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "store/faults.hpp"
#include "store/store.hpp"

namespace echoimage::store {

struct CrashSweepConfig {
  std::size_t num_shards = 4;
  /// Enrolled population: the baseline commit enrolls the first half, the
  /// crashing commit upserts a few updates plus the second half.
  std::size_t num_users = 24;
  std::size_t feature_dims = 8;
  std::size_t samples_per_user = 4;
  std::uint64_t seed = 0x5109E7EA7ULL;
  /// Fault kinds swept in phase A (kNone entries are ignored).
  std::vector<StorageFaultKind> kinds = {
      StorageFaultKind::kTornWrite, StorageFaultKind::kBitFlip,
      StorageFaultKind::kTruncate, StorageFaultKind::kFailedFlush,
      StorageFaultKind::kStaleRename};
  /// Worker count for the point fan-out (0 = auto). The fingerprint is
  /// identical for every value.
  std::size_t num_threads = 1;

  void validate() const;
};

struct CrashPointResult {
  std::size_t op_index = 0;
  StorageFaultKind kind = StorageFaultKind::kNone;
  bool commit_crashed = false;
  std::uint64_t recovered_generation = 0;
  RecoverySource recovery = RecoverySource::kManifest;
  std::size_t quarantined_shards = 0;
  std::size_t served_found = 0;
  std::size_t served_absent = 0;
  std::size_t served_quarantined = 0;
  /// Wrong answers: stale/corrupt/mismatched templates, or found/absent
  /// where the contract demands abstain. Must be zero everywhere.
  std::size_t bad_serves = 0;
  /// Non-empty when the point violated the recovery contract outright.
  std::string error;
};

struct CrashSweepReport {
  /// Mutations the swept commit performs (phase A grid height).
  std::size_t commit_ops = 0;
  std::vector<CrashPointResult> points;        ///< phase A, index order
  std::vector<CrashPointResult> media_points;  ///< phase B, index order
  [[nodiscard]] bool pass() const;
  /// Order-stable splitmix64 fold of every point's outcome fields.
  [[nodiscard]] std::uint64_t fingerprint() const;
  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] CrashSweepReport run_crash_sweep(const CrashSweepConfig& config);

}  // namespace echoimage::store
