// Shard file codec: the store's on-disk unit.
//
// A shard file is a fixed-size versioned header followed by fixed-size
// record slots, so slot offsets are O(1) and a reader can locate every
// integrity boundary without trusting any variable-length structure:
//
//   [header: kShardHeaderBytes]
//     echoimage-store-shard v1          <- magic + format version
//     shard <id> of <count>
//     generation <gen>
//     records <n> slot <slot_bytes>
//     payload_crc <8hex>                <- CRC-32 over all n slots
//     header_crc <8hex>                 <- CRC-32 over the 5 lines above
//     ###...#\n                        <- '#' padding to the fixed size
//   [slot 0: slot_bytes]
//     rec <user_id> <payload_len> <8hex>\n   <- per-record CRC-32
//     <payload bytes><NUL padding>
//   [slot 1] ... [slot n-1]
//
// Verification is a ladder — size, magic/version, header CRC, geometry,
// payload CRC, then per-slot CRC + decode + user-id cross-check — and the
// first failed rung names the corruption. A shard that fails any rung is
// reported whole-file corrupt; the store quarantines it rather than trust
// whichever slots happen to still parse (a torn write that ate the header
// says nothing about which record bytes are stale).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "store/record.hpp"

namespace echoimage::store {

inline constexpr std::string_view kShardMagic = "echoimage-store-shard";
inline constexpr std::size_t kShardFormatVersion = 1;
inline constexpr std::size_t kShardHeaderBytes = 192;

struct ShardHeader {
  std::size_t shard_id = 0;
  std::size_t shard_count = 1;
  std::uint64_t generation = 0;
  std::size_t record_count = 0;
  std::size_t slot_bytes = 0;
};

/// Smallest slot size (a multiple of 64) that fits every payload of
/// `max_payload_bytes` plus its slot header line.
[[nodiscard]] std::size_t slot_bytes_for(std::size_t max_payload_bytes);

/// Serialize one shard; every payload must fit `header.slot_bytes` (throws
/// StorageError otherwise), and `header.record_count` is taken from
/// `payloads`.
[[nodiscard]] std::string encode_shard(ShardHeader header,
                                       const std::vector<std::string>& payloads);

struct ShardReadResult {
  bool ok = false;
  /// First integrity-ladder rung that failed (empty when ok).
  std::string error;
  ShardHeader header;
  std::vector<TemplateRecord> records;
};

/// Run the full verification ladder over raw shard bytes. Never throws on
/// corrupt input — corruption is a *result*, not an exception, because the
/// caller's job is to quarantine and carry on.
[[nodiscard]] ShardReadResult read_shard(std::string_view bytes);

}  // namespace echoimage::store
