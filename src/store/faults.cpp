#include "store/faults.hpp"

#include "store/checksum.hpp"

namespace echoimage::store {

const char* to_string(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kNone: return "none";
    case StorageFaultKind::kTornWrite: return "torn_write";
    case StorageFaultKind::kBitFlip: return "bit_flip";
    case StorageFaultKind::kTruncate: return "truncate";
    case StorageFaultKind::kFailedFlush: return "failed_flush";
    case StorageFaultKind::kStaleRename: return "stale_rename";
  }
  return "?";
}

StorageFaultInjector::StorageFaultInjector(StorageEnv& inner,
                                           StorageFaultSpec spec)
    : inner_(&inner), spec_(spec) {}

bool StorageFaultInjector::arm_mutation() {
  require_alive();
  const std::size_t idx = ops_++;
  return spec_.kind != StorageFaultKind::kNone && idx == spec_.op_index;
}

void StorageFaultInjector::die() {
  injected_ = true;
  crashed_ = true;
  throw StorageCrash(std::string("StorageFaultInjector: crashed by ") +
                     to_string(spec_.kind));
}

void StorageFaultInjector::require_alive() const {
  if (crashed_)
    throw StorageCrash("StorageFaultInjector: operation after crash");
}

void StorageFaultInjector::write_file(const std::string& path,
                                      std::string_view data, bool flush) {
  if (!arm_mutation()) {
    inner_->write_file(path, data, flush);
    return;
  }
  const std::uint64_t h = detail::mix64(spec_.seed ^ (ops_ - 1));
  switch (spec_.kind) {
    case StorageFaultKind::kTornWrite:
      // A strict prefix reaches the medium before power is lost.
      if (!data.empty())
        inner_->write_file(path, data.substr(0, h % data.size()), false);
      else
        inner_->write_file(path, data, false);
      break;
    case StorageFaultKind::kBitFlip: {
      // The whole write lands but the medium flips a few bits in flight.
      std::string corrupt(data);
      if (!corrupt.empty()) {
        const std::size_t flips = 1 + h % 3;
        for (std::size_t f = 0; f < flips; ++f) {
          const std::uint64_t g = detail::mix64(h ^ (0xB17F11Bu + f));
          corrupt[g % corrupt.size()] ^=
              static_cast<char>(1u << ((g >> 32) % 8));
        }
      }
      inner_->write_file(path, corrupt, flush);
      break;
    }
    case StorageFaultKind::kTruncate:
      // The file is created, then truncated to nothing by the crash.
      inner_->write_file(path, std::string_view(), false);
      break;
    case StorageFaultKind::kFailedFlush:
      // The barrier lied: nothing was durable when the machine died. Any
      // pre-existing file keeps its old bytes.
      break;
    case StorageFaultKind::kStaleRename:
    case StorageFaultKind::kNone:
      // Not applicable to a write: crash before the op happens.
      break;
  }
  die();
}

void StorageFaultInjector::rename_file(const std::string& from,
                                       const std::string& to) {
  if (!arm_mutation()) {
    inner_->rename_file(from, to);
    return;
  }
  // kStaleRename (and every other kind landing on a rename): the rename
  // simply never happens — the old name survives, the temp file lingers.
  die();
}

void StorageFaultInjector::remove_file(const std::string& path) {
  if (!arm_mutation()) {
    inner_->remove_file(path);
    return;
  }
  die();
}

void StorageFaultInjector::make_dirs(const std::string& path) {
  if (!arm_mutation()) {
    inner_->make_dirs(path);
    return;
  }
  die();
}

void StorageFaultInjector::remove_dir(const std::string& path) {
  if (!arm_mutation()) {
    inner_->remove_dir(path);
    return;
  }
  die();
}

std::optional<std::string> StorageFaultInjector::read_file(
    const std::string& path) const {
  require_alive();
  return inner_->read_file(path);
}

bool StorageFaultInjector::exists(const std::string& path) const {
  require_alive();
  return inner_->exists(path);
}

std::vector<std::string> StorageFaultInjector::list_dir(
    const std::string& path) const {
  require_alive();
  return inner_->list_dir(path);
}

}  // namespace echoimage::store
