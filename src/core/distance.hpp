// User-array distance estimation (paper Sec. V-B).
//
// Pipeline per the paper: band-pass the capture to the probing band, steer
// the array's look direction to an arbitrary region of the user's upper
// body with MVDR beamforming, matched-filter the beamformed signal against
// the chirp, take the envelope E_l(t) per beep, average |E_l|^2 over L
// beeps (Eq. 10), then locate the direct-path peak tau_1 and the largest
// echo-period peak tau_w'. The slant distance is D_f = (tau_w' - tau_1)*c/2
// and the user-array distance D_p = D_f sin(phi) sin(theta).
#pragma once

#include <cstddef>
#include <memory>
#include <numbers>
#include <vector>

#include "array/beamformer.hpp"
#include "dsp/biquad.hpp"
#include "dsp/chirp.hpp"
#include "dsp/peaks.hpp"
#include "dsp/signal.hpp"
#include "obs/observability.hpp"

namespace echoimage::core {

namespace units = echoimage::units;
using echoimage::array::ArrayGeometry;
using echoimage::array::Direction;
using echoimage::dsp::MultiChannelSignal;
using echoimage::dsp::Signal;

/// Which spatial front-end feeds the matched filter — the paper's MVDR, the
/// delay-and-sum baseline, or a single microphone (the naive scheme the
/// paper argues against).
enum class SteeringMode { kMvdr, kDelayAndSum, kSingleMic };

struct DistanceEstimatorConfig {
  double sample_rate = 48000.0;
  echoimage::dsp::ChirpParams chirp{};  ///< must match the emitted beep
  double bandpass_low_hz = 2000.0;
  double bandpass_high_hz = 3000.0;
  std::size_t bandpass_order = 4;
  /// Steered look direction: theta = pi/2 (straight ahead), phi in
  /// [pi/3, 2pi/3] hits the upper body across heights (paper Sec. V-B).
  /// Default 1.2 rad (~69 degrees from zenith) targets the chest region for
  /// an array mounted at ~1.2 m.
  Direction steer{std::numbers::pi / 2.0, 1.2};
  double chirp_period_s = 0.002;  ///< direct-sound window after tau_1
  /// The direct speaker->mic sound must arrive within this window of the
  /// emission (speaker-to-mic flight is centimeters); tau_1 is searched
  /// only here so a strong body echo can never be mistaken for it.
  double direct_search_window_s = 0.001;
  double echo_period_s = 0.010;   ///< echo search window after chirp period
  /// Guard between the chirp period and the echo window: the matched
  /// filter's direct-path skirt decays over ~0.5 ms and must not be
  /// mistaken for a body echo.
  double echo_guard_s = 0.0005;
  double peak_min_separation_s = 0.001;  ///< local-max dominance radius d
  double peak_relative_threshold = 0.02;  ///< th as a fraction of max E(t)
  /// An echo peak must exceed this multiple of the echo window's median
  /// energy, otherwise the estimate is reported invalid (no user in range).
  double min_peak_prominence = 10.0;
  std::size_t envelope_smooth_samples = 9;
  /// Extra smoothing applied to the echo search window only (merges the
  /// body's sub-peaks into one stable hump; must not touch the direct
  /// path, whose smeared skirt would otherwise flood the window).
  std::size_t echo_window_smooth_samples = 65;
  SteeringMode mode = SteeringMode::kMvdr;
  std::size_t single_mic_index = 0;  ///< used when mode == kSingleMic
  units::MetersPerSecond speed_of_sound = echoimage::array::kSpeedOfSoundMps;
};

struct DistanceEstimate {
  bool valid = false;          ///< false when no echo peak was found
  double tau_direct_s = 0.0;   ///< tau_1: direct-path arrival
  double tau_echo_s = 0.0;     ///< tau_w': body echo arrival
  double slant_distance_m = 0.0;  ///< D_f
  double user_distance_m = 0.0;   ///< D_p
  /// Energy centroid of the echo window — a smoother anchor than the peak;
  /// the imager gates relative to it so that any constant detection bias
  /// cancels out of the image (see ImagingConfig::anchor_to_echo).
  double tau_echo_centroid_s = 0.0;
  double user_distance_centroid_m = 0.0;  ///< D_p derived from the centroid
  Signal averaged_envelope;    ///< E(t) of Eq. 10 (kept for plots/benches)
  std::vector<echoimage::dsp::Peak> peaks;  ///< the MaxSet
};

class DistanceEstimator {
 public:
  DistanceEstimator(DistanceEstimatorConfig config, ArrayGeometry geometry);

  [[nodiscard]] const DistanceEstimatorConfig& config() const {
    return config_;
  }

  /// Estimate from L beep captures. `noise_only` (optional, may be empty)
  /// provides noise-only samples for the MVDR noise covariance; without it
  /// the spatially-white assumption is used. `active_mask` (empty = all)
  /// restricts beamforming to the healthy subarray — the graceful-
  /// degradation path when the health gate has condemned a channel.
  [[nodiscard]] DistanceEstimate estimate(
      const std::vector<MultiChannelSignal>& beeps,
      const MultiChannelSignal& noise_only = {},
      const echoimage::array::ChannelMask& active_mask = {}) const;

  /// Band-passed copy of a capture (exposed for reuse by the imager).
  [[nodiscard]] MultiChannelSignal bandpass(
      const MultiChannelSignal& capture) const;

  /// Per-beep correlation envelope E_l(t) of the steered signal (exposed
  /// for tests and the Fig. 5 bench).
  [[nodiscard]] Signal beep_envelope(
      const MultiChannelSignal& beep, const MultiChannelSignal& noise_only,
      const echoimage::array::ChannelMask& active_mask = {}) const;

  /// Wire into the system observability bundle: estimate spans plus
  /// valid/invalid counters and a distance histogram (all deterministic for
  /// a seeded scenario). Null keeps every site a dead branch.
  void attach_observability(std::shared_ptr<const obs::Observability> obs);

 private:
  [[nodiscard]] DistanceEstimate estimate_impl(
      const std::vector<MultiChannelSignal>& beeps,
      const MultiChannelSignal& noise_only,
      const echoimage::array::ChannelMask& active_mask) const;

  DistanceEstimatorConfig config_;
  ArrayGeometry geometry_;
  echoimage::dsp::SosCascade bandpass_filter_;
  Signal chirp_template_;
  std::shared_ptr<const obs::Observability> obs_;
  const obs::Counter* valid_counter_ = nullptr;
  const obs::Counter* invalid_counter_ = nullptr;
  const obs::Histogram* distance_hist_ = nullptr;
};

}  // namespace echoimage::core
