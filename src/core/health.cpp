#include "core/health.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "dsp/hilbert.hpp"

namespace echoimage::core {

namespace {

using echoimage::dsp::Signal;

struct BeepChannelStats {
  double ac_rms = 0.0;
  double dc_fraction = 0.0;
  double clipping_ratio = 0.0;
  double coherence = 1.0;
  std::size_t nonfinite = 0;
};

/// Mean / AC RMS / non-finite count over the finite samples of a channel.
BeepChannelStats basic_stats(const Signal& ch) {
  BeepChannelStats s;
  double sum = 0.0;
  std::size_t finite = 0;
  for (const double v : ch) {
    if (!std::isfinite(v)) {
      ++s.nonfinite;
      continue;
    }
    sum += v;
    ++finite;
  }
  if (finite == 0) return s;
  const double mean = sum / static_cast<double>(finite);
  double acc = 0.0;
  for (const double v : ch)
    if (std::isfinite(v)) acc += (v - mean) * (v - mean);
  s.ac_rms = std::sqrt(acc / static_cast<double>(finite));
  s.dc_fraction = s.ac_rms > 0.0 ? std::abs(mean) / s.ac_rms
                                 : (std::abs(mean) > 0.0 ? 1e9 : 0.0);
  return s;
}

/// Fraction of samples sitting on saturation plateaus: runs of (exactly)
/// equal consecutive values at >= 90% of the channel peak. A clean
/// continuous waveform essentially never repeats an extreme sample exactly;
/// a clamped converter produces long flat runs at the rails.
double clipping_plateau_ratio(const Signal& ch) {
  if (ch.size() < 2) return 0.0;
  double peak = 0.0;
  for (const double v : ch)
    if (std::isfinite(v)) peak = std::max(peak, std::abs(v));
  if (peak <= 0.0) return 0.0;
  const double rail = 0.9 * peak;
  std::size_t clipped = 0;
  std::size_t run = 1;
  for (std::size_t i = 1; i < ch.size(); ++i) {
    const double a = ch[i - 1], b = ch[i];
    const bool plateau =
        std::isfinite(a) && std::isfinite(b) && a == b && std::abs(a) >= rail;
    if (plateau) {
      ++run;
    } else {
      if (run > 1) clipped += run;
      run = 1;
    }
  }
  if (run > 1) clipped += run;
  return static_cast<double>(clipped) / static_cast<double>(ch.size());
}

/// Smoothed energy envelope with non-finite samples zeroed, truncated to
/// `length` so ragged channels stay comparable.
Signal energy_envelope(const Signal& ch, std::size_t length,
                       std::size_t smooth) {
  Signal sq(length, 0.0);
  for (std::size_t i = 0; i < std::min(length, ch.size()); ++i) {
    const double v = ch[i];
    sq[i] = std::isfinite(v) ? v * v : 0.0;
  }
  return echoimage::dsp::moving_average(sq, smooth);
}

}  // namespace

const char* to_string(ChannelStatus status) {
  switch (status) {
    case ChannelStatus::kOk: return "ok";
    case ChannelStatus::kDegraded: return "degraded";
    case ChannelStatus::kDead: return "dead";
  }
  return "?";
}

const char* to_string(CaptureVerdict verdict) {
  switch (verdict) {
    case CaptureVerdict::kOk: return "ok";
    case CaptureVerdict::kDegraded: return "degraded";
    case CaptureVerdict::kFailed: return "failed";
  }
  return "?";
}

CaptureHealth assess_capture(const std::vector<MultiChannelSignal>& beeps,
                             const ChannelHealthConfig& config) {
  if (beeps.empty())
    throw std::invalid_argument("assess_capture: no beeps");
  const std::size_t m = beeps.front().num_channels();
  if (m == 0)
    throw std::invalid_argument("assess_capture: beep has no channels");
  for (const MultiChannelSignal& beep : beeps)
    if (beep.num_channels() != m)
      throw std::invalid_argument(
          "assess_capture: beeps disagree on channel count");

  CaptureHealth out;
  out.channels.resize(m);

  // Aggregate per-beep stats: a channel is only as healthy as its worst
  // beep (min coherence, max clipping), but only as dead as its *best*
  // beep (max AC RMS) so a single dropped-out beep does not kill it.
  for (const MultiChannelSignal& beep : beeps) {
    std::size_t min_len = beep.channels.front().size();
    for (const Signal& ch : beep.channels)
      min_len = std::min(min_len, ch.size());

    std::vector<Signal> envs;
    std::vector<BeepChannelStats> stats(m);
    if (m > 1 && min_len > 0) {
      envs.reserve(m);
      for (const Signal& ch : beep.channels)
        envs.push_back(energy_envelope(ch, min_len,
                                       config.coherence_smooth_samples));
    }
    Signal env_sum;
    if (!envs.empty()) {
      env_sum.assign(min_len, 0.0);
      for (const Signal& e : envs)
        for (std::size_t i = 0; i < min_len; ++i) env_sum[i] += e[i];
    }

    for (std::size_t c = 0; c < m; ++c) {
      BeepChannelStats s = basic_stats(beep.channels[c]);
      s.clipping_ratio = clipping_plateau_ratio(beep.channels[c]);
      if (!envs.empty()) {
        // Leave-one-out reference envelope of the other channels.
        Signal ref(min_len);
        const double inv = 1.0 / static_cast<double>(m - 1);
        for (std::size_t i = 0; i < min_len; ++i)
          ref[i] = (env_sum[i] - envs[c][i]) * inv;
        s.coherence = echoimage::dsp::pearson(envs[c], ref);
      }
      ChannelHealth& h = out.channels[c];
      h.ac_rms = std::max(h.ac_rms, s.ac_rms);
      h.dc_fraction = std::max(h.dc_fraction, s.dc_fraction);
      h.clipping_ratio = std::max(h.clipping_ratio, s.clipping_ratio);
      h.envelope_coherence = std::min(h.envelope_coherence, s.coherence);
      h.nonfinite += s.nonfinite;
    }
  }

  // Median channel AC RMS anchors the flatline / imbalance thresholds.
  std::vector<double> rms_sorted;
  rms_sorted.reserve(m);
  for (const ChannelHealth& h : out.channels) rms_sorted.push_back(h.ac_rms);
  std::nth_element(rms_sorted.begin(), rms_sorted.begin() + m / 2,
                   rms_sorted.end());
  const double median_rms = rms_sorted[m / 2];

  for (ChannelHealth& h : out.channels) {
    if (h.nonfinite > config.max_nonfinite) {
      h.status = ChannelStatus::kDead;
      h.issues.push_back(std::to_string(h.nonfinite) +
                         " non-finite sample(s)");
    }
    h.flatline = h.ac_rms <= config.flatline_rms_ratio * median_rms;
    if (h.flatline) {
      h.status = ChannelStatus::kDead;
      h.issues.push_back("flatline (AC RMS ~ 0)");
    }
    if (h.clipping_ratio >= config.clipping_dead_ratio) {
      h.status = ChannelStatus::kDead;
      h.issues.push_back("severe clipping");
    } else if (h.clipping_ratio >= config.clipping_degraded_ratio) {
      if (h.status == ChannelStatus::kOk) h.status = ChannelStatus::kDegraded;
      h.issues.push_back("clipping");
    }
    if (h.status != ChannelStatus::kDead && median_rms > 0.0 &&
        (h.ac_rms < config.imbalance_low_ratio * median_rms ||
         h.ac_rms > config.imbalance_high_ratio * median_rms)) {
      h.status = ChannelStatus::kDegraded;
      h.issues.push_back("RMS imbalance vs array median");
    }
    if (h.status != ChannelStatus::kDead &&
        h.dc_fraction > config.dc_offset_degraded_ratio) {
      if (h.status == ChannelStatus::kOk) h.status = ChannelStatus::kDegraded;
      h.issues.push_back("DC offset");
    }
    if (h.status != ChannelStatus::kDead &&
        h.envelope_coherence < config.min_envelope_coherence) {
      if (h.status == ChannelStatus::kOk) h.status = ChannelStatus::kDegraded;
      h.issues.push_back("low inter-channel coherence");
    }
  }

  out.active_mask.assign(m, true);
  for (std::size_t c = 0; c < m; ++c) {
    const ChannelStatus s = out.channels[c].status;
    if (s == ChannelStatus::kDead ||
        (config.drop_degraded && s == ChannelStatus::kDegraded))
      out.active_mask[c] = false;
  }
  out.num_active = static_cast<std::size_t>(
      std::count(out.active_mask.begin(), out.active_mask.end(), true));

  const bool any_issue = std::any_of(
      out.channels.begin(), out.channels.end(),
      [](const ChannelHealth& h) { return h.status != ChannelStatus::kOk; });
  if (out.num_active < config.min_active_channels)
    out.verdict = CaptureVerdict::kFailed;
  else
    out.verdict = any_issue ? CaptureVerdict::kDegraded : CaptureVerdict::kOk;
  return out;
}

CaptureHealth assess_capture(const MultiChannelSignal& capture,
                             const ChannelHealthConfig& config) {
  return assess_capture(std::vector<MultiChannelSignal>{capture}, config);
}

std::string CaptureHealth::describe() const {
  std::ostringstream os;
  os << "capture health: " << to_string(verdict) << " (" << num_active << "/"
     << channels.size() << " channels active)\n";
  for (std::size_t c = 0; c < channels.size(); ++c) {
    const ChannelHealth& h = channels[c];
    os << "  ch " << c << ": " << to_string(h.status);
    os << "  [ac rms " << h.ac_rms << ", clip "
       << 100.0 * h.clipping_ratio << "%, dc " << h.dc_fraction
       << ", coherence " << h.envelope_coherence << "]";
    for (std::size_t i = 0; i < h.issues.size(); ++i)
      os << (i == 0 ? " — " : "; ") << h.issues[i];
    os << "\n";
  }
  return os.str();
}

}  // namespace echoimage::core
