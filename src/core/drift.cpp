#include "core/drift.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <sstream>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "dsp/hilbert.hpp"
#include "dsp/matched_filter.hpp"

namespace echoimage::core {

namespace {

constexpr double kTinyPower = 1e-300;

/// Sub-sample peak position: local floor-subtracted centroid over
/// +-half_width samples around `peak`. A 10 C temperature swing only moves
/// a 3 m wall echo ~15 samples, so a raw argmax alone is too coarse a
/// thermometer.
double refine_peak(const Signal& prof, std::size_t peak,
                   std::size_t half_width) {
  const std::size_t c_lo = peak > half_width ? peak - half_width : 0;
  const std::size_t c_hi = std::min(prof.size(), peak + half_width + 1);
  double local_min = prof[peak];
  for (std::size_t i = c_lo; i < c_hi; ++i)
    local_min = std::min(local_min, prof[i]);
  double wsum = 0.0, tsum = 0.0;
  for (std::size_t i = c_lo; i < c_hi; ++i) {
    const double w = prof[i] - local_min;
    wsum += w;
    tsum += w * static_cast<double>(i);
  }
  return wsum > 0.0 ? tsum / wsum : static_cast<double>(peak);
}

double ac_rms(const Signal& ch) {
  if (ch.empty()) return 0.0;
  double mean = 0.0;
  for (const double v : ch) mean += v;
  mean /= static_cast<double>(ch.size());
  double acc = 0.0;
  for (const double v : ch) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(ch.size()));
}

}  // namespace

void DriftMonitorConfig::validate() const {
  if (sample_rate <= 0.0)
    throw std::invalid_argument("DriftMonitor: sample rate must be > 0");
  if (bandpass_low_hz <= 0.0 || bandpass_high_hz <= bandpass_low_hz)
    throw std::invalid_argument("DriftMonitor: bad band-pass range");
  if (profile_end_s <= profile_start_s || profile_start_s < 0.0)
    throw std::invalid_argument("DriftMonitor: bad profile window");
  if (num_noise_bands == 0)
    throw std::invalid_argument("DriftMonitor: need at least one noise band");
  if (noise_band_low_hz <= 0.0 || noise_band_high_hz <= noise_band_low_hz)
    throw std::invalid_argument("DriftMonitor: bad noise band range");
  if (noise_floor_scale_db <= 0.0 || gain_scale_db <= 0.0 ||
      profile_distance_scale <= 0.0 || onset_scale_s <= 0.0)
    throw std::invalid_argument("DriftMonitor: deviation scales must be > 0");
  if (ewma_alpha <= 0.0 || ewma_alpha > 1.0)
    throw std::invalid_argument("DriftMonitor: ewma_alpha must be in (0, 1]");
  if (cusum_slack < 0.0)
    throw std::invalid_argument("DriftMonitor: cusum_slack must be >= 0");
  if (suspect_threshold <= 0.0 || confirm_threshold < suspect_threshold)
    throw std::invalid_argument(
        "DriftMonitor: need 0 < suspect_threshold <= confirm_threshold");
  if (min_observations == 0)
    throw std::invalid_argument("DriftMonitor: min_observations must be >= 1");
}

const char* to_string(DriftVerdict v) {
  switch (v) {
    case DriftVerdict::kNone: return "none";
    case DriftVerdict::kSuspected: return "suspected";
    case DriftVerdict::kConfirmed: return "confirmed";
  }
  return "?";
}

const char* DriftReport::dominant() const {
  const DriftStatistic* stats[] = {&noise_floor, &channel_gains,
                                   &clutter_profile, &onset_delay};
  const DriftStatistic* best = nullptr;
  for (const DriftStatistic* s : stats)
    if (s->evaluated && (best == nullptr || s->cusum > best->cusum)) best = s;
  return best != nullptr ? best->name : "";
}

std::string DriftReport::describe() const {
  std::ostringstream os;
  if (!reference_set) return "drift: no reference (cold start)";
  os << "drift: " << to_string(verdict);
  if (verdict != DriftVerdict::kNone) os << " (dominant: " << dominant() << ")";
  if (occupied) os << " [occupied capture: clutter statistics skipped]";
  const DriftStatistic* stats[] = {&noise_floor, &channel_gains,
                                   &clutter_profile, &onset_delay};
  for (const DriftStatistic* s : stats) {
    os << "\n  " << s->name << ": ";
    if (!s->evaluated) {
      os << "not evaluated";
      continue;
    }
    os << "dev " << s->deviation << ", ewma " << s->ewma << ", cusum "
       << s->cusum << " -> " << to_string(s->verdict);
  }
  return os.str();
}

DriftMonitor::DriftMonitor(DriftMonitorConfig config)
    : config_(config),
      bandpass_(echoimage::dsp::butterworth_bandpass(
          config_.bandpass_order, config_.bandpass_low_hz,
          config_.bandpass_high_hz, config_.sample_rate)),
      chirp_template_(
          echoimage::dsp::Chirp(config_.chirp).sample(config_.sample_rate)) {
  config_.validate();
}

BackgroundReference DriftMonitor::make_reference(
    const std::vector<MultiChannelSignal>& beeps,
    const MultiChannelSignal& noise_only) const {
  BackgroundReference ref;

  // Clutter-gate profile: each channel is first averaged coherently across
  // beeps — clutter echoes are phase-locked to the playback while the
  // reverb tail and ambient noise are independent realizations, so the
  // diffuse floor drops ~sqrt(beeps) and the room landmarks stand proud.
  // Envelopes are then averaged across channels (incoherently: each mic
  // sees the same wall at a different delay). Per-channel, no beamforming —
  // the room response is wanted from all directions, not just the beam.
  const std::size_t num_channels =
      beeps.empty() ? 0 : beeps.front().num_channels();
  Signal env;
  std::size_t used = 0;
  for (std::size_t c = 0; c < num_channels; ++c) {
    Signal avg;
    std::size_t stacked = 0;
    for (const MultiChannelSignal& beep : beeps) {
      if (c >= beep.num_channels()) continue;
      const Signal& ch = beep.channels[c];
      if (avg.empty()) avg.assign(ch.size(), 0.0);
      const std::size_t n = std::min(avg.size(), ch.size());
      for (std::size_t i = 0; i < n; ++i) avg[i] += ch[i];
      ++stacked;
    }
    if (stacked == 0) continue;
    for (double& v : avg) v /= static_cast<double>(stacked);
    const Signal filtered = bandpass_.filtfilt(avg);
    // Chain gain (speaker x microphone) from the in-band beep average:
    // the chirp and its echoes dominate the bandpassed RMS, and coherent
    // averaging has already pushed the ambient down, so an ambient-floor
    // ramp does not masquerade as gain drift here (deriving gains from the
    // noise gap instead would confound exactly those two).
    ref.channel_rms.push_back(ac_rms(filtered));
    const Signal e = echoimage::dsp::matched_filter_envelope(
        echoimage::dsp::analytic_signal(filtered), chirp_template_);
    if (env.empty()) env.assign(e.size(), 0.0);
    const std::size_t n = std::min(env.size(), e.size());
    for (std::size_t i = 0; i < n; ++i) env[i] += e[i];
    ++used;
  }
  if (used > 0)
    for (double& v : env) v /= static_cast<double>(used);

  if (!env.empty()) {
    const std::size_t direct_end = std::min(
        env.size(),
        std::max<std::size_t>(1, echoimage::dsp::seconds_to_samples(
                                     config_.direct_search_window_s,
                                     config_.sample_rate)));
    std::size_t tau1 = 0;
    for (std::size_t i = 1; i < direct_end; ++i)
      if (env[i] > env[tau1]) tau1 = i;
    ref.direct_delay_s =
        echoimage::dsp::samples_to_seconds(tau1, config_.sample_rate);

    const std::size_t lo = echoimage::dsp::seconds_to_samples(
        config_.profile_start_s, config_.sample_rate);
    const std::size_t hi = std::min(
        env.size(), echoimage::dsp::seconds_to_samples(config_.profile_end_s,
                                                       config_.sample_rate));
    if (lo < hi) {
      ref.clutter_profile = echoimage::dsp::moving_average(
          std::span<const double>(env.data() + lo, hi - lo),
          config_.profile_smooth_samples);

      // Onset of the strongest clutter echo, refined to sub-sample
      // precision. Used as the lever arm when converting an align_profiles
      // time scale into an onset shift in seconds.
      const Signal& prof = ref.clutter_profile;
      std::size_t peak = 0;
      for (std::size_t i = 1; i < prof.size(); ++i)
        if (prof[i] > prof[peak]) peak = i;
      const std::size_t hw = std::max<std::size_t>(
          1, echoimage::dsp::seconds_to_samples(0.001, config_.sample_rate));
      const double centroid = refine_peak(prof, peak, hw);
      ref.echo_onset_s =
          (static_cast<double>(lo) + centroid) / config_.sample_rate;
      ref.valid = true;
    }
  }

  // Noise-gap statistics: per-channel AC RMS and a geometrically banded
  // power spectrum averaged over channels.
  if (noise_only.num_channels() > 0 && noise_only.length() > 0) {
    std::vector<double> band_power(config_.num_noise_bands, 0.0);
    std::vector<std::size_t> band_bins(config_.num_noise_bands, 0);
    const double log_span =
        std::log(config_.noise_band_high_hz / config_.noise_band_low_hz);
    for (const Signal& ch : noise_only.channels) {
      Signal ac = ch;
      double mean = 0.0;
      for (const double v : ac) mean += v;
      mean /= static_cast<double>(ac.size());
      for (double& v : ac) v -= mean;
      const echoimage::dsp::ComplexSignal spec = echoimage::dsp::fft_real(ac);
      for (std::size_t k = 1; k <= spec.size() / 2; ++k) {
        const double f = echoimage::dsp::bin_frequency(k, spec.size(),
                                                       config_.sample_rate);
        if (f < config_.noise_band_low_hz || f >= config_.noise_band_high_hz)
          continue;
        const double frac = std::log(f / config_.noise_band_low_hz) / log_span;
        const std::size_t b = std::min(
            config_.num_noise_bands - 1,
            static_cast<std::size_t>(frac *
                                     static_cast<double>(config_.num_noise_bands)));
        band_power[b] += std::norm(spec[k]);
        ++band_bins[b];
      }
    }
    ref.noise_band_db.reserve(config_.num_noise_bands);
    for (std::size_t b = 0; b < config_.num_noise_bands; ++b) {
      const double p = band_bins[b] > 0
                           ? band_power[b] / static_cast<double>(band_bins[b])
                           : 0.0;
      ref.noise_band_db.push_back(10.0 * std::log10(p + kTinyPower));
    }
  }
  return ref;
}

DriftMonitor::ProfileAlignment DriftMonitor::align_profiles(
    const Signal& reference, const Signal& live) const {
  ProfileAlignment out;
  if (reference.empty() || live.empty()) return out;
  const double lo = static_cast<double>(echoimage::dsp::seconds_to_samples(
      config_.profile_start_s, config_.sample_rate));

  // Mean-removed correlation of live against the reference warped by time
  // scale s: live index i sits at absolute sample lo + i and is compared
  // with the reference at absolute sample s * (lo + i) (linear interp).
  const auto warped_corr = [&](double s) {
    double sa = 0.0, sb = 0.0, saa = 0.0, sbb = 0.0, sab = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      const double rj = s * (lo + static_cast<double>(i)) - lo;
      if (rj < 0.0) continue;
      const auto j = static_cast<std::size_t>(rj);
      if (j + 1 >= reference.size()) break;
      const double frac = rj - static_cast<double>(j);
      const double rv = reference[j] * (1.0 - frac) + reference[j + 1] * frac;
      const double lv = live[i];
      sa += rv;
      sb += lv;
      saa += rv * rv;
      sbb += lv * lv;
      sab += rv * lv;
      ++n;
    }
    if (n < 16) return -1.0;
    const double nd = static_cast<double>(n);
    const double cov = sab - sa * sb / nd;
    const double va = saa - sa * sa / nd;
    const double vb = sbb - sb * sb / nd;
    if (va <= 0.0 || vb <= 0.0) return -1.0;
    return cov / std::sqrt(va * vb);
  };

  // +-7% covers the full credible speed-of-sound correction (6%) with a
  // margin so the divergence gate sees the boundary, not a clamp.
  constexpr double kSpan = 0.07;
  constexpr double kStep = 0.002;
  double best_s = 1.0, best_c = -2.0;
  for (double s = 1.0 - kSpan; s <= 1.0 + kSpan + 1e-12; s += kStep) {
    const double c = warped_corr(s);
    if (c > best_c) {
      best_c = c;
      best_s = s;
    }
  }
  // Parabolic refinement of the correlation-vs-scale curve around the best
  // grid point (vertex of the fit through the three neighbouring samples).
  const double c0 = warped_corr(best_s - kStep);
  const double c2 = warped_corr(best_s + kStep);
  if (c0 > -1.0 && c2 > -1.0 && best_c > -1.0) {
    const double denom = c0 - 2.0 * best_c + c2;
    if (std::abs(denom) > 1e-12) {
      const double delta = 0.5 * (c0 - c2) / denom;
      if (std::abs(delta) <= 1.0) best_s += delta * kStep;
    }
  }
  out.time_scale = best_s;
  out.correlation = best_c;
  return out;
}

void DriftMonitor::set_reference(BackgroundReference reference) {
  reference_ = std::move(reference);
  reset();
}

void DriftMonitor::set_reference(const std::vector<MultiChannelSignal>& beeps,
                                 const MultiChannelSignal& noise_only) {
  set_reference(make_reference(beeps, noise_only));
}

void DriftMonitor::reset() {
  noise_floor_ = Detector{};
  channel_gains_ = Detector{};
  clutter_profile_ = Detector{};
  onset_delay_ = Detector{};
}

void DriftMonitor::score(Detector& det, DriftStatistic& stat,
                         double deviation) const {
  ++det.observations;
  det.ewma = det.observations == 1
                 ? deviation
                 : (1.0 - config_.ewma_alpha) * det.ewma +
                       config_.ewma_alpha * deviation;
  det.cusum = std::max(0.0, det.cusum + deviation - config_.cusum_slack);
  stat.evaluated = true;
  stat.deviation = deviation;
  stat.ewma = det.ewma;
  stat.cusum = det.cusum;
  if (det.cusum >= config_.confirm_threshold &&
      det.observations >= config_.min_observations)
    stat.verdict = DriftVerdict::kConfirmed;
  else if (stat.cusum >= config_.suspect_threshold)
    stat.verdict = DriftVerdict::kSuspected;
}

DriftReport DriftMonitor::observe(const std::vector<MultiChannelSignal>& beeps,
                                  const MultiChannelSignal& noise_only,
                                  bool occupied) {
  DriftReport rep;
  rep.occupied = occupied;
  if (!reference_.valid) return rep;  // cold start: nothing to compare with
  rep.reference_set = true;

  const BackgroundReference live = make_reference(beeps, noise_only);

  // Noise-floor band spectrum: mean absolute band-power shift. Rises when
  // the ambient climbs *or* when every microphone's gain moves together —
  // the two are indistinguishable from the noise gap alone.
  if (!reference_.noise_band_db.empty() &&
      live.noise_band_db.size() == reference_.noise_band_db.size()) {
    double shift = 0.0;
    for (std::size_t b = 0; b < live.noise_band_db.size(); ++b)
      shift += std::abs(live.noise_band_db[b] - reference_.noise_band_db[b]);
    shift /= static_cast<double>(live.noise_band_db.size());
    score(noise_floor_, rep.noise_floor, shift / config_.noise_floor_scale_db);
  }

  // Per-channel gains: worst inter-channel log-RMS imbalance relative to
  // the reference, common mode removed (that belongs to the noise floor).
  if (!reference_.channel_rms.empty() &&
      live.channel_rms.size() == reference_.channel_rms.size()) {
    std::vector<double> log_gain;
    log_gain.reserve(live.channel_rms.size());
    double mean = 0.0;
    for (std::size_t c = 0; c < live.channel_rms.size(); ++c) {
      const double lr = live.channel_rms[c];
      const double rr = reference_.channel_rms[c];
      const double g =
          lr > 0.0 && rr > 0.0 ? 20.0 * std::log10(lr / rr) : 0.0;
      log_gain.push_back(g);
      mean += g;
    }
    mean /= static_cast<double>(log_gain.size());
    double worst = 0.0;
    for (const double g : log_gain)
      worst = std::max(worst, std::abs(g - mean));
    score(channel_gains_, rep.channel_gains, worst / config_.gain_scale_db);
  }

  // Clutter statistics only run on empty-room captures: a body in the
  // frame is signal, not background, and must not be allowed to look like
  // (or mask) drift.
  if (!occupied && live.valid && !reference_.clutter_profile.empty()) {
    // One alignment feeds both clutter statistics. Scoring the correlation
    // at the *best* time scale makes the shape statistic insensitive to a
    // pure temperature change (which only slides the profile) — that
    // belongs to the onset statistic below, which measures the slide.
    const ProfileAlignment align =
        align_profiles(reference_.clutter_profile, live.clutter_profile);
    score(clutter_profile_, rep.clutter_profile,
          (1.0 - align.correlation) / config_.profile_distance_scale);

    // Implied shift of the self-echo onset: tau = L / c for the fixed
    // room geometry, so a time scale s moves a landmark at ref_rel to
    // ref_rel / s.
    const double ref_rel = reference_.relative_onset_s();
    if (ref_rel > 0.0 && align.correlation > 0.0)
      score(onset_delay_, rep.onset_delay,
            ref_rel * std::abs(1.0 - 1.0 / align.time_scale) /
                config_.onset_scale_s);
  }

  const DriftStatistic* stats[] = {&rep.noise_floor, &rep.channel_gains,
                                   &rep.clutter_profile, &rep.onset_delay};
  for (const DriftStatistic* s : stats)
    if (s->evaluated && static_cast<int>(s->verdict) >
                            static_cast<int>(rep.verdict))
      rep.verdict = s->verdict;
  return rep;
}

void RecalibrationConfig::validate() const {
  if (max_probe_attempts == 0 || min_empty_probes == 0)
    throw std::invalid_argument(
        "Recalibration: probe counts must be positive");
  if (min_empty_probes > max_probe_attempts)
    throw std::invalid_argument(
        "Recalibration: min_empty_probes must be <= max_probe_attempts");
  if (max_speed_fraction_change <= 0.0 || max_speed_fraction_change >= 1.0)
    throw std::invalid_argument(
        "Recalibration: max_speed_fraction_change must be in (0, 1)");
  if (max_gain_correction <= 1.0)
    throw std::invalid_argument(
        "Recalibration: max_gain_correction must be > 1");
  if (min_profile_correlation < -1.0 || min_profile_correlation > 1.0)
    throw std::invalid_argument(
        "Recalibration: min_profile_correlation must be in [-1, 1]");
}

const char* to_string(RecalibrationOutcome o) {
  switch (o) {
    case RecalibrationOutcome::kRecalibrated: return "recalibrated";
    case RecalibrationOutcome::kNoProbeSource: return "no probe source";
    case RecalibrationOutcome::kNoEmptyRoom: return "no empty-room probes";
    case RecalibrationOutcome::kDiverged: return "diverged";
  }
  return "?";
}

std::string DriftCorrections::describe() const {
  if (!active) return "corrections: none";
  std::ostringstream os;
  os << "corrections: speed of sound " << speed_of_sound << " m/s (implied "
     << temperature_c << " C), channel gains:";
  for (const double g : channel_gains) os << " " << g;
  if (channel_gains.empty()) os << " unchanged";
  return os.str();
}

DriftManager::DriftManager(const EchoImagePipeline& base_pipeline,
                           DriftMonitorConfig monitor_config,
                           RecalibrationConfig recalibration_config)
    : base_(&base_pipeline),
      recalibration_(recalibration_config),
      monitor_(monitor_config) {
  recalibration_.validate();
  const std::shared_ptr<const obs::Observability>& obs =
      base_pipeline.observability();
  if (obs == nullptr) return;
  tracer_ = obs::Observability::tracer_of(obs.get());
  observations_counter_ = &obs->metrics().counter("drift.observations");
  quarantines_counter_ = &obs->metrics().counter("drift.quarantines");
  recalibrations_counter_ = &obs->metrics().counter("drift.recalibrations");
  recalibration_failures_counter_ =
      &obs->metrics().counter("drift.recalibration_failures");
}

DriftManager::DriftManager(const EchoImagePipeline& base_pipeline)
    : DriftManager(base_pipeline,
                   make_drift_monitor_config(base_pipeline.config())) {}

void DriftManager::set_reference(const std::vector<MultiChannelSignal>& beeps,
                                 const MultiChannelSignal& noise_only) {
  BackgroundReference ref = monitor_.make_reference(beeps, noise_only);
  if (!ref.valid)
    throw std::invalid_argument(
        "DriftManager: reference capture yielded no background profile");
  enrollment_ = ref;
  monitor_.set_reference(std::move(ref));
}

void DriftManager::set_probe_source(CaptureSource source) {
  probe_source_ = std::move(source);
}

void DriftManager::correct(std::vector<MultiChannelSignal>& beeps,
                           MultiChannelSignal& noise_only) const {
  if (!corrections_.active || corrections_.channel_gains.empty()) return;
  const std::vector<double>& g = corrections_.channel_gains;
  for (MultiChannelSignal& beep : beeps)
    for (std::size_t c = 0; c < std::min(beep.num_channels(), g.size()); ++c)
      for (double& v : beep.channels[c]) v *= g[c];
  for (std::size_t c = 0;
       c < std::min(noise_only.num_channels(), g.size()); ++c)
    for (double& v : noise_only.channels[c]) v *= g[c];
}

DriftReport DriftManager::observe(const std::vector<MultiChannelSignal>& beeps,
                                  const MultiChannelSignal& noise_only,
                                  bool occupied) {
  EI_SPAN(tracer_, "drift.observe");
  if (observations_counter_ != nullptr) observations_counter_->add();
  last_report_ = monitor_.observe(beeps, noise_only, occupied);
  if (last_report_.verdict == DriftVerdict::kConfirmed && !quarantined_) {
    quarantined_ = true;
    if (quarantines_counter_ != nullptr) quarantines_counter_->add();
  }
  return last_report_;
}

DriftReport DriftManager::background_scan() {
  EI_SPAN(tracer_, "drift.background_scan");
  if (!probe_source_ || !monitor_.has_reference()) return DriftReport{};
  const CaptureAttempt probe = probe_source_(probes_drawn_++);
  std::vector<MultiChannelSignal> beeps = probe.beeps;
  MultiChannelSignal noise = probe.noise_only;
  correct(beeps, noise);
  const ProcessedBeeps p = pipeline().process(beeps, noise);
  if (!p.gate_passed()) return DriftReport{};  // broken capture, not drift
  return observe(probe.beeps, probe.noise_only, p.distance.valid);
}

RecalibrationOutcome DriftManager::recalibrate() {
  EI_SPAN(tracer_, "drift.recalibrate");
  const RecalibrationOutcome outcome = recalibrate_impl();
  if (outcome == RecalibrationOutcome::kRecalibrated) {
    if (recalibrations_counter_ != nullptr) recalibrations_counter_->add();
  } else if (recalibration_failures_counter_ != nullptr) {
    recalibration_failures_counter_->add();
  }
  return outcome;
}

RecalibrationOutcome DriftManager::recalibrate_impl() {
  if (!probe_source_) return RecalibrationOutcome::kNoProbeSource;
  if (!enrollment_.valid) return RecalibrationOutcome::kNoEmptyRoom;

  // Pool probes the *base* pipeline confirms are empty-room: the health
  // gate must pass (a dead channel is not background) and the distance
  // estimator must find nobody (a body echo would contaminate both the
  // noise statistics and the clutter profile).
  std::vector<MultiChannelSignal> pooled_beeps;
  MultiChannelSignal pooled_noise;
  std::size_t empties = 0;
  for (std::size_t attempt = 0; attempt < recalibration_.max_probe_attempts &&
                                empties < recalibration_.min_empty_probes;
       ++attempt) {
    const CaptureAttempt probe = probe_source_(probes_drawn_++);
    const ProcessedBeeps p = base_->process(probe.beeps, probe.noise_only);
    if (!p.gate_passed()) continue;
    if (p.distance.valid) continue;  // someone is standing in the frame
    pooled_beeps.insert(pooled_beeps.end(), probe.beeps.begin(),
                        probe.beeps.end());
    if (pooled_noise.num_channels() == 0) {
      pooled_noise = probe.noise_only;
    } else if (probe.noise_only.num_channels() ==
               pooled_noise.num_channels()) {
      for (std::size_t c = 0; c < pooled_noise.num_channels(); ++c)
        pooled_noise.channels[c].insert(pooled_noise.channels[c].end(),
                                        probe.noise_only.channels[c].begin(),
                                        probe.noise_only.channels[c].end());
    }
    ++empties;
  }
  if (empties < recalibration_.min_empty_probes)
    return RecalibrationOutcome::kNoEmptyRoom;

  const BackgroundReference fresh =
      monitor_.make_reference(pooled_beeps, pooled_noise);
  if (!fresh.valid) return RecalibrationOutcome::kNoEmptyRoom;

  // Corrections are always derived against the immutable *enrollment*
  // reference — repeated recalibrations replace each other instead of
  // compounding.
  DriftCorrections next;
  if (!enrollment_.channel_rms.empty() &&
      fresh.channel_rms.size() == enrollment_.channel_rms.size()) {
    next.channel_gains.reserve(fresh.channel_rms.size());
    for (std::size_t c = 0; c < fresh.channel_rms.size(); ++c) {
      if (fresh.channel_rms[c] <= 0.0 || enrollment_.channel_rms[c] <= 0.0)
        return RecalibrationOutcome::kDiverged;
      const double g = enrollment_.channel_rms[c] / fresh.channel_rms[c];
      if (g > recalibration_.max_gain_correction ||
          g < 1.0 / recalibration_.max_gain_correction)
        return RecalibrationOutcome::kDiverged;
      next.channel_gains.push_back(g);
    }
  }

  // If the room changed beyond recognition, the time-scale estimate is
  // meaningless — refuse to converge rather than install a garbage speed
  // of sound. The correlation is taken at the *best* warp so a large but
  // legitimate temperature swing does not read as an unrecognizable room.
  const DriftMonitor::ProfileAlignment align = monitor_.align_profiles(
      enrollment_.clutter_profile, fresh.clutter_profile);
  if (align.correlation < recalibration_.min_profile_correlation)
    return RecalibrationOutcome::kDiverged;

  // Temperature from the profile time scale: the clutter geometry is
  // fixed, every echo obeys tau = L / c, and align_profiles measured
  // live(t) ~ enroll(s * t), i.e. c_live ~ s * c_enroll.
  double speed = base_->config().speed_of_sound.value();
  {
    const double corrected = speed * align.time_scale;
    if (std::abs(corrected / speed - 1.0) >
        recalibration_.max_speed_fraction_change)
      return RecalibrationOutcome::kDiverged;
    speed = corrected;
  }
  next.speed_of_sound = speed;
  next.temperature_c =
      echoimage::array::temperature_for_speed_of_sound(
          units::MetersPerSecond{speed})
          .value();
  next.active = true;

  SystemConfig config = base_->config();
  config.speed_of_sound = units::MetersPerSecond{speed};
  corrected_ =
      std::make_unique<EchoImagePipeline>(config, base_->geometry());
  corrections_ = std::move(next);
  monitor_.set_reference(fresh);  // future drift is relative to *this* room
  quarantined_ = false;
  ++recalibrations_;
  return RecalibrationOutcome::kRecalibrated;
}

DriftMonitorConfig make_drift_monitor_config(const SystemConfig& system) {
  DriftMonitorConfig config;
  config.sample_rate = system.sample_rate;
  config.chirp = system.chirp;
  config.bandpass_low_hz = system.distance.bandpass_low_hz;
  config.bandpass_high_hz = system.distance.bandpass_high_hz;
  config.bandpass_order = system.distance.bandpass_order;
  return config;
}

}  // namespace echoimage::core
