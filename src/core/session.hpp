// Continuous authentication session monitor.
//
// The paper authenticates once per safety-critical command; a natural
// deployment extension keeps a *session* alive while the authenticated
// user remains in front of the device, re-probing with beeps every few
// seconds. This monitor turns the per-beep AuthDecision stream into a
// debounced session state with hysteresis: brief mis-reads neither unlock
// the device for a stranger nor lock out a fidgeting owner.
#pragma once

#include <cstddef>
#include <deque>

#include "core/authenticator.hpp"

namespace echoimage::core {

struct SessionMonitorConfig {
  /// Sliding window of recent beep decisions considered.
  std::size_t window = 6;
  /// Accepted beeps (agreeing on one user) within the window required to
  /// unlock.
  std::size_t unlock_accepts = 4;
  /// Consecutive non-matching beeps (rejections or another user) that end
  /// an authenticated session.
  std::size_t lock_streak = 3;
  /// Consecutive *abstained* beeps that end an authenticated session.
  /// Individually an abstention is neutral — a broken capture says nothing
  /// about the speaker — but a device that has been blind for this many
  /// probes in a row no longer has evidence the owner is still there, and
  /// the session must not outlive its evidence. 0 disables the lockout
  /// (the pre-drift behaviour: a session could ride out arbitrarily long
  /// blindness). The default comfortably exceeds the supervisor's retry
  /// budget so transient faults never end a session.
  std::size_t max_abstain_streak = 16;

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;
};

class SessionMonitor {
 public:
  enum class State { kLocked, kAuthenticated };

  explicit SessionMonitor(SessionMonitorConfig config = {});

  [[nodiscard]] State state() const { return state_; }
  /// The session owner's user id, or -1 while locked.
  [[nodiscard]] int active_user() const {
    return state_ == State::kAuthenticated ? active_user_ : -1;
  }
  [[nodiscard]] const SessionMonitorConfig& config() const { return config_; }

  /// Feed one per-beep decision; returns the state after the update.
  /// Abstained decisions (health-gate failures, drift quarantine) are
  /// individually neutral: they neither advance an unlock nor count toward
  /// a mismatch lock. But `max_abstain_streak` consecutive abstentions end
  /// an authenticated session — sustained blindness is not evidence the
  /// owner stayed. Backend-side abstentions (AbstainReason kOverload /
  /// kDeadline / kStorage) are fully neutral: the device was not blind,
  /// the server shed the request or could not reach the enrollment
  /// template, so they do not advance the staleness streak either (an
  /// overloaded backend or a quarantined shard must not end healthy
  /// sessions).
  State update(const AuthDecision& decision);

  /// Drop all history and lock.
  void reset();

  /// Total state transitions (for telemetry/tests).
  [[nodiscard]] std::size_t unlock_count() const { return unlocks_; }
  [[nodiscard]] std::size_t lock_count() const { return locks_; }
  /// Backend load-shed decisions observed (telemetry: how much of this
  /// session's probe stream the server refused to look at).
  [[nodiscard]] std::size_t shed_abstain_count() const {
    return shed_abstains_;
  }

 private:
  SessionMonitorConfig config_;
  State state_ = State::kLocked;
  int active_user_ = -1;
  // Bounded by config_.window (echolint R5: the one sanctioned deque).
  std::deque<int> recent_;  ///< user ids; -1 = rejected beep
  std::size_t mismatch_streak_ = 0;
  std::size_t abstain_streak_ = 0;
  std::size_t unlocks_ = 0;
  std::size_t locks_ = 0;
  std::size_t shed_abstains_ = 0;
};

}  // namespace echoimage::core
