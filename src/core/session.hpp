// Continuous authentication session monitor.
//
// The paper authenticates once per safety-critical command; a natural
// deployment extension keeps a *session* alive while the authenticated
// user remains in front of the device, re-probing with beeps every few
// seconds. This monitor turns the per-beep AuthDecision stream into a
// debounced session state with hysteresis: brief mis-reads neither unlock
// the device for a stranger nor lock out a fidgeting owner.
#pragma once

#include <cstddef>
#include <deque>

#include "core/authenticator.hpp"

namespace echoimage::core {

struct SessionMonitorConfig {
  /// Sliding window of recent beep decisions considered.
  std::size_t window = 6;
  /// Accepted beeps (agreeing on one user) within the window required to
  /// unlock.
  std::size_t unlock_accepts = 4;
  /// Consecutive non-matching beeps (rejections or another user) that end
  /// an authenticated session.
  std::size_t lock_streak = 3;

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;
};

class SessionMonitor {
 public:
  enum class State { kLocked, kAuthenticated };

  explicit SessionMonitor(SessionMonitorConfig config = {});

  [[nodiscard]] State state() const { return state_; }
  /// The session owner's user id, or -1 while locked.
  [[nodiscard]] int active_user() const {
    return state_ == State::kAuthenticated ? active_user_ : -1;
  }
  [[nodiscard]] const SessionMonitorConfig& config() const { return config_; }

  /// Feed one per-beep decision; returns the state after the update.
  /// Abstained decisions (health-gate failures) are neutral: they neither
  /// advance an unlock nor count toward a lock.
  State update(const AuthDecision& decision);

  /// Drop all history and lock.
  void reset();

  /// Total state transitions (for telemetry/tests).
  [[nodiscard]] std::size_t unlock_count() const { return unlocks_; }
  [[nodiscard]] std::size_t lock_count() const { return locks_; }

 private:
  SessionMonitorConfig config_;
  State state_ = State::kLocked;
  int active_user_ = -1;
  std::deque<int> recent_;  ///< user ids; -1 = rejected beep
  std::size_t mismatch_streak_ = 0;
  std::size_t unlocks_ = 0;
  std::size_t locks_ = 0;
};

}  // namespace echoimage::core
