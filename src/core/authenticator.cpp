#include "core/authenticator.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "ml/serialize.hpp"

namespace echoimage::core {

Authenticator Authenticator::train(const std::vector<EnrolledUser>& users,
                                   const AuthenticatorConfig& config) {
  if (users.empty())
    throw std::invalid_argument("Authenticator: no enrolled users");
  std::vector<std::vector<double>> all;
  std::vector<int> labels;
  for (const EnrolledUser& u : users) {
    if (u.features.empty())
      throw std::invalid_argument("Authenticator: user with no features");
    for (const auto& f : u.features) {
      all.push_back(f);
      labels.push_back(u.user_id);
    }
  }

  Authenticator model;
  model.num_users_ = users.size();
  model.single_user_id_ = users.front().user_id;
  model.require_consistency_ = config.require_consistency;
  model.scaler_.fit(all);
  const std::vector<std::vector<double>> scaled =
      model.scaler_.transform_batch(all);

  echoimage::ml::KernelParams kernel = config.kernel;
  if (kernel.type == echoimage::ml::KernelType::kRbf && kernel.gamma <= 0.0)
    kernel.gamma =
        config.gamma_scale * echoimage::ml::rbf_gamma_median(scaled);

  // One SVDD per user. Enrollment is split into SVDD-fit and threshold-
  // calibration parts (every k-th sample held out, spreading the hold-out
  // across stances); the raw kernel-sphere radius is badly scaled in high
  // dimensions, so each accept threshold is set from that user's held-out
  // distances instead.
  const double calib_frac =
      std::clamp(config.calibration_fraction, 0.0, 0.5);
  for (const EnrolledUser& u : users) {
    const std::vector<std::vector<double>> user_scaled =
        model.scaler_.transform_batch(u.features);
    std::vector<std::vector<double>> fit_set;
    std::vector<std::vector<double>> calib_set;
    if (!u.calibration_features.empty()) {
      fit_set = user_scaled;
      calib_set = model.scaler_.transform_batch(u.calibration_features);
    } else if (calib_frac > 0.0 && user_scaled.size() >= 8) {
      const std::size_t stride =
          std::max<std::size_t>(2, static_cast<std::size_t>(
                                       std::lround(1.0 / calib_frac)));
      for (std::size_t i = 0; i < user_scaled.size(); ++i)
        ((i % stride == stride - 1) ? calib_set : fit_set)
            .push_back(user_scaled[i]);
    } else {
      fit_set = user_scaled;
    }
    model.gates_.push_back(
        echoimage::ml::Svdd::train(fit_set, kernel, config.svdd));

    std::vector<double> calib_d2;
    for (const auto& x : (calib_set.empty() ? fit_set : calib_set))
      calib_d2.push_back(model.gates_.back().distance_sq(x));
    std::sort(calib_d2.begin(), calib_d2.end());
    const double q95 = calib_d2[std::min(
        calib_d2.size() - 1,
        static_cast<std::size_t>(0.95 *
                                 static_cast<double>(calib_d2.size())))];
    model.accept_thresholds_.push_back(config.accept_slack * q95);
    model.gate_user_ids_.push_back(u.user_id);
  }

  if (model.num_users_ > 1)
    model.identifier_ = echoimage::ml::MultiClassSvm::train(scaled, labels,
                                                            kernel, config.svm);
  return model;
}

AuthDecision Authenticator::authenticate(
    const std::vector<double>& feature) const {
  if (num_users_ == 0 || gates_.empty())
    throw std::logic_error("Authenticator: not trained");
  const std::vector<double> x = scaler_.transform(feature);
  AuthDecision d;
  // Score: best calibrated-threshold margin over users' balls, normalized
  // per ball (positive accepts).
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_gate = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const double thr = std::max(accept_thresholds_[i], 1e-12);
    const double margin = 1.0 - gates_[i].distance_sq(x) / thr;
    if (margin > best) {
      best = margin;
      best_gate = i;
    }
  }
  d.svdd_score = best;
  d.accepted = d.svdd_score >= 0.0;
  if (!d.accepted) return d;  // outcome stays kRejected
  d.outcome = AuthOutcome::kAccepted;
  d.user_id = num_users_ > 1 ? identifier_.predict(x) : single_user_id_;
  // Cascade consistency: the winning one-class ball and the SVM must name
  // the same user, otherwise the sample is between identities — a spoofer
  // signature.
  if (require_consistency_ && num_users_ > 1 &&
      gate_user_ids_[best_gate] != d.user_id) {
    d.accepted = false;
    d.user_id = -1;
    d.outcome = AuthOutcome::kRejected;
  }
  return d;
}

const char* to_string(AuthOutcome outcome) {
  switch (outcome) {
    case AuthOutcome::kAccepted: return "accepted";
    case AuthOutcome::kRejected: return "rejected";
    case AuthOutcome::kAbstained: return "abstained";
  }
  return "?";
}

const char* to_string(AbstainReason reason) {
  switch (reason) {
    case AbstainReason::kNone: return "none";
    case AbstainReason::kCapture: return "capture";
    case AbstainReason::kDrift: return "drift";
    case AbstainReason::kOverload: return "overload";
    case AbstainReason::kDeadline: return "deadline";
    case AbstainReason::kStorage: return "storage";
  }
  return "?";
}

void Authenticator::save(std::ostream& os) const {
  using namespace echoimage::ml;
  write_tag(os, "echoimage_authenticator_v1");
  write_size(os, num_users_);
  os << single_user_id_ << '\n';
  write_size(os, require_consistency_ ? 1 : 0);
  echoimage::ml::save(os, scaler_);
  write_size(os, gates_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    os << gate_user_ids_[i] << '\n';
    write_double(os, accept_thresholds_[i]);
    echoimage::ml::save(os, gates_[i]);
  }
  write_size(os, num_users_ > 1 ? 1 : 0);
  if (num_users_ > 1) echoimage::ml::save(os, identifier_);
}

Authenticator Authenticator::load(std::istream& is) {
  using namespace echoimage::ml;
  expect_tag(is, "echoimage_authenticator_v1");
  Authenticator a;
  a.num_users_ = read_size(is);
  if (!(is >> a.single_user_id_))
    throw std::runtime_error("authenticator: missing single user id");
  a.require_consistency_ = read_size(is) != 0;
  a.scaler_ = load_scaler(is);
  const std::size_t n_gates = read_size(is);
  for (std::size_t i = 0; i < n_gates; ++i) {
    int id = 0;
    if (!(is >> id))
      throw std::runtime_error("authenticator: missing gate user id");
    a.gate_user_ids_.push_back(id);
    a.accept_thresholds_.push_back(read_double(is));
    a.gates_.push_back(load_svdd(is));
  }
  if (read_size(is) != 0) a.identifier_ = load_multiclass_svm(is);
  if (a.num_users_ > 0 && a.gates_.empty())
    throw std::runtime_error("authenticator: trained model without gates");
  return a;
}

}  // namespace echoimage::core
