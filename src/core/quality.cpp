#include "core/quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace echoimage::core {

EnrollmentQuality assess_enrollment(const EnrolledUser& user,
                                    const EnrollmentQualityConfig& config) {
  EnrollmentQuality q;
  q.sample_count = user.features.size();
  if (q.sample_count < 2) {
    q.warnings.push_back("fewer than two enrollment samples");
    return q;
  }

  // Pairwise distances over a bounded sample of pairs.
  std::vector<double> dists;
  const std::size_t n = user.features.size();
  const std::size_t max_pairs = 4000;
  const std::size_t total = n * (n - 1) / 2;
  const std::size_t stride = std::max<std::size_t>(1, total / max_pairs);
  std::size_t counter = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (counter++ % stride != 0) continue;
      double d2 = 0.0;
      const auto& a = user.features[i];
      const auto& b = user.features[j];
      const std::size_t dim = std::min(a.size(), b.size());
      for (std::size_t k = 0; k < dim; ++k) {
        const double d = a[k] - b[k];
        d2 += d * d;
      }
      dists.push_back(std::sqrt(d2));
    }
  }
  std::sort(dists.begin(), dists.end());
  q.median_pairwise_distance = dists[dists.size() / 2];
  const double q90 = dists[std::min(dists.size() - 1,
                                    static_cast<std::size_t>(
                                        0.9 * static_cast<double>(
                                                  dists.size())))];
  q.dispersion_ratio =
      q.median_pairwise_distance > 1e-30
          ? q90 / q.median_pairwise_distance
          : (q90 > 0.0 ? std::numeric_limits<double>::infinity() : 0.0);

  if (q.sample_count < config.min_samples)
    q.warnings.push_back("too few samples: collect more beeps");
  if (q.median_pairwise_distance <= 1e-12)
    q.warnings.push_back("samples are identical: sensor or replay problem");
  else if (q.dispersion_ratio < config.min_dispersion_ratio)
    q.warnings.push_back(
        "samples are near-clones: enroll across several stances/visits");
  // Outliers are judged on the most extreme pair, not the q90: a couple of
  // corrupted captures among hundreds barely move the quantiles.
  const double max_ratio = q.median_pairwise_distance > 1e-30
                               ? dists.back() / q.median_pairwise_distance
                               : 0.0;
  if (max_ratio > config.max_dispersion_ratio)
    q.warnings.push_back(
        "gross outliers present: a capture may be corrupted (interference "
        "or someone passing through)");

  q.sufficient = q.warnings.empty();
  return q;
}

}  // namespace echoimage::core
