// Data augmentation by distance re-projection (paper Sec. V-F).
//
// From the inverse-square law, an echo gathered from grid k at plane
// distance D_p would have arrived with amplitude scaled by (D_k / D'_k)^2
// had the user stood at D'_p instead (Eq. 13-15). Transforming real images
// this way synthesizes training samples at distances the user never
// actually stood at, shrinking the enrollment burden.
#pragma once

#include <memory>
#include <vector>

#include "core/imaging.hpp"

namespace echoimage::core {

class DataAugmenter {
 public:
  /// The imaging config fixes the grid geometry (x_k, z_k per pixel).
  /// `pool` (optional) parallelizes `synthesize` across target distances —
  /// typically the imager's pool, shared so enrollment never runs two
  /// worker sets; each target writes its own output slot, so synthesized
  /// images are bit-identical to the serial path for any worker count.
  explicit DataAugmenter(
      ImagingConfig config,
      std::shared_ptr<echoimage::runtime::ThreadPool> pool = nullptr);

  /// Re-project one image from plane distance `from_m` to `to_m` (Eq. 15).
  [[nodiscard]] Matrix2D transform(const Matrix2D& image, double from_m,
                                   double to_m) const;

  /// Per-band re-projection (Eq. 15 applies to every spectral band alike).
  [[nodiscard]] AcousticImage transform(const AcousticImage& image,
                                        double from_m, double to_m) const;

  /// Synthesize one image per target distance.
  [[nodiscard]] std::vector<Matrix2D> synthesize(
      const Matrix2D& image, double from_m,
      const std::vector<double>& target_distances_m) const;

 private:
  ImagingConfig config_;
  std::shared_ptr<echoimage::runtime::ThreadPool> pool_;
};

}  // namespace echoimage::core
