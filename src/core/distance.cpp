#include "core/distance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/butterworth.hpp"
#include "dsp/hilbert.hpp"
#include "dsp/matched_filter.hpp"

namespace echoimage::core {

using echoimage::array::NarrowbandBeamformer;
using echoimage::dsp::ComplexSignal;

DistanceEstimator::DistanceEstimator(DistanceEstimatorConfig config,
                                     ArrayGeometry geometry)
    : config_(std::move(config)),
      geometry_(std::move(geometry)),
      bandpass_filter_(echoimage::dsp::butterworth_bandpass(
          config_.bandpass_order, config_.bandpass_low_hz,
          config_.bandpass_high_hz, config_.sample_rate)),
      chirp_template_(
          echoimage::dsp::Chirp(config_.chirp).sample(config_.sample_rate)) {
  if (config_.mode == SteeringMode::kSingleMic &&
      config_.single_mic_index >= geometry_.num_mics())
    throw std::invalid_argument("DistanceEstimator: bad single_mic_index");
}

MultiChannelSignal DistanceEstimator::bandpass(
    const MultiChannelSignal& capture) const {
  MultiChannelSignal out;
  out.channels.reserve(capture.num_channels());
  for (const Signal& ch : capture.channels)
    out.channels.push_back(bandpass_filter_.filtfilt(ch));
  return out;
}

Signal DistanceEstimator::beep_envelope(
    const MultiChannelSignal& beep, const MultiChannelSignal& noise_only,
    const echoimage::array::ChannelMask& active_mask) const {
  const MultiChannelSignal filtered = bandpass(beep);

  ComplexSignal steered;
  if (config_.mode == SteeringMode::kSingleMic) {
    // When the configured microphone itself is masked out, fall back to
    // the first surviving one rather than listening to a dead channel.
    std::size_t mic = config_.single_mic_index;
    if (!active_mask.empty() && !active_mask[mic]) {
      mic = 0;
      while (mic < active_mask.size() && !active_mask[mic]) ++mic;
      if (mic >= filtered.num_channels())
        throw std::invalid_argument(
            "DistanceEstimator: mask leaves no channel");
    }
    steered = echoimage::dsp::analytic_signal(filtered.channels[mic]);
  } else {
    // Noise covariance from the separate noise-only capture when provided
    // (the paper's rho_n); spatially white otherwise. Full-size — the
    // beamformer reduces it to the masked subarray.
    const bool have_noise =
        noise_only.num_channels() == filtered.num_channels() &&
        noise_only.length() > 0;
    const echoimage::array::CMatrix cov =
        have_noise
            ? echoimage::array::noise_covariance_of(bandpass(noise_only))
            : echoimage::array::white_noise_covariance(geometry_.num_mics());
    const NarrowbandBeamformer bf(filtered, config_.sample_rate,
                                  config_.chirp.center_frequency(),
                                  geometry_, cov, config_.speed_of_sound,
                                  active_mask);
    steered = config_.mode == SteeringMode::kMvdr
                  ? bf.steer(config_.steer)
                  : bf.steer_das(config_.steer);
  }

  Signal env = echoimage::dsp::matched_filter_envelope(steered,
                                                       chirp_template_);
  return echoimage::dsp::moving_average(env, config_.envelope_smooth_samples);
}

void DistanceEstimator::attach_observability(
    std::shared_ptr<const obs::Observability> obs) {
  obs_ = std::move(obs);
  valid_counter_ = nullptr;
  invalid_counter_ = nullptr;
  distance_hist_ = nullptr;
  if (obs_ == nullptr) return;
  valid_counter_ = &obs_->metrics().counter("distance.valid");
  invalid_counter_ = &obs_->metrics().counter("distance.invalid");
  // Estimated user distance in meters; observations are deterministic for
  // a seeded scenario, so the histogram is part of the golden report.
  distance_hist_ = &obs_->metrics().histogram(
      "distance.user_distance_m", {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0});
}

DistanceEstimate DistanceEstimator::estimate(
    const std::vector<MultiChannelSignal>& beeps,
    const MultiChannelSignal& noise_only,
    const echoimage::array::ChannelMask& active_mask) const {
  EI_SPAN(obs::Observability::tracer_of(obs_.get()), "distance.estimate");
  const DistanceEstimate out = estimate_impl(beeps, noise_only, active_mask);
  if (out.valid) {
    if (valid_counter_ != nullptr) valid_counter_->add();
    if (distance_hist_ != nullptr) distance_hist_->observe(out.user_distance_m);
  } else if (invalid_counter_ != nullptr) {
    invalid_counter_->add();
  }
  return out;
}

DistanceEstimate DistanceEstimator::estimate_impl(
    const std::vector<MultiChannelSignal>& beeps,
    const MultiChannelSignal& noise_only,
    const echoimage::array::ChannelMask& active_mask) const {
  if (beeps.empty())
    throw std::invalid_argument("DistanceEstimator: no beeps");

  DistanceEstimate out;
  // E(t) = (1/L) sum_l |E_l(t)|^2 (Eq. 10).
  Signal e;
  for (const MultiChannelSignal& beep : beeps) {
    const Signal el = beep_envelope(beep, noise_only, active_mask);
    if (e.empty()) e.assign(el.size(), 0.0);
    for (std::size_t i = 0; i < std::min(e.size(), el.size()); ++i)
      e[i] += el[i] * el[i];
  }
  const double inv_l = 1.0 / static_cast<double>(beeps.size());
  for (double& v : e) v *= inv_l;
  out.averaged_envelope = e;

  const std::size_t min_sep = std::max<std::size_t>(
      1, echoimage::dsp::seconds_to_samples(config_.peak_min_separation_s,
                                            config_.sample_rate));

  // tau_1: the maximum of E(t) within the first millisecond — the direct
  // speaker->mic sound arrives within centimeters of flight, so searching
  // only there keeps a strong body echo from being mistaken for it (paper:
  // "the first local maximum point tau_1 ... corresponds to the chirp
  // signal traveled directly from the speaker").
  const std::size_t direct_end_search = std::min(
      e.size(), std::max<std::size_t>(1, echoimage::dsp::seconds_to_samples(
                                             config_.direct_search_window_s,
                                             config_.sample_rate)));
  std::size_t tau1 = 0;
  for (std::size_t i = 1; i < direct_end_search; ++i)
    if (e[i] > e[tau1]) tau1 = i;
  out.tau_direct_s =
      echoimage::dsp::samples_to_seconds(tau1, config_.sample_rate);

  // Chirp period: config_.chirp_period_s after tau_1; echo period: the next
  // echo_period_s. Peaks are thresholded relative to the echo window's own
  // maximum (the direct path would otherwise mask every echo).
  const std::size_t chirp_end =
      tau1 + echoimage::dsp::seconds_to_samples(
                 config_.chirp_period_s + config_.echo_guard_s,
                 config_.sample_rate);
  const std::size_t echo_end = std::min(
      e.size(),
      chirp_end + echoimage::dsp::seconds_to_samples(config_.echo_period_s,
                                                     config_.sample_rate));
  if (chirp_end >= e.size()) return out;
  const Signal window = echoimage::dsp::moving_average(
      std::span<const double>(e.data() + chirp_end, echo_end - chirp_end),
      config_.echo_window_smooth_samples);
  std::vector<echoimage::dsp::Peak> window_peaks =
      echoimage::dsp::find_peaks_relative(window, min_sep,
                                          config_.peak_relative_threshold);
  out.peaks.push_back(echoimage::dsp::Peak{tau1, e[tau1]});
  const std::size_t edge_guard = echoimage::dsp::seconds_to_samples(
      0.0004, config_.sample_rate);
  for (echoimage::dsp::Peak& p : window_peaks) {
    // A "peak" hugging the window edge is the decaying direct-path skirt
    // (E is even higher just before the window), not a local maximum.
    if (p.index < edge_guard) continue;
    p.index += chirp_end;
    out.peaks.push_back(p);
  }
  const echoimage::dsp::Peak echo =
      echoimage::dsp::largest_peak_in_range(out.peaks, chirp_end, echo_end);
  if (echo.index == static_cast<std::size_t>(-1)) return out;

  // Reject spurious detections: the echo must stand clear of the noise
  // floor, estimated as the median of the *tail half* of the window (the
  // head may contain the body echo itself).
  Signal sorted(window.begin() + static_cast<std::ptrdiff_t>(window.size() / 2),
                window.end());
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double floor = sorted[sorted.size() / 2];
  if (floor > 0.0 && echo.value < config_.min_peak_prominence * floor)
    return out;

  out.tau_echo_s =
      echoimage::dsp::samples_to_seconds(echo.index, config_.sample_rate);
  const double rel = out.tau_echo_s - out.tau_direct_s;
  out.slant_distance_m = rel * config_.speed_of_sound.value() / 2.0;
  const double projection =
      std::sin(config_.steer.phi) * std::sin(config_.steer.theta);
  out.user_distance_m = out.slant_distance_m * projection;

  // Local energy centroid around the detected body peak (floor-subtracted):
  // smoother than the raw peak yet not pulled toward other echoes in the
  // window; used as the imaging anchor.
  const std::size_t local_halfwidth = echoimage::dsp::seconds_to_samples(
      0.0012, config_.sample_rate);
  const std::size_t local_lo =
      echo.index > chirp_end + local_halfwidth
          ? echo.index - local_halfwidth - chirp_end
          : 0;
  const std::size_t local_hi = std::min(
      window.size(), echo.index + local_halfwidth + 1 - chirp_end);
  double wsum = 0.0, tsum = 0.0;
  for (std::size_t i = local_lo; i < local_hi; ++i) {
    const double w = std::max(0.0, window[i] - floor);
    wsum += w;
    tsum += w * static_cast<double>(chirp_end + i);
  }
  if (wsum > 0.0) {
    out.tau_echo_centroid_s = echoimage::dsp::samples_to_seconds(
        static_cast<std::size_t>(tsum / wsum), config_.sample_rate);
    out.user_distance_centroid_m =
        (out.tau_echo_centroid_s - out.tau_direct_s) *
        config_.speed_of_sound.value() / 2.0 * projection;
  } else {
    out.tau_echo_centroid_s = out.tau_echo_s;
    out.user_distance_centroid_m = out.user_distance_m;
  }

  out.valid = out.slant_distance_m > 0.0;
  return out;
}

}  // namespace echoimage::core
