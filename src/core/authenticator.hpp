// User authentication from extracted features (paper Sec. V-E, Fig. 10).
//
// Single-user mode: one SVDD trained on the lone legitimate user's features
// decides accept/reject. Multi-user mode: one SVDD trained on *all*
// legitimate users gates spoofers; samples that pass are identified by an
// n-class (one-vs-one) SVM.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "ml/scaler.hpp"
#include "ml/svdd.hpp"
#include "ml/svm.hpp"

namespace echoimage::core {

/// Enrollment data: one entry per registered user.
struct EnrolledUser {
  int user_id = 0;
  std::vector<std::vector<double>> features;
  /// Optional held-out captures (e.g. a final enrollment visit, without
  /// augmentation) used to calibrate the SVDD accept threshold. When empty,
  /// a stride hold-out of `features` is used instead — fine for plain
  /// enrollment, but biased when `features` contains augmented copies
  /// (synthesized samples sit arbitrarily close to their source, deflating
  /// hold-out distances and hence the threshold).
  std::vector<std::vector<double>> calibration_features;
};

struct AuthenticatorConfig {
  echoimage::ml::SvmTrainParams svm{};
  echoimage::ml::SvddTrainParams svdd{};
  /// Kernel for both classifiers; gamma <= 0 selects the median-pairwise-
  /// distance heuristic computed on the standardized training features.
  echoimage::ml::KernelParams kernel{echoimage::ml::KernelType::kRbf, 0.0};
  /// Multiplier on the heuristic gamma. Values < 1 widen the kernel so the
  /// SVDD decision surface stays informative at the typical distance of a
  /// *fresh* capture from the enrollment manifold (which is several times
  /// the within-enrollment spread).
  double gamma_scale = 1.0;
  /// Fraction of each user's enrollment held out to calibrate the SVDD
  /// accept threshold (the raw kernel-sphere radius is badly scaled in
  /// high-dimensional feature spaces).
  double calibration_fraction = 0.25;
  /// Accept threshold = `accept_slack` x the 95th percentile of held-out
  /// legitimate distances. >1 favors recall, <1 favors spoofer rejection.
  double accept_slack = 1.1;
  /// Require the nearest SVDD ball and the SVM identification to agree
  /// (multi-user mode): a sample that passes user i's gate but is
  /// identified as user j is suspicious and rejected.
  bool require_consistency = false;
};

/// Three-way authentication outcome. kAbstained means the attempt never
/// reached the classifier — the capture failed the channel-health gate
/// (see CaptureSupervisor) — and must count as neither an accept nor a
/// reject: a broken microphone is not evidence about who is speaking.
enum class AuthOutcome { kAccepted, kRejected, kAbstained };

[[nodiscard]] const char* to_string(AuthOutcome outcome);

/// Why an attempt abstained. The split matters downstream: capture/drift
/// abstentions mean the *device* is blind (SessionMonitor's staleness
/// lockout counts them — a session must not outlive its evidence), while
/// overload/deadline abstentions mean the *backend* shed load under
/// pressure with a perfectly good capture in hand. Load shedding says
/// nothing about whether the owner is still there, so it must neither
/// reject them nor end their session (see serve/, "abstain-on-overload").
enum class AbstainReason {
  kNone,      ///< the decision is not an abstention
  kCapture,   ///< health gate failed on every attempt (dead mics, clipping)
  kDrift,     ///< drift quarantine without successful recalibration
  kOverload,  ///< backend shed the request before processing it
  kDeadline,  ///< processed (or queued) past the latency budget
  kStorage,   ///< enrollment template unavailable (quarantined/missing shard)
};

[[nodiscard]] const char* to_string(AbstainReason reason);

/// Outcome of one authentication attempt.
struct AuthDecision {
  bool accepted = false;  ///< passed the SVDD spoofer gate
  int user_id = -1;       ///< identified registered user (when accepted)
  double svdd_score = 0.0;  ///< SVDD decision value (>= 0 accepts)
  AuthOutcome outcome = AuthOutcome::kRejected;
  /// kNone unless `outcome` is kAbstained.
  AbstainReason abstain_reason = AbstainReason::kNone;

  /// Decision for an attempt that produced no evidence: no accept, no
  /// reject, no user. SessionMonitor leaves its state untouched on these
  /// (and its staleness lockout ignores the overload/deadline reasons).
  [[nodiscard]] static AuthDecision abstain(
      AbstainReason reason = AbstainReason::kCapture) {
    AuthDecision d;
    d.outcome = AuthOutcome::kAbstained;
    d.abstain_reason = reason;
    return d;
  }

  /// True for backend-side abstentions (overload, deadline, or template
  /// storage unavailable) — the kind that must not count as device
  /// blindness. The capture was fine; the server could not answer.
  [[nodiscard]] bool shed_by_backend() const {
    return outcome == AuthOutcome::kAbstained &&
           (abstain_reason == AbstainReason::kOverload ||
            abstain_reason == AbstainReason::kDeadline ||
            abstain_reason == AbstainReason::kStorage);
  }
};

class Authenticator {
 public:
  Authenticator() = default;

  /// Train from enrolled users' features. Throws std::invalid_argument when
  /// no user or no features are given.
  static Authenticator train(const std::vector<EnrolledUser>& users,
                             const AuthenticatorConfig& config = {});

  /// Authenticate one feature vector.
  [[nodiscard]] AuthDecision authenticate(
      const std::vector<double>& feature) const;

  [[nodiscard]] std::size_t num_users() const { return num_users_; }
  [[nodiscard]] bool is_multi_user() const { return num_users_ > 1; }

  /// Persist the trained model (scaler + per-user SVDD gates + SVM) so an
  /// enrollment database survives restarts. `load` throws
  /// std::runtime_error on malformed input.
  void save(std::ostream& os) const;
  [[nodiscard]] static Authenticator load(std::istream& is);

 private:
  std::size_t num_users_ = 0;
  int single_user_id_ = -1;
  echoimage::ml::StandardScaler scaler_;
  /// One SVDD per registered user (multi-modal domain description): a
  /// sample passes the spoofer gate when it falls inside *some* user's
  /// calibrated ball. A single ball over all users would also enclose the
  /// inter-user gaps where spoofers live.
  std::vector<echoimage::ml::Svdd> gates_;
  std::vector<double> accept_thresholds_;  ///< calibrated dist^2 bounds
  std::vector<int> gate_user_ids_;         ///< user per gate (train order)
  bool require_consistency_ = true;
  echoimage::ml::MultiClassSvm identifier_;  ///< trained only when n > 1
};

}  // namespace echoimage::core
