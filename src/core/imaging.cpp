#include "core/imaging.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "array/steering.hpp"
#include "dsp/butterworth.hpp"
#include "dsp/hilbert.hpp"
#include "dsp/matched_filter.hpp"
#include "runtime/parallel_for.hpp"

namespace echoimage::core {

using echoimage::array::Direction;
using echoimage::array::NarrowbandBeamformer;

namespace {

// Grid center in array coordinates: columns span x (lateral), rows span z
// (vertical, row 0 on top), the plane sits at y = D_p.
echoimage::array::Vec3 grid_center(const ImagingConfig& config,
                                   std::size_t row, std::size_t col,
                                   double plane_distance_m) {
  const double half =
      0.5 * static_cast<double>(config.grid_size - 1) * config.grid_spacing_m;
  const double x = static_cast<double>(col) * config.grid_spacing_m - half;
  const double z = config.plane_center_z_m + half -
                   static_cast<double>(row) * config.grid_spacing_m;
  return {x, plane_distance_m, z};
}

}  // namespace

units::Meters grid_distance(const ImagingConfig& config, std::size_t row,
                            std::size_t col, units::Meters plane_distance) {
  return units::Meters{
      grid_center(config, row, col, plane_distance.value()).norm()};
}

AcousticImager::AcousticImager(ImagingConfig config, ArrayGeometry geometry)
    : config_(std::move(config)),
      geometry_(std::move(geometry)),
      bandpass_filter_(echoimage::dsp::butterworth_bandpass(
          config_.bandpass_order, config_.bandpass_low_hz,
          config_.bandpass_high_hz, config_.sample_rate)) {
  const std::size_t threads =
      echoimage::runtime::resolve_workers(config_.num_threads);
  if (threads > 1)
    pool_ = std::make_shared<echoimage::runtime::ThreadPool>(threads);
  if (config_.use_weight_cache) {
    echoimage::array::WeightCacheConfig cache_cfg;
    cache_cfg.capacity = config_.weight_cache_capacity;
    cache_cfg.distance_quantum = config_.weight_cache_quantum;
    weight_cache_ = std::make_shared<echoimage::array::WeightCache>(cache_cfg);
  }
  if (config_.grid_size == 0)
    throw std::invalid_argument("AcousticImager: grid_size must be positive");
  if (config_.grid_spacing_m <= 0.0)
    throw std::invalid_argument("AcousticImager: grid spacing must be > 0");
  if (config_.num_subbands == 0)
    throw std::invalid_argument("AcousticImager: need at least one subband");
  // Subband filters for frequency compounding, plus the matched-filter
  // template each band compresses against.
  const echoimage::dsp::Signal full_template =
      echoimage::dsp::Chirp(config_.chirp).sample(config_.sample_rate);
  const double lo = config_.bandpass_low_hz;
  const double width = (config_.bandpass_high_hz - config_.bandpass_low_hz) /
                       static_cast<double>(config_.num_subbands);
  for (std::size_t b = 0; b < config_.num_subbands; ++b) {
    const double b_lo = lo + static_cast<double>(b) * width;
    const double b_hi = b_lo + width;
    subband_centers_.push_back(0.5 * (b_lo + b_hi));
    if (config_.num_subbands > 1) {
      subband_filters_.push_back(echoimage::dsp::butterworth_bandpass(
          2, b_lo, b_hi, config_.sample_rate));
      subband_templates_.push_back(
          subband_filters_.back().filtfilt(full_template));
    } else {
      subband_templates_.push_back(full_template);
    }
  }
}

void AcousticImager::attach_observability(
    std::shared_ptr<const obs::Observability> obs) {
  obs_ = std::move(obs);
  images_counter_ = nullptr;
  bands_counter_ = nullptr;
  if (obs_ == nullptr) return;
  images_counter_ = &obs_->metrics().counter("imaging.images");
  bands_counter_ = &obs_->metrics().counter("imaging.bands");
  if (weight_cache_ != nullptr) weight_cache_->attach_metrics(obs_->metrics());
}

void AcousticImager::prepare(const MultiChannelSignal& beep,
                             const MultiChannelSignal& noise_only,
                             double tau_direct_s,
                             MultiChannelSignal& filtered,
                             MultiChannelSignal& noise_f,
                             bool& have_noise) const {
  EI_SPAN(obs::Observability::tracer_of(obs_.get()), "imaging.prepare");
  // Band-pass all channels to the probing band, lockstepped across
  // channels (bit-identical to per-channel filtfilt).
  filtered.channels = bandpass_filter_.filtfilt_multi(beep.channels);

  // Self-interference removal: zero the direct speaker->mic chirp region
  // (it is ~50 dB above body echoes and its analytic-signal tails would
  // otherwise smear across the echo window).
  if (config_.suppress_direct) {
    const std::size_t direct_end = echoimage::dsp::seconds_to_samples(
        tau_direct_s + config_.chirp.duration.value() + config_.direct_guard_s,
        config_.sample_rate);
    for (auto& ch : filtered.channels) {
      const std::size_t n = std::min(direct_end, ch.size());
      std::fill(ch.begin(), ch.begin() + static_cast<std::ptrdiff_t>(n), 0.0);
    }
  }

  have_noise = noise_only.num_channels() == filtered.num_channels() &&
               noise_only.length() > 0;
  noise_f.channels.clear();
  if (have_noise)
    noise_f.channels = bandpass_filter_.filtfilt_multi(noise_only.channels);
}

void AcousticImager::accumulate_band(
    std::size_t band, const MultiChannelSignal& filtered,
    const MultiChannelSignal& noise_f, bool have_noise,
    double plane_distance_m, double tau_direct_s, double tau_echo_s,
    const echoimage::array::ChannelMask& active_mask, Matrix2D& image) const {
  const obs::Tracer* const tracer = obs::Observability::tracer_of(obs_.get());
  EI_SPAN(tracer, "imaging.band", band);
  if (bands_counter_ != nullptr) bands_counter_->add();
  const double gate_extra = config_.chirp.duration.value();  // echo smear

  // Subband isolation (skipped when only one band is configured).
  const MultiChannelSignal* band_signal = &filtered;
  MultiChannelSignal band_filtered;
  echoimage::array::CMatrix cov =
      echoimage::array::white_noise_covariance(filtered.num_channels());
  if (config_.num_subbands > 1) {
    const auto& f = subband_filters_[band];
    band_filtered.channels = f.filtfilt_multi(filtered.channels);
    band_signal = &band_filtered;
    if (have_noise) {
      MultiChannelSignal band_noise;
      band_noise.channels = f.filtfilt_multi(noise_f.channels);
      cov = echoimage::array::noise_covariance_of(band_noise);
    }
  } else if (have_noise) {
    cov = echoimage::array::noise_covariance_of(noise_f);
  }

  // Per-channel complex signals: analytic, then (optionally) pulse-
  // compressed against this band's chirp template. Matched filtering
  // commutes with the linear beamformer, so compressing per channel once
  // is equivalent to compressing every steered output.
  std::vector<echoimage::dsp::ComplexSignal> channels;
  channels.reserve(band_signal->num_channels());
  for (const auto& ch : band_signal->channels) {
    echoimage::dsp::ComplexSignal a = echoimage::dsp::analytic_signal(ch);
    if (config_.pulse_compression)
      a = echoimage::dsp::matched_filter_complex(a, subband_templates_[band]);
    channels.push_back(std::move(a));
  }
  // The fingerprint is taken before the beamformer's internal diagonal
  // loading; it only needs to identify the noise field, not mirror it.
  const std::uint64_t cov_fp = echoimage::array::WeightCache::fingerprint(cov);
  const NarrowbandBeamformer bf(std::move(channels), config_.sample_rate,
                                units::Hertz{subband_centers_[band]}, geometry_,
                                cov, config_.speed_of_sound, active_mask,
                                config_.numeric_lane);

  echoimage::array::WeightCache* const cache = weight_cache_.get();
  echoimage::array::WeightKey key;
  if (cache != nullptr) {
    key.band = static_cast<std::uint32_t>(band);
    key.distance_q = cache->quantize_distance(units::Meters{plane_distance_m});
    key.speed_bits = std::bit_cast<std::uint64_t>(config_.speed_of_sound.value());
    key.mask_bits = echoimage::array::WeightCache::mask_bits(
        active_mask, filtered.num_channels());
    key.cov_fingerprint = cov_fp;
    key.mvdr = config_.use_mvdr;
    key.lane = static_cast<std::uint8_t>(config_.numeric_lane);
  }

  // Per-grid loop: every grid writes its own pixel and bands accumulate in
  // a fixed outer order, so the image is bit-identical for any worker
  // count (and with the weight cache on or off — a hit replays the exact
  // bits a recompute would produce).
  struct PixelScratch {
    std::vector<echoimage::dsp::Complex> steering;
    std::vector<echoimage::dsp::Complex> weights;
  };
  echoimage::runtime::ScratchArena<PixelScratch> arena(
      pool_ != nullptr ? pool_->num_workers() : 1);
  const double mix = std::clamp(config_.incoherent_mix, 0.0, 1.0);
  const double speed = config_.speed_of_sound.value();
  std::vector<double>& pixels = image.data();

  const auto grid_energy = [&](std::size_t k, std::size_t worker) {
    const std::size_t row = k / config_.grid_size;
    const std::size_t col = k % config_.grid_size;
    const echoimage::array::Vec3 p =
        grid_center(config_, row, col, plane_distance_m);
    const double dk = p.norm();
    // Echoes from grid k: the compressed pulse peaks at the onset
    // 2 Dk/c; without compression the raw chirp occupies a further
    // chirp-length of samples. With echo anchoring the gate tracks the
    // measured echo time, cancelling constant detection bias.
    const bool anchored = config_.anchor_to_echo && tau_echo_s >= 0.0;
    const double onset =
        anchored ? tau_echo_s + 2.0 * (dk - plane_distance_m) / speed
                 : tau_direct_s + 2.0 * dk / speed;
    const double t0 = onset - config_.gate_halfwidth_s;
    const double t1 = onset + config_.gate_halfwidth_s +
                      (config_.pulse_compression ? 0.0 : gate_extra);
    const std::size_t first = echoimage::dsp::seconds_to_samples(
        std::max(0.0, t0), config_.sample_rate);
    const std::size_t last = echoimage::dsp::seconds_to_samples(
        std::max(0.0, t1), config_.sample_rate);
    const std::size_t count = last > first ? last - first : 0;
    double e = 0.0;
    if (mix < 1.0) {
      PixelScratch& s = arena.local(worker);
      const Direction dir = echoimage::array::direction_to_point(p);
      if (cache != nullptr) {
        echoimage::array::WeightKey k_key = key;
        k_key.grid_index = static_cast<std::uint32_t>(k);
        if (!cache->lookup(k_key, s.weights)) {
          bf.compute_weights(dir, config_.use_mvdr, s.steering, s.weights);
          cache->insert(k_key, s.weights);
        }
      } else {
        bf.compute_weights(dir, config_.use_mvdr, s.steering, s.weights);
      }
      e += (1.0 - mix) * bf.steered_energy(s.weights, first, count);
    }
    if (mix > 0.0) e += mix * bf.incoherent_energy(first, count);
    pixels[k] += e;
  };
  // One task per grid row — a fixed grain, so the recorded
  // `imaging.grid_chunk[row]` spans are identical for every worker count
  // (the determinism contract in obs/trace.hpp); pixels still write
  // disjoint slots, so the image itself stays bit-identical too.
  EI_SPAN_NAMED(sweep_span, tracer, "imaging.grid_sweep", band);
  const obs::SpanHandle sweep = sweep_span.handle();
  const auto row_task = [&](std::size_t row, std::size_t worker) {
    EI_SPAN(tracer, "imaging.grid_chunk", row, sweep);
    const std::size_t base = row * config_.grid_size;
    for (std::size_t col = 0; col < config_.grid_size; ++col)
      grid_energy(base + col, worker);
  };
  if (pool_ != nullptr) {
    echoimage::runtime::parallel_for(*pool_, config_.grid_size, row_task);
  } else {
    for (std::size_t row = 0; row < config_.grid_size; ++row) row_task(row, 0);
  }
}

Matrix2D AcousticImager::construct(
    const MultiChannelSignal& beep, units::Meters plane_distance,
    double tau_direct_s, const MultiChannelSignal& noise_only,
    double tau_echo_s, const echoimage::array::ChannelMask& active_mask) const {
  if (plane_distance.value() <= 0.0)
    throw std::invalid_argument("AcousticImager: plane distance must be > 0");
  EI_SPAN(obs::Observability::tracer_of(obs_.get()), "imaging.construct");
  if (images_counter_ != nullptr) images_counter_->add();
  MultiChannelSignal filtered, noise_f;
  bool have_noise = false;
  prepare(beep, noise_only, tau_direct_s, filtered, noise_f, have_noise);

  Matrix2D image(config_.grid_size, config_.grid_size);
  for (std::size_t band = 0; band < config_.num_subbands; ++band)
    accumulate_band(band, filtered, noise_f, have_noise, plane_distance.value(),
                    tau_direct_s, tau_echo_s, active_mask, image);
  // L2 norm of the gated segment(s): sqrt of the (compounded) energy.
  for (double& v : image.data()) v = std::sqrt(v);
  return image;
}

std::vector<Matrix2D> AcousticImager::construct_bands(
    const MultiChannelSignal& beep, units::Meters plane_distance,
    double tau_direct_s, const MultiChannelSignal& noise_only,
    double tau_echo_s, const echoimage::array::ChannelMask& active_mask) const {
  if (plane_distance.value() <= 0.0)
    throw std::invalid_argument("AcousticImager: plane distance must be > 0");
  EI_SPAN(obs::Observability::tracer_of(obs_.get()), "imaging.construct");
  if (images_counter_ != nullptr) images_counter_->add();
  MultiChannelSignal filtered, noise_f;
  bool have_noise = false;
  prepare(beep, noise_only, tau_direct_s, filtered, noise_f, have_noise);

  std::vector<Matrix2D> bands;
  bands.reserve(config_.num_subbands);
  for (std::size_t band = 0; band < config_.num_subbands; ++band) {
    Matrix2D image(config_.grid_size, config_.grid_size);
    accumulate_band(band, filtered, noise_f, have_noise, plane_distance.value(),
                    tau_direct_s, tau_echo_s, active_mask, image);
    for (double& v : image.data()) v = std::sqrt(v);
    bands.push_back(std::move(image));
  }
  return bands;
}

}  // namespace echoimage::core
