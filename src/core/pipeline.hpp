// End-to-end EchoImage pipeline (paper Fig. 3): captures -> distance
// estimation -> acoustic images -> CNN features -> SVDD + SVM
// authentication, with optional distance-re-projection data augmentation
// at enrollment.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/augment.hpp"
#include "core/authenticator.hpp"
#include "core/distance.hpp"
#include "core/health.hpp"
#include "core/imaging.hpp"
#include "ml/cnn.hpp"
#include "obs/observability.hpp"

namespace echoimage::core {

/// Everything that defines a deployed EchoImage instance.
struct SystemConfig {
  double sample_rate = 48000.0;
  /// Assumed speed of sound, propagated into distance estimation and
  /// imaging by `harmonize` — the single knob a recalibrator turns when
  /// the room temperature has moved the real value (see core/drift.hpp).
  units::MetersPerSecond speed_of_sound = echoimage::array::kSpeedOfSoundMps;
  /// Worker threads for the parallel stages (imaging grids, augmentation
  /// fan-out, experiment session fan-out). 1 = the historical serial
  /// behavior, bit for bit; 0 = one worker per hardware thread. Results
  /// are deterministic for every value (see DESIGN.md, "Threading model").
  std::size_t num_threads = 1;
  echoimage::dsp::ChirpParams chirp{};
  DistanceEstimatorConfig distance{};
  ImagingConfig imaging{};
  echoimage::ml::VggishFeatureExtractor::Config extractor{};
  AuthenticatorConfig authenticator{};
  /// Distances synthesized per training image when augmentation is on.
  std::vector<double> augmentation_distances_m = {0.6, 0.8, 0.9, 1.0,
                                                  1.1, 1.2, 1.35, 1.5};
  /// Per-channel health thresholds for the capture gate.
  ChannelHealthConfig health{};
  /// Run the channel-health gate inside `process`: dead channels are
  /// masked out of beamforming/imaging and recorded in ProcessedBeeps;
  /// captures with too few healthy channels come back with
  /// CaptureVerdict::kFailed instead of garbage images. When off, the
  /// pipeline instead rejects non-finite input with an exception.
  bool health_gate = true;
  /// Metrics + tracing (src/obs). Off by default: no bundle is built and
  /// every instrumentation site in the pipeline reduces to a dead branch,
  /// so golden images stay bit-identical and throughput is unchanged.
  obs::ObservabilityConfig observability{};
  /// SIMD lane for the DSP kernels: "auto" (best supported), or one of
  /// "scalar" / "sse2" / "avx2" / "neon" to force a lane (testing and
  /// triage; must be supported on the machine). Applied process-wide when
  /// the pipeline is constructed. Every lane produces bit-identical f64
  /// results — this knob changes speed, never pixels (see DESIGN.md,
  /// "SIMD & numeric-lane model").
  std::string simd_isa = "auto";

  /// Propagate the shared fields (sample rate, chirp, band) into the
  /// sub-configs so callers only set them once.
  void harmonize();

  /// One-line-per-field human-readable summary (for logs and benches).
  [[nodiscard]] std::string describe() const;
};

/// Latency-budget probe threaded through the pipeline by the serving
/// layer: returns true once the caller's deadline has passed. The
/// pipeline polls it at stage boundaries (between per-beep images — the
/// expensive unit of work) and stops early rather than burn compute on a
/// result nobody will accept. An empty probe means "no deadline". The
/// probe must be cheap and must be monotonic (once expired, stays
/// expired); a VirtualClock-backed probe keeps the early-out bit-stable
/// in the deterministic serve mode.
using DeadlineProbe = std::function<bool()>;

/// Images + metadata produced from one batch of beeps.
struct ProcessedBeeps {
  DistanceEstimate distance;
  std::vector<AcousticImage> images;  ///< one multi-band image per beep
  /// Channel-health report of the capture (verdict kOk with no per-channel
  /// entries when the gate is disabled).
  CaptureHealth health;
  /// Channels that actually fed beamforming/imaging (all-true when the
  /// gate is disabled or every channel is healthy).
  echoimage::array::ChannelMask active_mask;
  std::size_t dropped_channels = 0;  ///< masked-out (dead) channel count
  /// True when a DeadlineProbe fired mid-run: `images` holds only the
  /// beeps finished before expiry (possibly none). The caller must treat
  /// the capture as abstained (AbstainReason::kDeadline), never as a
  /// rejection — a half-processed capture is not evidence either way.
  bool deadline_expired = false;
  /// False when the health gate condemned the capture: distance/images are
  /// absent and the caller should re-beep (see CaptureSupervisor) rather
  /// than score the attempt as a rejection.
  [[nodiscard]] bool gate_passed() const {
    return health.verdict != CaptureVerdict::kFailed;
  }
};

class EchoImagePipeline {
 public:
  explicit EchoImagePipeline(SystemConfig config,
                             echoimage::array::ArrayGeometry geometry);

  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] const echoimage::array::ArrayGeometry& geometry() const {
    return geometry_;
  }
  [[nodiscard]] const DistanceEstimator& distance_estimator() const {
    return distance_;
  }
  [[nodiscard]] const AcousticImager& imager() const { return imager_; }
  [[nodiscard]] const DataAugmenter& augmenter() const { return augmenter_; }
  [[nodiscard]] const echoimage::ml::VggishFeatureExtractor& extractor()
      const {
    return extractor_;
  }

  /// The observability bundle (null when SystemConfig::observability is
  /// off). Shared by every instrumented stage of this pipeline, so one
  /// trace/report covers the full auth path.
  [[nodiscard]] const std::shared_ptr<const obs::Observability>& observability()
      const {
    return obs_;
  }

  /// Distance estimation + per-beep image construction. Runs the channel-
  /// health gate first (see SystemConfig::health_gate): dead channels are
  /// masked out and recorded in the result; a capture with fewer than
  /// `health.min_active_channels` healthy channels returns with
  /// `gate_passed() == false` and no images. Structurally invalid input
  /// (wrong channel count, ragged/empty channels) throws
  /// std::invalid_argument with a message naming the offending beep.
  /// A non-empty `deadline` is polled between per-beep images; on expiry
  /// the result carries `deadline_expired = true` and the remaining beeps
  /// are skipped (see DeadlineProbe).
  [[nodiscard]] ProcessedBeeps process(
      const std::vector<MultiChannelSignal>& beeps,
      const MultiChannelSignal& noise_only = {},
      const DeadlineProbe& deadline = {}) const;

  /// The structural validation half of `process`, exposed for callers that
  /// want to fail fast before capture post-processing.
  void validate_capture(const std::vector<MultiChannelSignal>& beeps,
                        const MultiChannelSignal& noise_only = {}) const;

  /// CNN features of one acoustic image (per-band features concatenated).
  [[nodiscard]] std::vector<double> features(const AcousticImage& image) const;

  /// Features of a batch of images, optionally augmented with synthesized
  /// copies at the configured distances (used at enrollment).
  [[nodiscard]] std::vector<std::vector<double>> features_batch(
      const std::vector<AcousticImage>& images, double capture_distance_m,
      bool augment) const;

  /// Train the SVDD + SVM authenticator from per-user features.
  [[nodiscard]] Authenticator enroll(
      const std::vector<EnrolledUser>& users) const;

 private:
  SystemConfig config_;
  echoimage::array::ArrayGeometry geometry_;
  DistanceEstimator distance_;
  AcousticImager imager_;
  DataAugmenter augmenter_;
  echoimage::ml::VggishFeatureExtractor extractor_;
  std::shared_ptr<const obs::Observability> obs_;
  const obs::Counter* captures_counter_ = nullptr;
  const obs::Counter* gate_failed_counter_ = nullptr;
  const obs::Counter* gate_degraded_counter_ = nullptr;
  const obs::Counter* distance_invalid_counter_ = nullptr;
  const obs::Histogram* dropped_channels_hist_ = nullptr;
};

}  // namespace echoimage::core
