// End-to-end EchoImage pipeline (paper Fig. 3): captures -> distance
// estimation -> acoustic images -> CNN features -> SVDD + SVM
// authentication, with optional distance-re-projection data augmentation
// at enrollment.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/augment.hpp"
#include "core/authenticator.hpp"
#include "core/distance.hpp"
#include "core/imaging.hpp"
#include "ml/cnn.hpp"

namespace echoimage::core {

/// Everything that defines a deployed EchoImage instance.
struct SystemConfig {
  double sample_rate = 48000.0;
  echoimage::dsp::ChirpParams chirp{};
  DistanceEstimatorConfig distance{};
  ImagingConfig imaging{};
  echoimage::ml::VggishFeatureExtractor::Config extractor{};
  AuthenticatorConfig authenticator{};
  /// Distances synthesized per training image when augmentation is on.
  std::vector<double> augmentation_distances_m = {0.6, 0.8, 0.9, 1.0,
                                                  1.1, 1.2, 1.35, 1.5};

  /// Propagate the shared fields (sample rate, chirp, band) into the
  /// sub-configs so callers only set them once.
  void harmonize();

  /// One-line-per-field human-readable summary (for logs and benches).
  [[nodiscard]] std::string describe() const;
};

/// Images + metadata produced from one batch of beeps.
struct ProcessedBeeps {
  DistanceEstimate distance;
  std::vector<AcousticImage> images;  ///< one multi-band image per beep
};

class EchoImagePipeline {
 public:
  explicit EchoImagePipeline(SystemConfig config,
                             echoimage::array::ArrayGeometry geometry);

  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] const DistanceEstimator& distance_estimator() const {
    return distance_;
  }
  [[nodiscard]] const AcousticImager& imager() const { return imager_; }
  [[nodiscard]] const DataAugmenter& augmenter() const { return augmenter_; }
  [[nodiscard]] const echoimage::ml::VggishFeatureExtractor& extractor()
      const {
    return extractor_;
  }

  /// Distance estimation + per-beep image construction.
  [[nodiscard]] ProcessedBeeps process(
      const std::vector<MultiChannelSignal>& beeps,
      const MultiChannelSignal& noise_only = {}) const;

  /// CNN features of one acoustic image (per-band features concatenated).
  [[nodiscard]] std::vector<double> features(const AcousticImage& image) const;

  /// Features of a batch of images, optionally augmented with synthesized
  /// copies at the configured distances (used at enrollment).
  [[nodiscard]] std::vector<std::vector<double>> features_batch(
      const std::vector<AcousticImage>& images, double capture_distance_m,
      bool augment) const;

  /// Train the SVDD + SVM authenticator from per-user features.
  [[nodiscard]] Authenticator enroll(
      const std::vector<EnrolledUser>& users) const;

 private:
  SystemConfig config_;
  DistanceEstimator distance_;
  AcousticImager imager_;
  DataAugmenter augmenter_;
  echoimage::ml::VggishFeatureExtractor extractor_;
};

}  // namespace echoimage::core
