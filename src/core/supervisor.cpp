#include "core/supervisor.hpp"

#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/drift.hpp"

namespace echoimage::core {

namespace {

/// Deterministic jitter draw in [-1, 1] for backoff step `attempt`:
/// splitmix64-style finalizer over (seed, attempt), so the whole schedule
/// is a pure function of the config — no global RNG, replayable in tests.
double jitter_unit(std::uint64_t seed, std::uint64_t attempt) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (attempt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  const double unit = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
  return 2.0 * unit - 1.0;
}

/// Adapts a by-value CaptureSource to the shared-ownership entry points:
/// the produced capture is moved (not copied) into shared storage once.
/// The adapter holds `source` by reference — valid only for the duration
/// of the synchronous acquire/authenticate call it is passed to.
SharedCaptureSource shared_adapter(const CaptureSource& source) {
  return [&source](std::size_t attempt) {
    return std::make_shared<const CaptureAttempt>(source(attempt));
  };
}

}  // namespace

double backoff_step_s(const CaptureSupervisorConfig& config,
                      std::size_t attempt) {
  if (attempt == 0) return 0.0;
  double nominal = config.initial_backoff_s;
  for (std::size_t k = 1; k < attempt; ++k) nominal *= config.backoff_multiplier;
  return nominal * (1.0 + config.backoff_jitter *
                              jitter_unit(config.jitter_seed, attempt));
}

void CaptureSupervisorConfig::validate() const {
  if (max_attempts == 0)
    throw std::invalid_argument(
        "CaptureSupervisor: max_attempts must be positive");
  if (initial_backoff_s < 0.0)
    throw std::invalid_argument(
        "CaptureSupervisor: initial backoff must be >= 0");
  if (backoff_multiplier < 1.0)
    throw std::invalid_argument(
        "CaptureSupervisor: backoff multiplier must be >= 1");
  if (backoff_jitter < 0.0 || backoff_jitter >= 1.0)
    throw std::invalid_argument(
        "CaptureSupervisor: backoff jitter must be in [0, 1)");
}

std::string SupervisedCapture::describe() const {
  std::ostringstream os;
  os << (abstained ? "abstained" : "captured") << " after " << attempts
     << " attempt(s), backoff " << total_backoff_s << " s, verdicts:";
  for (const CaptureVerdict v : attempt_verdicts) os << " " << to_string(v);
  return os.str();
}

CaptureSupervisor::CaptureSupervisor(const EchoImagePipeline& pipeline,
                                     CaptureSupervisorConfig config)
    : pipeline_(&pipeline), config_(config) {
  config_.validate();
  const std::shared_ptr<const obs::Observability>& obs =
      pipeline.observability();
  if (obs == nullptr) return;
  tracer_ = obs::Observability::tracer_of(obs.get());
  attempts_counter_ = &obs->metrics().counter("supervisor.attempts");
  retries_counter_ = &obs->metrics().counter("supervisor.retries");
  abstains_counter_ = &obs->metrics().counter("supervisor.abstains");
  accepts_counter_ = &obs->metrics().counter("supervisor.accepts");
  rejects_counter_ = &obs->metrics().counter("supervisor.rejects");
  // Backoff the device actually waited per acquisition that retried.
  // Fleet telemetry reads the spread of this histogram to confirm the
  // seeded jitter is decorrelating re-beeps (a synchronized fleet piles
  // into one bucket).
  backoff_hist_ = &obs->metrics().histogram(
      "supervisor.backoff_s", {0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0});
}

const EchoImagePipeline& CaptureSupervisor::active_pipeline() const {
  return drift_ != nullptr ? drift_->pipeline() : *pipeline_;
}

SupervisedCapture CaptureSupervisor::acquire(
    const CaptureSource& source, const DeadlineProbe& deadline) const {
  return acquire_impl(shared_adapter(source), deadline, nullptr);
}

SupervisedCapture CaptureSupervisor::acquire(
    const SharedCaptureSource& source, const DeadlineProbe& deadline) const {
  return acquire_impl(source, deadline, nullptr);
}

SupervisedCapture CaptureSupervisor::acquire_impl(
    const SharedCaptureSource& source, const DeadlineProbe& deadline,
    std::shared_ptr<const CaptureAttempt>* last_raw) const {
  EI_SPAN(tracer_, "supervisor.acquire");
  SupervisedCapture out;
  double nominal = config_.initial_backoff_s;
  for (std::size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    EI_SPAN(tracer_, "supervisor.attempt", attempt);
    // Past the latency budget: starting (or retrying) a capture now can
    // only produce an answer nobody will accept. Abstain immediately —
    // the half-done state is reported, not scored.
    if (deadline && deadline()) {
      out.abstained = true;
      out.processed.deadline_expired = true;
      break;
    }
    if (attempt > 0) {
      if (retries_counter_ != nullptr) retries_counter_->add();
      out.total_backoff_s +=
          nominal * (1.0 + config_.backoff_jitter *
                               jitter_unit(config_.jitter_seed, attempt));
      nominal *= config_.backoff_multiplier;
    }
    std::shared_ptr<const CaptureAttempt> capture = source(attempt);
    ++out.attempts;
    if (attempts_counter_ != nullptr) attempts_counter_->add();
    if (last_raw != nullptr) *last_raw = capture;
    if (capture == nullptr || capture->beeps.empty()) {
      // Nothing was delivered (dead device, or a queued frame replayed
      // without audio): a failed attempt, not a structural error — the
      // pipeline would throw on empty input, but an absent capture says
      // nothing about who is speaking, so it rides the same retry/abstain
      // ladder as a capture the gate condemned.
      out.processed = ProcessedBeeps{};
      out.processed.health.verdict = CaptureVerdict::kFailed;
      out.attempt_verdicts.push_back(CaptureVerdict::kFailed);
      if (attempt + 1 == config_.max_attempts) out.abstained = true;
      continue;
    }
    if (drift_ != nullptr) {
      // Gain correction mutates the signals: the one place a private copy
      // of the shared capture is genuinely required.
      CaptureAttempt corrected = *capture;
      drift_->correct(corrected.beeps, corrected.noise_only);
      out.processed = active_pipeline().process(corrected.beeps,
                                                corrected.noise_only, deadline);
    } else {
      out.processed = active_pipeline().process(capture->beeps,
                                                capture->noise_only, deadline);
    }
    out.attempt_verdicts.push_back(out.processed.health.verdict);
    if (out.processed.deadline_expired) {
      out.abstained = true;
      break;
    }
    if (out.processed.gate_passed()) break;
    if (attempt + 1 == config_.max_attempts) out.abstained = true;
  }
  if (backoff_hist_ != nullptr && out.attempts > 1)
    backoff_hist_->observe(out.total_backoff_s);
  return out;
}

AuthDecision CaptureSupervisor::authenticate(const CaptureSource& source,
                                             const Authenticator& auth,
                                             const DeadlineProbe& deadline)
    const {
  return authenticate(shared_adapter(source), auth, deadline);
}

AuthDecision CaptureSupervisor::authenticate(const SharedCaptureSource& source,
                                             const Authenticator& auth,
                                             const DeadlineProbe& deadline)
    const {
  EI_SPAN(tracer_, "supervisor.authenticate");
  const AuthDecision decision = authenticate_impl(source, auth, deadline);
  switch (decision.outcome) {
    case AuthOutcome::kAccepted:
      if (accepts_counter_ != nullptr) accepts_counter_->add();
      break;
    case AuthOutcome::kRejected:
      if (rejects_counter_ != nullptr) rejects_counter_->add();
      break;
    case AuthOutcome::kAbstained:
      if (abstains_counter_ != nullptr) abstains_counter_->add();
      break;
  }
  return decision;
}

AuthDecision CaptureSupervisor::authenticate_impl(
    const SharedCaptureSource& source, const Authenticator& auth,
    const DeadlineProbe& deadline) const {
  // Non-null whenever acquire did not abstain: every attempt stores its
  // (possibly empty-substituted) capture here before processing.
  std::shared_ptr<const CaptureAttempt> raw;
  SupervisedCapture capture = acquire_impl(source, deadline, &raw);
  if (capture.abstained)
    return AuthDecision::abstain(capture.processed.deadline_expired
                                     ? AbstainReason::kDeadline
                                     : AbstainReason::kCapture);

  if (drift_ != nullptr && drift_->has_reference()) {
    // The monitor watches the *raw* capture (its reference is raw too);
    // occupancy comes from the corrected pipeline's distance estimate.
    drift_->observe(raw->beeps, raw->noise_only,
                    capture.processed.distance.valid);
    if (drift_->quarantined()) {
      if (drift_->recalibrate() != RecalibrationOutcome::kRecalibrated)
        // Stale calibration: don't reject.
        return AuthDecision::abstain(AbstainReason::kDrift);
      // Re-score this capture under the recalibrated physics.
      std::vector<MultiChannelSignal> beeps = raw->beeps;
      MultiChannelSignal noise = raw->noise_only;
      drift_->correct(beeps, noise);
      capture.processed = drift_->pipeline().process(beeps, noise, deadline);
      if (capture.processed.deadline_expired)
        return AuthDecision::abstain(AbstainReason::kDeadline);
      if (!capture.processed.gate_passed())
        return AuthDecision::abstain(AbstainReason::kCapture);
    }
  }

  const ProcessedBeeps& p = capture.processed;
  if (!p.distance.valid || p.images.empty()) {
    // The hardware is fine but no body echo was found — nobody in range.
    // That is a legitimate rejection, not an abstention.
    return AuthDecision{};
  }
  // Majority vote across the beeps of the batch; -1 collects rejections.
  std::map<int, std::size_t> votes;
  std::map<int, double> score_sums;
  for (std::size_t i = 0; i < p.images.size(); ++i) {
    EI_SPAN(tracer_, "supervisor.score", i);
    const AuthDecision d =
        auth.authenticate(active_pipeline().features(p.images[i]));
    const int id = d.accepted ? d.user_id : -1;
    ++votes[id];
    score_sums[id] += d.svdd_score;
  }
  int best_id = -1;
  std::size_t best_count = 0;
  for (const auto& [id, count] : votes) {
    // Ties break toward rejection (id -1 sorts first in the map).
    if (count > best_count) {
      best_id = id;
      best_count = count;
    }
  }
  AuthDecision out;
  out.svdd_score = score_sums[best_id] / static_cast<double>(best_count);
  out.accepted = best_id >= 0;
  out.user_id = best_id;
  out.outcome = out.accepted ? AuthOutcome::kAccepted : AuthOutcome::kRejected;
  return out;
}

}  // namespace echoimage::core
