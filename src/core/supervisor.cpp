#include "core/supervisor.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

namespace echoimage::core {

void CaptureSupervisorConfig::validate() const {
  if (max_attempts == 0)
    throw std::invalid_argument(
        "CaptureSupervisor: max_attempts must be positive");
  if (initial_backoff_s < 0.0)
    throw std::invalid_argument(
        "CaptureSupervisor: initial backoff must be >= 0");
  if (backoff_multiplier < 1.0)
    throw std::invalid_argument(
        "CaptureSupervisor: backoff multiplier must be >= 1");
}

std::string SupervisedCapture::describe() const {
  std::ostringstream os;
  os << (abstained ? "abstained" : "captured") << " after " << attempts
     << " attempt(s), backoff " << total_backoff_s << " s, verdicts:";
  for (const CaptureVerdict v : attempt_verdicts) os << " " << to_string(v);
  return os.str();
}

CaptureSupervisor::CaptureSupervisor(const EchoImagePipeline& pipeline,
                                     CaptureSupervisorConfig config)
    : pipeline_(&pipeline), config_(config) {
  config_.validate();
}

SupervisedCapture CaptureSupervisor::acquire(
    const CaptureSource& source) const {
  SupervisedCapture out;
  double backoff = config_.initial_backoff_s;
  for (std::size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      out.total_backoff_s += backoff;
      backoff *= config_.backoff_multiplier;
    }
    const CaptureAttempt capture = source(attempt);
    ++out.attempts;
    out.processed = pipeline_->process(capture.beeps, capture.noise_only);
    out.attempt_verdicts.push_back(out.processed.health.verdict);
    if (out.processed.gate_passed()) return out;
  }
  out.abstained = true;
  return out;
}

AuthDecision CaptureSupervisor::authenticate(const CaptureSource& source,
                                             const Authenticator& auth) const {
  const SupervisedCapture capture = acquire(source);
  if (capture.abstained) return AuthDecision::abstain();
  const ProcessedBeeps& p = capture.processed;
  if (!p.distance.valid || p.images.empty()) {
    // The hardware is fine but no body echo was found — nobody in range.
    // That is a legitimate rejection, not an abstention.
    return AuthDecision{};
  }
  // Majority vote across the beeps of the batch; -1 collects rejections.
  std::map<int, std::size_t> votes;
  std::map<int, double> score_sums;
  for (const AcousticImage& image : p.images) {
    const AuthDecision d = auth.authenticate(pipeline_->features(image));
    const int id = d.accepted ? d.user_id : -1;
    ++votes[id];
    score_sums[id] += d.svdd_score;
  }
  int best_id = -1;
  std::size_t best_count = 0;
  for (const auto& [id, count] : votes) {
    // Ties break toward rejection (id -1 sorts first in the map).
    if (count > best_count) {
      best_id = id;
      best_count = count;
    }
  }
  AuthDecision out;
  out.svdd_score = score_sums[best_id] / static_cast<double>(best_count);
  out.accepted = best_id >= 0;
  out.user_id = best_id;
  out.outcome = out.accepted ? AuthOutcome::kAccepted : AuthOutcome::kRejected;
  return out;
}

}  // namespace echoimage::core
