#include "core/session.hpp"

#include <map>
#include <stdexcept>

namespace echoimage::core {

void SessionMonitorConfig::validate() const {
  if (window == 0)
    throw std::invalid_argument("SessionMonitor: window must be positive");
  if (unlock_accepts == 0 || unlock_accepts > window)
    throw std::invalid_argument(
        "SessionMonitor: unlock_accepts must be in [1, window]");
  if (lock_streak == 0)
    throw std::invalid_argument(
        "SessionMonitor: lock_streak must be positive");
}

SessionMonitor::SessionMonitor(SessionMonitorConfig config)
    : config_(config) {
  config_.validate();
}

void SessionMonitor::reset() {
  state_ = State::kLocked;
  active_user_ = -1;
  recent_.clear();
  mismatch_streak_ = 0;
  abstain_streak_ = 0;
}

SessionMonitor::State SessionMonitor::update(const AuthDecision& decision) {
  // Abstentions (capture failed the health gate, or the drift monitor
  // quarantined the calibration) are not evidence about the speaker: they
  // enter no window slot, clear no streak, count toward no mismatch lock.
  // But they do count toward the staleness lockout — an authenticated
  // session through which the device has been blind `max_abstain_streak`
  // probes in a row has outlived its evidence and ends.
  //
  // Backend load-shed abstentions (overload/deadline) are exempt from the
  // lockout: the device captured perfectly well — the *server* chose not
  // to look. An overloaded fleet backend shedding for minutes must not
  // log every owner out of an otherwise healthy session; they neither
  // advance nor clear the blindness streak.
  if (decision.shed_by_backend()) {
    ++shed_abstains_;
    return state_;
  }
  if (decision.outcome == AuthOutcome::kAbstained) {
    if (state_ == State::kAuthenticated && config_.max_abstain_streak > 0 &&
        ++abstain_streak_ >= config_.max_abstain_streak) {
      state_ = State::kLocked;
      active_user_ = -1;
      mismatch_streak_ = 0;
      abstain_streak_ = 0;
      recent_.clear();
      ++locks_;
    }
    return state_;
  }
  abstain_streak_ = 0;
  const int observed = decision.accepted ? decision.user_id : -1;
  recent_.push_back(observed);
  if (recent_.size() > config_.window) recent_.pop_front();

  if (state_ == State::kAuthenticated) {
    // A beep that is rejected, or names a different user, counts against
    // the session; matching beeps clear the streak.
    if (observed == active_user_) {
      mismatch_streak_ = 0;
    } else if (++mismatch_streak_ >= config_.lock_streak) {
      state_ = State::kLocked;
      active_user_ = -1;
      mismatch_streak_ = 0;
      recent_.clear();
      ++locks_;
    }
    return state_;
  }

  // Locked: unlock when enough recent beeps agree on one user.
  std::map<int, std::size_t> votes;
  for (const int id : recent_)
    if (id >= 0) ++votes[id];
  for (const auto& [id, count] : votes) {
    if (count >= config_.unlock_accepts) {
      state_ = State::kAuthenticated;
      active_user_ = id;
      mismatch_streak_ = 0;
      ++unlocks_;
      break;
    }
  }
  return state_;
}

}  // namespace echoimage::core
