// Fault-tolerant capture supervision.
//
// A deployed smart speaker cannot assume every capture is usable: mics
// die, ADCs clip, cables pop. The supervisor wraps the pipeline's health
// gate in a bounded retry loop — when a capture fails the gate it
// schedules a re-beep after an exponentially growing backoff instead of
// scoring the attempt, and only after exhausting its retries does it give
// up with an *abstained* authentication decision (never a false reject:
// a broken microphone says nothing about who is speaking).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace echoimage::core {

class DriftManager;

struct CaptureSupervisorConfig {
  /// Total capture attempts (first try + re-beeps). Must be >= 1.
  std::size_t max_attempts = 3;
  /// Backoff before the first re-beep; grows by `backoff_multiplier` per
  /// further retry. The supervisor *schedules* rather than sleeps — the
  /// caller owns the clock (and tests stay instant).
  double initial_backoff_s = 0.25;
  double backoff_multiplier = 2.0;
  /// Deterministic jitter applied to each backoff step, as a fraction of
  /// the step in [0, 1): step k becomes nominal_k * (1 + jitter * u_k)
  /// with u_k in [-1, 1] derived from `jitter_seed` and k. Keeps a fleet
  /// of devices that faulted together from re-beeping in lockstep, while
  /// the total backoff stays inside [sum * (1 - jitter), sum * (1 + jitter)]
  /// and every run with the same seed replays exactly.
  double backoff_jitter = 0.0;
  std::uint64_t jitter_seed = 0x5EED;

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;
};

/// The jittered backoff before re-beep `attempt` (1-based: attempt 1 is
/// the first retry): nominal initial * multiplier^(attempt-1), scaled by
/// the config's seeded jitter. Exposed so schedulers above the supervisor
/// (the serve layer's device retry model) can place re-beeps on exactly
/// the schedule the supervisor would have waited — a fleet that faulted
/// together then re-beeps decorrelated by per-device seeds instead of in
/// lockstep.
[[nodiscard]] double backoff_step_s(const CaptureSupervisorConfig& config,
                                    std::size_t attempt);

/// One beep batch as delivered by the capture hardware (or a simulator).
struct CaptureAttempt {
  std::vector<MultiChannelSignal> beeps;
  MultiChannelSignal noise_only;
};

/// Produces the `attempt`-th capture (0-based); called once per try, so a
/// simulator can clear a transient fault or keep a hardware fault present.
using CaptureSource = std::function<CaptureAttempt(std::size_t attempt)>;

/// Zero-copy variant of CaptureSource: yields shared ownership of an
/// immutable capture. The supervisor reads through the pointer and copies
/// only where a mutation is genuinely required (drift gain correction). A
/// null or empty result counts as a failed attempt — it rides the same
/// retry/abstain ladder as a capture the health gate condemned, rather
/// than reaching the pipeline (which throws on structurally empty input).
/// The serving layer's hot path replays queued frames through this so
/// tens of milliseconds of multichannel audio are never deep-copied per
/// attempt.
using SharedCaptureSource =
    std::function<std::shared_ptr<const CaptureAttempt>(std::size_t attempt)>;

/// What the supervisor did for one authentication request.
struct SupervisedCapture {
  /// Result of the last attempt's pipeline run. When `abstained` is true
  /// the gate failed on every attempt and `processed.images` is empty.
  ProcessedBeeps processed;
  bool abstained = false;
  std::size_t attempts = 0;        ///< capture attempts actually made
  double total_backoff_s = 0.0;    ///< backoff the caller should have waited
  /// Health verdict of each attempt, in order (telemetry/tests).
  std::vector<CaptureVerdict> attempt_verdicts;

  [[nodiscard]] std::string describe() const;
};

class CaptureSupervisor {
 public:
  explicit CaptureSupervisor(const EchoImagePipeline& pipeline,
                             CaptureSupervisorConfig config = {});

  [[nodiscard]] const CaptureSupervisorConfig& config() const {
    return config_;
  }

  /// Acquire one usable capture: run `source`, push it through the
  /// pipeline's health gate, and re-beep (with backoff) while the gate
  /// fails and attempts remain. Degraded-but-usable captures are accepted
  /// immediately — the pipeline has already masked the bad channels.
  /// A non-empty `deadline` is polled before every attempt and threaded
  /// into the pipeline; once expired no further attempt starts and the
  /// capture comes back abstained (deadline_expired set on `processed`).
  /// The SharedCaptureSource overload is behaviorally identical but never
  /// copies the capture buffers (see SharedCaptureSource).
  [[nodiscard]] SupervisedCapture acquire(const CaptureSource& source,
                                          const DeadlineProbe& deadline = {})
      const;
  [[nodiscard]] SupervisedCapture acquire(const SharedCaptureSource& source,
                                          const DeadlineProbe& deadline = {})
      const;

  /// Full fault-tolerant authentication of one capture: acquire, then
  /// score each beep image and majority-aggregate, abstaining when the
  /// gate never passed or no valid distance was found. The SVDD score of
  /// the returned decision is the mean over the beeps that voted for the
  /// winning outcome.
  ///
  /// With a DriftManager attached the capture is also fed to the drift
  /// monitor; on confirmed drift the supervisor quarantines the decision,
  /// attempts self-recalibration, and either re-scores the capture under
  /// the corrected physics or abstains — a stale calibration must not be
  /// allowed to false-reject (see core/drift.hpp).
  ///
  /// The returned decision's `abstain_reason` records *why* when it
  /// abstains: kCapture (gate never passed), kDrift (quarantine without
  /// recalibration), or kDeadline (the `deadline` probe fired — a late
  /// answer is abstained, never returned as a reject).
  [[nodiscard]] AuthDecision authenticate(const CaptureSource& source,
                                          const Authenticator& auth,
                                          const DeadlineProbe& deadline = {})
      const;
  [[nodiscard]] AuthDecision authenticate(const SharedCaptureSource& source,
                                          const Authenticator& auth,
                                          const DeadlineProbe& deadline = {})
      const;

  /// Route captures through `drift`: gain corrections and the recalibrated
  /// pipeline are applied in acquire/authenticate, and every authenticated
  /// capture feeds the drift monitor. The manager must outlive the
  /// supervisor; it is intentionally mutable from the const entry points —
  /// drift state advances as a side effect of authentication.
  void attach_drift(DriftManager& drift) { drift_ = &drift; }
  [[nodiscard]] const DriftManager* drift() const { return drift_; }

 private:
  SupervisedCapture acquire_impl(
      const SharedCaptureSource& source, const DeadlineProbe& deadline,
      std::shared_ptr<const CaptureAttempt>* last_raw) const;
  [[nodiscard]] AuthDecision authenticate_impl(
      const SharedCaptureSource& source, const Authenticator& auth,
      const DeadlineProbe& deadline) const;
  [[nodiscard]] const EchoImagePipeline& active_pipeline() const;

  const EchoImagePipeline* pipeline_;  ///< non-owning; outlives supervisor
  CaptureSupervisorConfig config_;
  DriftManager* drift_ = nullptr;  ///< non-owning; optional
  // Observability handles resolved from the pipeline's bundle at
  // construction (all null when observability is off).
  const obs::Tracer* tracer_ = nullptr;
  const obs::Counter* attempts_counter_ = nullptr;
  const obs::Counter* retries_counter_ = nullptr;
  const obs::Counter* abstains_counter_ = nullptr;
  const obs::Counter* accepts_counter_ = nullptr;
  const obs::Counter* rejects_counter_ = nullptr;
  const obs::Histogram* backoff_hist_ = nullptr;
};

}  // namespace echoimage::core
