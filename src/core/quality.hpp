// Enrollment quality assessment.
//
// The paper notes it is "hard to tell when sufficient data has been
// collected" (Sec. V-F); this module gives the registration flow concrete
// feedback: are there enough samples, do they span more than one stance,
// and are there gross outliers (someone walked through the scene during a
// visit)?
#pragma once

#include <string>
#include <vector>

#include "core/authenticator.hpp"

namespace echoimage::core {

struct EnrollmentQualityConfig {
  std::size_t min_samples = 24;
  /// Below this ratio of q90/median pairwise distance the samples are
  /// near-clones of each other: a single stance, which generalizes badly.
  double min_dispersion_ratio = 1.5;
  /// Above this ratio the set contains gross outliers.
  double max_dispersion_ratio = 50.0;
};

struct EnrollmentQuality {
  std::size_t sample_count = 0;
  double median_pairwise_distance = 0.0;
  double dispersion_ratio = 0.0;  ///< q90 / median of pairwise distances
  bool sufficient = false;
  std::vector<std::string> warnings;
};

/// Assess one user's enrollment feature set. Never throws on poor data —
/// poor data is exactly what it reports.
[[nodiscard]] EnrollmentQuality assess_enrollment(
    const EnrolledUser& user, const EnrollmentQualityConfig& config = {});

}  // namespace echoimage::core
