// Liveness detection from breathing micro-motion.
//
// The attack bench shows that a victim-sized static prop can sometimes
// pass the one-class gate: the acoustic image checks *shape*, not *life*.
// A living chest moves a few millimeters with breathing, so across a burst
// of beeps (0.5 s apart, paper Sec. V-A) the echoes of a person fluctuate
// coherently while a mannequin's stay frozen at the noise floor. This
// detector scores that fluctuation and rejects static targets — related in
// spirit to the sonar liveness systems the paper cites ([29], Lee et al.).
#pragma once

#include <cstddef>
#include <vector>

#include "core/imaging.hpp"

namespace echoimage::core {

struct LivenessConfig {
  /// Minimum beeps needed for a decision (breathing period ~4 s, beeps
  /// 0.5 s apart: 6 beeps span most of a breath).
  std::size_t min_beeps = 4;
  /// A live target's beep-to-beep image fluctuation, normalized by image
  /// magnitude, exceeds this; static props sit near the noise floor.
  double min_relative_fluctuation = 2e-3;
};

struct LivenessResult {
  bool decided = false;  ///< false when fewer than min_beeps images given
  bool alive = false;
  /// Median relative beep-to-beep fluctuation (the decision statistic).
  double fluctuation = 0.0;
};

/// Assess liveness from the per-beep acoustic images of one burst.
[[nodiscard]] LivenessResult assess_liveness(
    const std::vector<AcousticImage>& images,
    const LivenessConfig& config = {});

}  // namespace echoimage::core
