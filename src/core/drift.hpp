// Environment-drift monitoring and self-recalibration.
//
// Rooms are not stationary: furniture gets moved, HVAC ramps the ambient
// floor, transducer gains age, and temperature changes the speed of sound
// out from under the pipeline's assumed constant. This module maintains a
// *background reference profile* captured at enrollment time — the
// clutter-gate matched-filter energy profile, the noise-floor band
// spectrum, the per-channel RMS gains, and the self-echo onset delay
// relative to the direct path — and runs EWMA/CUSUM change detection over
// live captures to produce a per-capture DriftReport with per-statistic
// attribution.
//
// On confirmed drift the DriftManager quarantines the deployment and
// attempts self-recalibration: it refreshes the background reference from
// probe captures the distance estimator confirms are empty-room, re-derives
// the speed of sound from the self-echo onset shift (temperature moved) and
// per-channel gain corrections from the noise-floor shift, and rebuilds a
// corrected pipeline. If recalibration cannot converge, the supervisor
// abstains rather than false-rejecting on a stale calibration.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/supervisor.hpp"
#include "dsp/butterworth.hpp"
#include "dsp/chirp.hpp"
#include "dsp/signal.hpp"

namespace echoimage::core {

struct DriftMonitorConfig {
  double sample_rate = 48000.0;
  echoimage::dsp::ChirpParams chirp{};
  /// Band-pass applied before matched filtering (keep equal to the
  /// pipeline's probing band; see make_drift_monitor_config).
  double bandpass_low_hz = 2000.0;
  double bandpass_high_hz = 3000.0;
  std::size_t bandpass_order = 4;

  /// Clutter-gate window (absolute capture time). Starts past the farthest
  /// operating-range body echo (1.5 m -> ~9 ms round trip) and the tail of
  /// the direct-path sidelobes so the room response is measured, not the
  /// user; ends before the capture frame runs out. Lab walls at ~3 m land
  /// near 17 ms — inside the window.
  double profile_start_s = 0.012;
  double profile_end_s = 0.030;
  std::size_t profile_smooth_samples = 33;
  /// Direct speaker->mic arrival is searched within this many seconds from
  /// the frame start (centimeters of flight).
  double direct_search_window_s = 0.001;

  /// Noise-floor spectrum: geometrically spaced bands over this range.
  std::size_t num_noise_bands = 6;
  double noise_band_low_hz = 200.0;
  double noise_band_high_hz = 8000.0;

  /// Deviation scales: raw change that counts as one detection unit.
  double noise_floor_scale_db = 2.0;  ///< mean band-power shift
  double gain_scale_db = 1.0;         ///< worst inter-channel imbalance
  /// 1 - profile correlation. Scaled so render-to-render noise (worst-case
  /// correlation ~0.6 between clean repeats at 3 beeps) stays below the
  /// CUSUM slack: the profile is a gross-change check, not a fine one.
  double profile_distance_scale = 0.9;
  double onset_scale_s = 0.0002;      ///< self-echo onset shift (~10 samples)

  /// EWMA smoothing factor for the per-statistic deviation stream.
  double ewma_alpha = 0.35;
  /// CUSUM: S <- max(0, S + deviation - slack); `slack` absorbs the
  /// render-to-render jitter so S only grows under sustained drift.
  double cusum_slack = 0.6;
  double suspect_threshold = 1.5;  ///< CUSUM level for kSuspected
  double confirm_threshold = 4.0;  ///< CUSUM level for kConfirmed
  /// A statistic cannot confirm before it has been evaluated this many
  /// times (cold-start guard: one noisy capture must not quarantine).
  std::size_t min_observations = 2;

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;
};

enum class DriftVerdict { kNone, kSuspected, kConfirmed };
[[nodiscard]] const char* to_string(DriftVerdict v);

/// Detection state of one monitored statistic after an observation.
struct DriftStatistic {
  const char* name = "";
  /// False when the statistic could not be measured on this capture (no
  /// reference yet, no noise-only segment, or the capture was occupied —
  /// clutter-profile statistics are only trusted on empty-room captures).
  bool evaluated = false;
  double deviation = 0.0;  ///< this capture's deviation, in detection units
  double ewma = 0.0;       ///< smoothed deviation
  double cusum = 0.0;      ///< CUSUM accumulator
  DriftVerdict verdict = DriftVerdict::kNone;
};

/// Per-capture drift assessment with per-statistic attribution.
struct DriftReport {
  bool reference_set = false;
  bool occupied = false;  ///< capture had a user in it (caller-supplied)
  DriftVerdict verdict = DriftVerdict::kNone;  ///< worst statistic verdict
  DriftStatistic noise_floor{"noise-floor"};  ///< noise-floor band spectrum
  DriftStatistic channel_gains{"channel-gains"};  ///< per-channel imbalance
  DriftStatistic clutter_profile{"clutter-profile"};  ///< profile shape
  DriftStatistic onset_delay{"onset-delay"};  ///< self-echo onset vs direct

  /// The evaluated statistic with the largest CUSUM ("" when none ran).
  [[nodiscard]] const char* dominant() const;
  [[nodiscard]] std::string describe() const;
};

/// Background statistics of one capture batch: the reference when taken at
/// enrollment, the live side of the comparison otherwise.
struct BackgroundReference {
  bool valid = false;
  std::vector<double> noise_band_db;  ///< per-band noise power (dB)
  /// Per-channel in-band RMS of the coherent beep average: the capture
  /// chain's gain (speaker x microphone), nearly immune to the ambient
  /// floor — which keeps an ambient ramp from reading as gain drift.
  std::vector<double> channel_rms;
  Signal clutter_profile;  ///< smoothed matched-filter energy, gate window
  double direct_delay_s = 0.0;  ///< direct speaker->mic arrival
  double echo_onset_s = 0.0;    ///< strongest clutter echo arrival (absolute)

  /// Self-echo flight time: onset relative to the direct arrival. This is
  /// the quantity temperature scales (tau = L / c for fixed geometry).
  [[nodiscard]] double relative_onset_s() const {
    return echo_onset_s - direct_delay_s;
  }
};

/// Watches live captures for drift away from a background reference.
/// Detection only — the monitor never refreshes its own reference; rebasing
/// is an explicit act of the recalibration policy (DriftManager), gated on
/// empty-room confirmation.
class DriftMonitor {
 public:
  explicit DriftMonitor(DriftMonitorConfig config = {});

  [[nodiscard]] const DriftMonitorConfig& config() const { return config_; }

  /// Background statistics of a capture batch (no detector state touched).
  [[nodiscard]] BackgroundReference make_reference(
      const std::vector<MultiChannelSignal>& beeps,
      const MultiChannelSignal& noise_only) const;

  /// Best time-axis scale mapping `live` onto `reference`:
  /// live(t) ~ reference(time_scale * t). All echo delays obey tau = L / c,
  /// so a sound-speed change scales the whole profile along the time axis
  /// and time_scale ~ c_live / c_reference (> 1 when the room warmed).
  /// Estimated by grid search + parabolic refinement of the warped
  /// correlation — using every room landmark at once where a single
  /// tracked peak is hostage to render noise. `correlation` is the
  /// mean-removed correlation achieved at the best scale.
  struct ProfileAlignment {
    double time_scale = 1.0;
    double correlation = -1.0;
  };
  [[nodiscard]] ProfileAlignment align_profiles(const Signal& reference,
                                                const Signal& live) const;

  /// Install the reference and reset all detectors.
  void set_reference(BackgroundReference reference);
  void set_reference(const std::vector<MultiChannelSignal>& beeps,
                     const MultiChannelSignal& noise_only);
  [[nodiscard]] bool has_reference() const { return reference_.valid; }
  [[nodiscard]] const BackgroundReference& reference() const {
    return reference_;
  }

  /// Score one live capture against the reference and advance the
  /// detectors. `occupied` marks captures with a user present: the
  /// clutter-profile and onset statistics are skipped for them (the body
  /// is not background), while the noise-gap statistics still run. Without
  /// a reference this is a no-op report (cold start is not drift).
  DriftReport observe(const std::vector<MultiChannelSignal>& beeps,
                      const MultiChannelSignal& noise_only, bool occupied);

  /// Clear detector state but keep the reference.
  void reset();

 private:
  struct Detector {
    double ewma = 0.0;
    double cusum = 0.0;
    std::size_t observations = 0;
  };
  void score(Detector& det, DriftStatistic& stat, double deviation) const;

  DriftMonitorConfig config_;
  echoimage::dsp::SosCascade bandpass_;
  Signal chirp_template_;
  BackgroundReference reference_;
  Detector noise_floor_;
  Detector channel_gains_;
  Detector clutter_profile_;
  Detector onset_delay_;
};

struct RecalibrationConfig {
  /// Probe captures drawn (and distance-checked) per recalibration attempt.
  std::size_t max_probe_attempts = 6;
  /// Empty-room probes required before the reference is trusted.
  std::size_t min_empty_probes = 2;
  /// Largest credible speed-of-sound correction (fraction of the base
  /// value; 0.06 covers a ~33 C swing). Beyond it the onset shift is not
  /// temperature and recalibration refuses to converge.
  double max_speed_fraction_change = 0.06;
  /// Largest credible per-channel gain correction factor; beyond it the
  /// channel is broken hardware (the health gate's job), not drift.
  double max_gain_correction = 4.0;
  /// The fresh clutter profile must still correlate at least this much
  /// with the enrollment profile, or the room changed too much for the
  /// onset ratio to mean anything.
  double min_profile_correlation = 0.35;

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;
};

/// Why a recalibration attempt did (or did not) converge.
enum class RecalibrationOutcome {
  kRecalibrated,   ///< corrected pipeline installed, quarantine lifted
  kNoProbeSource,  ///< no way to capture probes
  kNoEmptyRoom,    ///< probes kept showing an occupant or failing the gate
  kDiverged,       ///< corrections outside the credible envelope
};
[[nodiscard]] const char* to_string(RecalibrationOutcome o);

/// The corrections a successful recalibration derived.
struct DriftCorrections {
  bool active = false;
  double speed_of_sound = 0.0;  ///< corrected value fed to the pipeline
  double temperature_c = 0.0;   ///< air temperature implied by it
  std::vector<double> channel_gains;  ///< multiplied into each live channel

  [[nodiscard]] std::string describe() const;
};

/// Quarantine-then-recalibrate policy around a DriftMonitor.
///
/// Owns the relationship between three references: the *enrollment*
/// reference (immutable — corrections are always derived against it, so
/// repeated recalibrations never compound), the monitor's *detection*
/// reference (rebased to the fresh empty-room statistics after each
/// successful recalibration), and the corrected pipeline (base physics
/// with the recalibrated speed of sound).
class DriftManager {
 public:
  DriftManager(const EchoImagePipeline& base_pipeline,
               DriftMonitorConfig monitor_config,
               RecalibrationConfig recalibration_config = {});
  /// Monitor config derived from the base pipeline's SystemConfig.
  explicit DriftManager(const EchoImagePipeline& base_pipeline);

  [[nodiscard]] DriftMonitor& monitor() { return monitor_; }
  [[nodiscard]] const DriftMonitor& monitor() const { return monitor_; }

  /// Enrollment-time background capture: installs both the immutable
  /// enrollment reference and the monitor's detection reference.
  void set_reference(const std::vector<MultiChannelSignal>& beeps,
                     const MultiChannelSignal& noise_only);
  [[nodiscard]] bool has_reference() const { return enrollment_.valid; }

  /// Where recalibration probes come from (typically the same capture
  /// hardware, triggered when the device believes the room is empty).
  void set_probe_source(CaptureSource source);

  /// The pipeline downstream processing should use: the corrected one
  /// after a successful recalibration, the base one before.
  [[nodiscard]] const EchoImagePipeline& pipeline() const {
    return corrected_ != nullptr ? *corrected_ : *base_;
  }
  [[nodiscard]] const DriftCorrections& corrections() const {
    return corrections_;
  }
  /// Apply the gain corrections in place (identity before recalibration).
  void correct(std::vector<MultiChannelSignal>& beeps,
               MultiChannelSignal& noise_only) const;

  /// Confirmed drift was observed and recalibration has not succeeded yet;
  /// authentication decisions should abstain rather than trust the stale
  /// calibration.
  [[nodiscard]] bool quarantined() const { return quarantined_; }
  [[nodiscard]] std::size_t recalibration_count() const {
    return recalibrations_;
  }
  [[nodiscard]] const DriftReport& last_report() const { return last_report_; }

  /// Feed one live capture to the monitor; a confirmed verdict starts the
  /// quarantine. `occupied` should be the distance estimator's view of the
  /// (gain-corrected) capture.
  DriftReport observe(const std::vector<MultiChannelSignal>& beeps,
                      const MultiChannelSignal& noise_only, bool occupied);

  /// Idle-time heartbeat: draw one probe capture, decide occupancy with
  /// the current pipeline, and feed it to the monitor. Lets slow physical
  /// drift (temperature, clutter) be caught between authentications, when
  /// the clutter statistics can actually run. No-op report without a probe
  /// source or reference.
  DriftReport background_scan();

  /// Attempt to lift the quarantine: draw probes, keep those the distance
  /// estimator confirms are empty-room, derive corrections against the
  /// enrollment reference, rebuild the corrected pipeline, and rebase the
  /// monitor. On failure the quarantine stays (callers abstain).
  RecalibrationOutcome recalibrate();

 private:
  RecalibrationOutcome recalibrate_impl();

  const EchoImagePipeline* base_;  ///< non-owning; outlives the manager
  RecalibrationConfig recalibration_;
  DriftMonitor monitor_;
  BackgroundReference enrollment_;
  CaptureSource probe_source_;
  DriftCorrections corrections_;
  std::unique_ptr<EchoImagePipeline> corrected_;
  DriftReport last_report_;
  bool quarantined_ = false;
  std::size_t recalibrations_ = 0;
  std::size_t probes_drawn_ = 0;
  // Observability handles resolved from the base pipeline's bundle at
  // construction (all null when observability is off).
  const obs::Tracer* tracer_ = nullptr;
  const obs::Counter* observations_counter_ = nullptr;
  const obs::Counter* quarantines_counter_ = nullptr;
  const obs::Counter* recalibrations_counter_ = nullptr;
  const obs::Counter* recalibration_failures_counter_ = nullptr;
};

/// Monitor config matching a deployed system's probing parameters.
[[nodiscard]] DriftMonitorConfig make_drift_monitor_config(
    const SystemConfig& system);

}  // namespace echoimage::core
