#include "core/augment.hpp"

#include <stdexcept>

#include "runtime/parallel_for.hpp"

namespace echoimage::core {

DataAugmenter::DataAugmenter(ImagingConfig config,
                             std::shared_ptr<echoimage::runtime::ThreadPool> pool)
    : config_(std::move(config)), pool_(std::move(pool)) {}

Matrix2D DataAugmenter::transform(const Matrix2D& image, double from_m,
                                  double to_m) const {
  if (image.rows() != config_.grid_size || image.cols() != config_.grid_size)
    throw std::invalid_argument("DataAugmenter: image/grid size mismatch");
  if (from_m <= 0.0 || to_m <= 0.0)
    throw std::invalid_argument("DataAugmenter: distances must be positive");
  Matrix2D out(image.rows(), image.cols());
  for (std::size_t r = 0; r < image.rows(); ++r) {
    for (std::size_t c = 0; c < image.cols(); ++c) {
      const double dk =
          grid_distance(config_, r, c, units::Meters{from_m}).value();
      const double dk2 =
          grid_distance(config_, r, c, units::Meters{to_m}).value();
      const double scale = (dk / dk2) * (dk / dk2);  // Eq. 15
      out(r, c) = scale * image(r, c);
    }
  }
  return out;
}

AcousticImage DataAugmenter::transform(const AcousticImage& image,
                                       double from_m, double to_m) const {
  AcousticImage out;
  out.bands.reserve(image.bands.size());
  for (const Matrix2D& b : image.bands)
    out.bands.push_back(transform(b, from_m, to_m));
  return out;
}

std::vector<Matrix2D> DataAugmenter::synthesize(
    const Matrix2D& image, double from_m,
    const std::vector<double>& target_distances_m) const {
  std::vector<Matrix2D> out(target_distances_m.size());
  // Per-target fan-out: each distance fills its own slot, so the result
  // vector is identical to the serial loop for any worker count.
  const auto project = [&](std::size_t i, std::size_t) {
    out[i] = transform(image, from_m, target_distances_m[i]);
  };
  if (pool_ != nullptr) {
    echoimage::runtime::parallel_for(*pool_, target_distances_m.size(),
                                     project);
  } else {
    for (std::size_t i = 0; i < target_distances_m.size(); ++i) project(i, 0);
  }
  return out;
}

}  // namespace echoimage::core
