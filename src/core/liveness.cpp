#include "core/liveness.hpp"

#include <algorithm>
#include <cmath>

namespace echoimage::core {

namespace {

// Flatten all bands of an image into one vector.
std::vector<double> flatten(const AcousticImage& img) {
  std::vector<double> out;
  for (const auto& band : img.bands)
    out.insert(out.end(), band.data().begin(), band.data().end());
  return out;
}

double l2(const std::vector<double>& v) {
  double s = 0.0;
  for (const double x : v) s += x * x;
  return std::sqrt(s);
}

}  // namespace

LivenessResult assess_liveness(const std::vector<AcousticImage>& images,
                               const LivenessConfig& config) {
  LivenessResult r;
  if (images.size() < config.min_beeps || images.size() < 2) return r;
  r.decided = true;

  // Relative distance between consecutive beeps' images.
  std::vector<double> diffs;
  std::vector<double> prev = flatten(images.front());
  for (std::size_t i = 1; i < images.size(); ++i) {
    std::vector<double> cur = flatten(images[i]);
    const std::size_t n = std::min(prev.size(), cur.size());
    double d2 = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const double d = cur[k] - prev[k];
      d2 += d * d;
    }
    const double scale = 0.5 * (l2(prev) + l2(cur));
    diffs.push_back(scale > 1e-30 ? std::sqrt(d2) / scale : 0.0);
    prev = std::move(cur);
  }
  std::nth_element(diffs.begin(), diffs.begin() + diffs.size() / 2,
                   diffs.end());
  r.fluctuation = diffs[diffs.size() / 2];
  r.alive = r.fluctuation >= config.min_relative_fluctuation;
  return r;
}

}  // namespace echoimage::core
