// Capture-chain health diagnostics.
//
// The authentication chain silently assumes six healthy, gain-matched
// microphones; a dead or clipping channel poisons the MVDR covariance
// (Eq. 8) and with it every image downstream. This module inspects a raw
// capture batch *before* any DSP and grades each channel ok / degraded /
// dead: flatline and RMS-imbalance checks, clipping-plateau detection, DC
// offset, a NaN/Inf scan, and inter-channel envelope coherence. The
// pipeline masks dead channels (beamforming with the surviving subarray)
// and the capture supervisor retries or abstains when too few survive.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dsp/signal.hpp"

namespace echoimage::core {

using echoimage::dsp::MultiChannelSignal;

enum class ChannelStatus { kOk, kDegraded, kDead };
enum class CaptureVerdict { kOk, kDegraded, kFailed };

[[nodiscard]] const char* to_string(ChannelStatus status);
[[nodiscard]] const char* to_string(CaptureVerdict verdict);

/// Per-channel boolean mask: true = channel participates in beamforming.
using ChannelMask = std::vector<bool>;

struct ChannelHealthConfig {
  /// AC RMS below this fraction of the median channel AC RMS = flatline
  /// (a shorted or unplugged microphone) -> dead.
  double flatline_rms_ratio = 1e-4;
  /// AC RMS outside [low, high] x median = gain fault -> degraded.
  double imbalance_low_ratio = 0.2;
  double imbalance_high_ratio = 5.0;
  /// Fraction of samples sitting on clipping plateaus (consecutive equal
  /// extremes near the channel peak); above `degraded` the converter is
  /// saturating, above `dead` most of the waveform is gone.
  double clipping_degraded_ratio = 0.005;
  double clipping_dead_ratio = 0.15;
  /// |mean| above this multiple of the AC RMS = gross converter DC offset
  /// -> degraded (the band-pass removes DC, so it is a warning, not fatal).
  double dc_offset_degraded_ratio = 1.0;
  /// Minimum Pearson correlation of the channel's energy envelope against
  /// the leave-one-out mean envelope of the other channels. Envelopes (not
  /// raw samples) because inter-mic TDOAs at the probing carrier decorrelate
  /// raw waveforms even on a healthy array.
  double min_envelope_coherence = 0.2;
  /// Envelope smoothing window (samples) for the coherence check.
  std::size_t coherence_smooth_samples = 48;
  /// Any non-finite sample beyond this count kills the channel.
  std::size_t max_nonfinite = 0;
  /// Fewer surviving channels than this fails the whole capture (MVDR with
  /// < 3 mics has essentially no spatial selectivity left).
  std::size_t min_active_channels = 3;
  /// When true, degraded channels are masked out too (conservative mode);
  /// default keeps them, since most degradations are survivable.
  bool drop_degraded = false;
};

/// Health of one channel, aggregated over a batch (worst beep wins).
struct ChannelHealth {
  ChannelStatus status = ChannelStatus::kOk;
  double ac_rms = 0.0;           ///< RMS after mean removal, max over beeps
  double dc_fraction = 0.0;      ///< |mean| / AC RMS, max over beeps
  double clipping_ratio = 0.0;   ///< plateau fraction, max over beeps
  double envelope_coherence = 1.0;  ///< min over beeps
  std::size_t nonfinite = 0;     ///< total non-finite samples
  bool flatline = false;
  std::vector<std::string> issues;  ///< human-readable failure reasons
};

/// Capture-level verdict plus the per-channel report and the mask the
/// pipeline should beamform with.
struct CaptureHealth {
  CaptureVerdict verdict = CaptureVerdict::kOk;
  std::vector<ChannelHealth> channels;
  ChannelMask active_mask;  ///< true = keep; all-true on a clean capture
  std::size_t num_active = 0;

  [[nodiscard]] bool usable() const {
    return verdict != CaptureVerdict::kFailed;
  }
  /// Multi-line per-channel report for logs and the CLI.
  [[nodiscard]] std::string describe() const;
};

/// Assess a batch of raw beep captures. Throws std::invalid_argument when
/// the batch is empty, a beep has no channels, or beeps disagree on the
/// channel count. Non-finite samples and ragged lengths are *reported*,
/// never propagated.
[[nodiscard]] CaptureHealth assess_capture(
    const std::vector<MultiChannelSignal>& beeps,
    const ChannelHealthConfig& config = {});

/// Single-capture convenience overload.
[[nodiscard]] CaptureHealth assess_capture(
    const MultiChannelSignal& capture,
    const ChannelHealthConfig& config = {});

}  // namespace echoimage::core
