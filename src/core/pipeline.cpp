#include "core/pipeline.hpp"

#include <sstream>
#include <stdexcept>

namespace echoimage::core {

void SystemConfig::harmonize() {
  distance.sample_rate = sample_rate;
  distance.chirp = chirp;
  imaging.sample_rate = sample_rate;
  imaging.chirp = chirp;
  imaging.bandpass_low_hz = distance.bandpass_low_hz;
  imaging.bandpass_high_hz = distance.bandpass_high_hz;
  imaging.bandpass_order = distance.bandpass_order;
}

std::string SystemConfig::describe() const {
  std::ostringstream os;
  os << "sample_rate: " << sample_rate << " Hz\n"
     << "chirp: " << chirp.f_start_hz << "-" << chirp.f_end_hz << " Hz, "
     << chirp.duration_s * 1000.0 << " ms\n"
     << "band-pass: " << distance.bandpass_low_hz << "-"
     << distance.bandpass_high_hz << " Hz (order "
     << distance.bandpass_order << ")\n"
     << "imaging: " << imaging.grid_size << "x" << imaging.grid_size
     << " grids of " << imaging.grid_spacing_m * 100.0 << " cm, "
     << imaging.num_subbands << " spectral band(s), gate +/-"
     << imaging.gate_halfwidth_s * 1000.0 << " ms, "
     << (imaging.pulse_compression ? "pulse-compressed" : "raw gate")
     << ", incoherent mix " << imaging.incoherent_mix << ", "
     << (imaging.use_mvdr ? "MVDR" : "delay-and-sum") << "\n"
     << "extractor: " << extractor.input_size << "x" << extractor.input_size
     << " input, " << extractor.block_channels.size() << " conv blocks"
     << (extractor.bypass_network ? " (bypassed: raw pixels)" : "") << "\n"
     << "authenticator: accept_slack " << authenticator.accept_slack
     << ", svdd nu " << authenticator.svdd.nu << ", svm C "
     << authenticator.svm.c << "\n"
     << "augmentation distances: " << augmentation_distances_m.size()
     << " between "
     << (augmentation_distances_m.empty()
             ? 0.0
             : augmentation_distances_m.front())
     << " and "
     << (augmentation_distances_m.empty() ? 0.0
                                          : augmentation_distances_m.back())
     << " m\n";
  return os.str();
}

EchoImagePipeline::EchoImagePipeline(SystemConfig config,
                                     echoimage::array::ArrayGeometry geometry)
    : config_([&] {
        config.harmonize();
        return config;
      }()),
      distance_(config_.distance, geometry),
      imager_(config_.imaging, geometry),
      augmenter_(config_.imaging),
      extractor_(config_.extractor) {}

ProcessedBeeps EchoImagePipeline::process(
    const std::vector<MultiChannelSignal>& beeps,
    const MultiChannelSignal& noise_only) const {
  if (beeps.empty())
    throw std::invalid_argument("EchoImagePipeline: no beeps");
  ProcessedBeeps out;
  out.distance = distance_.estimate(beeps, noise_only);
  if (!out.distance.valid) return out;
  out.images.reserve(beeps.size());
  // The plane sits at the centroid-derived distance (smoother than the
  // peak) and the gates anchor to the measured echo centroid.
  const double plane = out.distance.user_distance_centroid_m > 0.0
                           ? out.distance.user_distance_centroid_m
                           : out.distance.user_distance_m;
  for (const MultiChannelSignal& beep : beeps)
    out.images.push_back(AcousticImage{imager_.construct_bands(
        beep, plane, out.distance.tau_direct_s, noise_only,
        out.distance.tau_echo_centroid_s)});
  return out;
}

std::vector<double> EchoImagePipeline::features(
    const AcousticImage& image) const {
  std::vector<double> out;
  for (const Matrix2D& band : image.bands) {
    const std::vector<double> f = extractor_.extract(band);
    out.insert(out.end(), f.begin(), f.end());
  }
  return out;
}

std::vector<std::vector<double>> EchoImagePipeline::features_batch(
    const std::vector<AcousticImage>& images, double capture_distance_m,
    bool augment) const {
  std::vector<std::vector<double>> out;
  out.reserve(images.size() *
              (augment ? 1 + config_.augmentation_distances_m.size() : 1));
  for (const AcousticImage& img : images) {
    out.push_back(features(img));
    if (!augment) continue;
    for (const double d : config_.augmentation_distances_m) {
      const AcousticImage synth =
          augmenter_.transform(img, capture_distance_m, d);
      out.push_back(features(synth));
    }
  }
  return out;
}

Authenticator EchoImagePipeline::enroll(
    const std::vector<EnrolledUser>& users) const {
  return Authenticator::train(users, config_.authenticator);
}

}  // namespace echoimage::core
