#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "simd/isa.hpp"

namespace echoimage::core {

namespace {

const echoimage::array::ChannelMask kNoMask{};  // empty = all channels

bool has_nonfinite(const Signal& ch) {
  for (const double v : ch)
    if (!std::isfinite(v)) return true;
  return false;
}

/// Copy of a capture with the masked-out channels zeroed. Dead channels are
/// excluded from beamforming via the subarray mask, but full-channel paths
/// (band-pass, covariance normalization) still touch every channel — a NaN
/// there would poison shared scale factors, so it must not survive.
MultiChannelSignal silence_masked(const MultiChannelSignal& capture,
                                  const echoimage::array::ChannelMask& mask) {
  MultiChannelSignal out = capture;
  for (std::size_t c = 0; c < out.num_channels() && c < mask.size(); ++c)
    if (!mask[c]) std::fill(out.channels[c].begin(), out.channels[c].end(), 0.0);
  return out;
}

}  // namespace

void SystemConfig::harmonize() {
  // Size registry shards and trace lanes to the worker count that will
  // actually feed them (0 resolves machine-wide, like the pool itself).
  observability.workers = num_threads;
  distance.sample_rate = sample_rate;
  distance.chirp = chirp;
  distance.speed_of_sound = speed_of_sound;
  imaging.sample_rate = sample_rate;
  imaging.chirp = chirp;
  imaging.speed_of_sound = speed_of_sound;
  imaging.num_threads = num_threads;
  imaging.bandpass_low_hz = distance.bandpass_low_hz;
  imaging.bandpass_high_hz = distance.bandpass_high_hz;
  imaging.bandpass_order = distance.bandpass_order;
}

std::string SystemConfig::describe() const {
  std::ostringstream os;
  os << "sample_rate: " << sample_rate << " Hz\n"
     << "speed of sound: " << speed_of_sound.value() << " m/s\n"
     << "threads: " << num_threads << (num_threads == 0 ? " (auto)" : "")
     << ", weight cache "
     << (imaging.use_weight_cache ? "on" : "off") << "\n"
     << "simd: " << simd_isa << " (active "
     << echoimage::simd::isa_name(echoimage::simd::active_isa())
     << "), numeric lane "
     << echoimage::simd::lane_name(imaging.numeric_lane) << "\n"
     << "chirp: " << chirp.f_start.value() << "-" << chirp.f_end.value()
     << " Hz, " << chirp.duration.value() * 1000.0 << " ms\n"
     << "band-pass: " << distance.bandpass_low_hz << "-"
     << distance.bandpass_high_hz << " Hz (order "
     << distance.bandpass_order << ")\n"
     << "imaging: " << imaging.grid_size << "x" << imaging.grid_size
     << " grids of " << imaging.grid_spacing_m * 100.0 << " cm, "
     << imaging.num_subbands << " spectral band(s), gate +/-"
     << imaging.gate_halfwidth_s * 1000.0 << " ms, "
     << (imaging.pulse_compression ? "pulse-compressed" : "raw gate")
     << ", incoherent mix " << imaging.incoherent_mix << ", "
     << (imaging.use_mvdr ? "MVDR" : "delay-and-sum") << "\n"
     << "extractor: " << extractor.input_size << "x" << extractor.input_size
     << " input, " << extractor.block_channels.size() << " conv blocks"
     << (extractor.bypass_network ? " (bypassed: raw pixels)" : "") << "\n"
     << "authenticator: accept_slack " << authenticator.accept_slack
     << ", svdd nu " << authenticator.svdd.nu << ", svm C "
     << authenticator.svm.c << "\n"
     << "augmentation distances: " << augmentation_distances_m.size()
     << " between "
     << (augmentation_distances_m.empty()
             ? 0.0
             : augmentation_distances_m.front())
     << " and "
     << (augmentation_distances_m.empty() ? 0.0
                                          : augmentation_distances_m.back())
     << " m\n";
  return os.str();
}

EchoImagePipeline::EchoImagePipeline(SystemConfig config,
                                     echoimage::array::ArrayGeometry geometry)
    : config_([&] {
        config.harmonize();
        // Forcing a lane is process-wide (the kernel table is a global
        // dispatch); "auto" leaves the ambient selection untouched so a
        // test's ScopedIsa or ECHOIMAGE_SIMD stays in charge.
        if (config.simd_isa != "auto")
          echoimage::simd::set_isa_override(
              echoimage::simd::parse_isa(config.simd_isa));
        return config;
      }()),
      geometry_(geometry),
      distance_(config_.distance, geometry),
      imager_(config_.imaging, geometry),
      augmenter_(config_.imaging, imager_.pool()),
      extractor_(config_.extractor) {
  obs_ = obs::make_observability(config_.observability);
  if (obs_ == nullptr) return;
  distance_.attach_observability(obs_);
  imager_.attach_observability(obs_);
  captures_counter_ = &obs_->metrics().counter("pipeline.captures");
  gate_failed_counter_ = &obs_->metrics().counter("pipeline.gate_failed");
  gate_degraded_counter_ = &obs_->metrics().counter("pipeline.gate_degraded");
  distance_invalid_counter_ =
      &obs_->metrics().counter("pipeline.distance_invalid");
  dropped_channels_hist_ = &obs_->metrics().histogram(
      "pipeline.dropped_channels", {0.0, 1.0, 2.0, 4.0, 8.0});
}

void EchoImagePipeline::validate_capture(
    const std::vector<MultiChannelSignal>& beeps,
    const MultiChannelSignal& noise_only) const {
  if (beeps.empty())
    throw std::invalid_argument("EchoImagePipeline: no beeps");
  const std::size_t mics = geometry_.num_mics();
  for (std::size_t b = 0; b < beeps.size(); ++b) {
    const MultiChannelSignal& beep = beeps[b];
    if (beep.num_channels() != mics)
      throw std::invalid_argument(
          "EchoImagePipeline: beep " + std::to_string(b) + " has " +
          std::to_string(beep.num_channels()) + " channels, array has " +
          std::to_string(mics) + " mics");
    const std::size_t len = beep.channels.front().size();
    if (len == 0)
      throw std::invalid_argument("EchoImagePipeline: beep " +
                                  std::to_string(b) + " is empty");
    for (std::size_t c = 1; c < beep.num_channels(); ++c)
      if (beep.channels[c].size() != len)
        throw std::invalid_argument(
            "EchoImagePipeline: beep " + std::to_string(b) + " channel " +
            std::to_string(c) + " has " +
            std::to_string(beep.channels[c].size()) + " samples, channel 0 has " +
            std::to_string(len));
  }
  // An empty noise capture means "no noise reference" (spatially-white
  // covariance); a non-empty one must match the array.
  if (noise_only.num_channels() != 0) {
    if (noise_only.num_channels() != mics)
      throw std::invalid_argument(
          "EchoImagePipeline: noise capture has " +
          std::to_string(noise_only.num_channels()) + " channels, array has " +
          std::to_string(mics) + " mics");
    const std::size_t len = noise_only.channels.front().size();
    for (std::size_t c = 1; c < noise_only.num_channels(); ++c)
      if (noise_only.channels[c].size() != len)
        throw std::invalid_argument(
            "EchoImagePipeline: noise capture channel " + std::to_string(c) +
            " has " + std::to_string(noise_only.channels[c].size()) +
            " samples, channel 0 has " + std::to_string(len));
  }
}

ProcessedBeeps EchoImagePipeline::process(
    const std::vector<MultiChannelSignal>& beeps,
    const MultiChannelSignal& noise_only,
    const DeadlineProbe& deadline) const {
  const obs::Tracer* const tracer = obs::Observability::tracer_of(obs_.get());
  EI_SPAN(tracer, "pipeline.process");
  if (captures_counter_ != nullptr) captures_counter_->add();
  {
    EI_SPAN(tracer, "pipeline.validate");
    validate_capture(beeps, noise_only);
  }
  const std::size_t mics = geometry_.num_mics();
  ProcessedBeeps out;
  out.active_mask.assign(mics, true);

  if (config_.health_gate) {
    EI_SPAN(tracer, "pipeline.health_gate");
    out.health = assess_capture(beeps, config_.health);
    // A noise channel carrying NaN/Inf shares the faulty hardware chain
    // with its beep channel — condemn it even if the beeps looked clean
    // (a non-finite covariance would poison every beamformer weight).
    for (std::size_t c = 0; c < noise_only.num_channels(); ++c) {
      if (out.health.active_mask[c] && has_nonfinite(noise_only.channels[c])) {
        out.health.active_mask[c] = false;
        out.health.channels[c].status = ChannelStatus::kDead;
        out.health.channels[c].issues.push_back("noise capture non-finite");
      }
    }
    out.health.num_active = echoimage::array::count_active(
        out.health.active_mask);
    if (out.health.num_active < config_.health.min_active_channels)
      out.health.verdict = CaptureVerdict::kFailed;
    out.active_mask = out.health.active_mask;
    out.dropped_channels = mics - out.health.num_active;
    if (dropped_channels_hist_ != nullptr)
      dropped_channels_hist_->observe(
          static_cast<double>(out.dropped_channels));
    if (!out.health.usable()) {
      if (gate_failed_counter_ != nullptr) gate_failed_counter_->add();
      return out;  // abstain: retry, don't reject
    }
    if (out.dropped_channels > 0 && gate_degraded_counter_ != nullptr)
      gate_degraded_counter_->add();
  } else {
    // Without the gate the pipeline refuses non-finite input outright —
    // NaN propagates silently through FFTs and would emerge as a garbage
    // accept/reject downstream.
    for (std::size_t b = 0; b < beeps.size(); ++b)
      for (std::size_t c = 0; c < beeps[b].num_channels(); ++c)
        if (has_nonfinite(beeps[b].channels[c]))
          throw std::invalid_argument(
              "EchoImagePipeline: beep " + std::to_string(b) + " channel " +
              std::to_string(c) + " contains NaN/Inf samples");
    for (std::size_t c = 0; c < noise_only.num_channels(); ++c)
      if (has_nonfinite(noise_only.channels[c]))
        throw std::invalid_argument("EchoImagePipeline: noise capture channel " +
                                    std::to_string(c) +
                                    " contains NaN/Inf samples");
  }

  // Degraded path: silence the condemned channels (so full-channel DSP
  // stages never see their garbage) and beamform on the surviving
  // subarray via the mask.
  const bool reduced = out.dropped_channels > 0;
  const echoimage::array::ChannelMask& mask_ref =
      reduced ? out.active_mask : kNoMask;
  std::vector<MultiChannelSignal> clean_storage;
  const std::vector<MultiChannelSignal>* use_beeps = &beeps;
  MultiChannelSignal clean_noise;
  const MultiChannelSignal* use_noise = &noise_only;
  if (reduced) {
    clean_storage.reserve(beeps.size());
    for (const MultiChannelSignal& beep : beeps)
      clean_storage.push_back(silence_masked(beep, out.active_mask));
    use_beeps = &clean_storage;
    clean_noise = silence_masked(noise_only, out.active_mask);
    use_noise = &clean_noise;
  }

  out.distance = distance_.estimate(*use_beeps, *use_noise, mask_ref);
  if (!out.distance.valid) {
    if (distance_invalid_counter_ != nullptr) distance_invalid_counter_->add();
    return out;
  }
  out.images.reserve(beeps.size());
  // The plane sits at the centroid-derived distance (smoother than the
  // peak) and the gates anchor to the measured echo centroid.
  const units::Meters plane{out.distance.user_distance_centroid_m > 0.0
                                ? out.distance.user_distance_centroid_m
                                : out.distance.user_distance_m};
  for (std::size_t b = 0; b < use_beeps->size(); ++b) {
    // Deadline poll sits at the per-beep boundary: each image is the
    // expensive unit of work, and stopping between images leaves a clean
    // prefix (never a half-built image).
    if (deadline && deadline()) {
      out.deadline_expired = true;
      return out;
    }
    EI_SPAN(tracer, "pipeline.image", b);
    out.images.push_back(AcousticImage{imager_.construct_bands(
        (*use_beeps)[b], plane, out.distance.tau_direct_s, *use_noise,
        out.distance.tau_echo_centroid_s, mask_ref)});
  }
  return out;
}

std::vector<double> EchoImagePipeline::features(
    const AcousticImage& image) const {
  EI_SPAN(obs::Observability::tracer_of(obs_.get()), "pipeline.features");
  std::vector<double> out;
  for (const Matrix2D& band : image.bands) {
    const std::vector<double> f = extractor_.extract(band);
    out.insert(out.end(), f.begin(), f.end());
  }
  return out;
}

std::vector<std::vector<double>> EchoImagePipeline::features_batch(
    const std::vector<AcousticImage>& images, double capture_distance_m,
    bool augment) const {
  std::vector<std::vector<double>> out;
  out.reserve(images.size() *
              (augment ? 1 + config_.augmentation_distances_m.size() : 1));
  for (const AcousticImage& img : images) {
    out.push_back(features(img));
    if (!augment) continue;
    for (const double d : config_.augmentation_distances_m) {
      const AcousticImage synth =
          augmenter_.transform(img, capture_distance_m, d);
      out.push_back(features(synth));
    }
  }
  return out;
}

Authenticator EchoImagePipeline::enroll(
    const std::vector<EnrolledUser>& users) const {
  EI_SPAN(obs::Observability::tracer_of(obs_.get()), "pipeline.enroll");
  return Authenticator::train(users, config_.authenticator);
}

}  // namespace echoimage::core
