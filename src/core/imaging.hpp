// Acoustic image construction (paper Sec. V-C).
//
// Given the estimated user-array distance D_p, a virtual square imaging
// plane parallel to the x-o-z plane is placed at y = D_p and divided into
// K = G x G grids. For each grid k the array is steered to the grid's
// direction (Eq. 11-12); the pixel value is the L2 norm of the beamformed
// segment time-gated around the grid's round-trip delay 2 D_k / c, which
// isolates echoes whose path length matches the grid — echoes from clutter
// elsewhere fail the gate and are suppressed.
#pragma once

#include <cstddef>
#include <memory>

#include "array/beamformer.hpp"
#include "array/weight_cache.hpp"
#include "core/distance.hpp"
#include "dsp/biquad.hpp"
#include "ml/tensor.hpp"
#include "obs/observability.hpp"
#include "runtime/thread_pool.hpp"
#include "simd/isa.hpp"

namespace echoimage::core {

namespace units = echoimage::units;
using echoimage::ml::Matrix2D;

struct ImagingConfig {
  double sample_rate = 48000.0;
  echoimage::dsp::ChirpParams chirp{};
  double bandpass_low_hz = 2000.0;
  double bandpass_high_hz = 3000.0;
  std::size_t bandpass_order = 4;
  /// Image resolution: grid_size x grid_size grids of grid_spacing_m
  /// (paper: 180x180 of 1 cm; default here 48x48 of 1.5 cm for tractable
  /// full-population studies — see DESIGN.md).
  std::size_t grid_size = 48;
  double grid_spacing_m = 0.015;
  /// Vertical center of the imaging plane relative to the array (m).
  double plane_center_z_m = 0.15;
  /// Time-gate slack d' on each side of the grid's round-trip delay (s).
  double gate_halfwidth_s = 0.0015;
  bool use_mvdr = true;  ///< false = delay-and-sum ablation
  /// Zero out the direct speaker->mic sound before imaging. The direct
  /// chirp is ~50 dB above body echoes and the Hilbert transform smears its
  /// analytic tails across the echo window, so self-interference removal
  /// (standard in active-sonar front ends) markedly sharpens the image.
  bool suppress_direct = true;
  double direct_guard_s = 0.0005;  ///< extra zeroed margin after the chirp
  /// Pulse compression: matched-filter each channel against the chirp
  /// before beamforming and gating (correlation and beamforming commute).
  /// Compresses each echo to ~1/bandwidth, giving ~17 cm range resolution
  /// through the gate and full processing gain against noise. Off = the
  /// naive raw-signal gating baseline for ablations.
  bool pulse_compression = true;
  /// Blend of incoherent (phase-free, per-mic) gated energy into each
  /// pixel: pixel^2 = (1-mix)*coherent + mix*incoherent. The incoherent
  /// term is a pure range profile — highly stable across small pose
  /// changes — while the coherent term carries the angular detail; mixing
  /// trades resolution for session robustness. 0 = paper's fully coherent
  /// pixel.
  double incoherent_mix = 0.85;
  /// Anchor the range gates to the measured echo time rather than to
  /// absolute round-trip delays: gate(k) = tau_echo + 2 (D_k - D_p) / c.
  /// Any constant bias in echo detection then cancels out of the image,
  /// leaving only second-order sensitivity to the distance estimate.
  bool anchor_to_echo = false;
  /// Number of spectral subbands. `construct_bands` returns one image per
  /// subband — body materials reflect 2 kHz and 3 kHz differently, so the
  /// per-band images carry an independent spectral identity channel.
  /// `construct` sums band energies instead (frequency compounding).
  /// 1 = single full-band image.
  std::size_t num_subbands = 5;
  units::MetersPerSecond speed_of_sound = echoimage::array::kSpeedOfSoundMps;
  /// Workers for the per-grid imaging loop. 1 = the historical serial
  /// path (no pool, no synchronization); 0 = one per hardware thread.
  /// Any value produces bit-identical images: grids write disjoint output
  /// slots and bands accumulate in a fixed order (see DESIGN.md,
  /// "Threading model").
  std::size_t num_threads = 1;
  /// Memoize steering + MVDR weight solves across beeps and bands (see
  /// array/weight_cache.hpp). Numerically free: a hit returns exactly the
  /// bits a recompute would produce.
  bool use_weight_cache = true;
  /// Plane-distance quantum of the cache key (<= 0: exact bit pattern).
  units::Meters weight_cache_quantum{1e-3};
  std::size_t weight_cache_capacity = 1u << 18;
  /// Numeric lane of the beamformer energy kernels. kF64 (default) is
  /// bit-identical to the historical pipeline on every ISA lane; kF32
  /// halves the energy-core bandwidth at a pinned relative-error bound
  /// (DESIGN.md, "SIMD & numeric-lane model"). Weight solves, filters and
  /// FFTs stay f64 either way; cache entries are keyed per lane.
  echoimage::simd::NumericLane numeric_lane = echoimage::simd::NumericLane::kF64;
};

/// One acoustic image: a stack of per-spectral-band grids. Single-band
/// configurations simply have bands.size() == 1.
struct AcousticImage {
  std::vector<Matrix2D> bands;
};

/// Grid geometry helper shared with the data augmenter: distance from the
/// k-th grid (row r, col c) of a plane at distance D_p to the origin.
[[nodiscard]] units::Meters grid_distance(const ImagingConfig& config,
                                          std::size_t row, std::size_t col,
                                          units::Meters plane_distance);

class AcousticImager {
 public:
  AcousticImager(ImagingConfig config, ArrayGeometry geometry);

  [[nodiscard]] const ImagingConfig& config() const { return config_; }

  /// Worker pool of the imaging loop (null on the serial path). Shared so
  /// sibling stages (e.g. the augmenter) can reuse the same workers.
  [[nodiscard]] const std::shared_ptr<echoimage::runtime::ThreadPool>& pool()
      const {
    return pool_;
  }

  /// The weight cache (null when disabled); exposes hit/miss accounting
  /// for benches and tests.
  [[nodiscard]] const echoimage::array::WeightCache* weight_cache() const {
    return weight_cache_.get();
  }

  /// Wire this imager into the system observability bundle: per-band and
  /// per-grid-row spans, image/band counters, and the weight cache's
  /// accounting rebound into `obs->metrics()`. Null (the default) keeps
  /// every site a dead branch. Call before first use.
  void attach_observability(std::shared_ptr<const obs::Observability> obs);

  /// Construct the acoustic image AI_l from one beep capture. `tau_direct_s`
  /// anchors the time axis (emission time = direct-path arrival minus the
  /// speaker-mic flight, which is negligible at array scale); `noise_only`
  /// optionally feeds the MVDR noise covariance.
  /// `tau_echo_s` (< 0 = unknown) enables echo anchoring when
  /// `anchor_to_echo` is set. `active_mask` (empty = all) images with the
  /// surviving subarray when the health gate has condemned channels.
  [[nodiscard]] Matrix2D construct(
      const MultiChannelSignal& beep, units::Meters plane_distance,
      double tau_direct_s = 0.0, const MultiChannelSignal& noise_only = {},
      double tau_echo_s = -1.0,
      const echoimage::array::ChannelMask& active_mask = {}) const;

  /// Per-subband images (the pipeline's default path): same computation as
  /// `construct` but each spectral band is returned separately so the
  /// classifier sees the body's frequency-dependent reflectivity.
  [[nodiscard]] std::vector<Matrix2D> construct_bands(
      const MultiChannelSignal& beep, units::Meters plane_distance,
      double tau_direct_s = 0.0,
      const MultiChannelSignal& noise_only = {},
      double tau_echo_s = -1.0,
      const echoimage::array::ChannelMask& active_mask = {}) const;

 private:
  /// Energy image of one subband, accumulated into `image`.
  void accumulate_band(std::size_t band,
                       const MultiChannelSignal& filtered,
                       const MultiChannelSignal& noise_f, bool have_noise,
                       double plane_distance_m, double tau_direct_s,
                       double tau_echo_s,
                       const echoimage::array::ChannelMask& active_mask,
                       Matrix2D& image) const;
  /// Shared front end: band-pass + direct-path suppression + noise filter.
  void prepare(const MultiChannelSignal& beep,
               const MultiChannelSignal& noise_only, double tau_direct_s,
               MultiChannelSignal& filtered, MultiChannelSignal& noise_f,
               bool& have_noise) const;

  ImagingConfig config_;
  ArrayGeometry geometry_;
  /// Shared across copies of this imager: the pool serializes overlapping
  /// regions internally, and cache entries are copy-agnostic (the config,
  /// and so the keys, are identical).
  std::shared_ptr<echoimage::runtime::ThreadPool> pool_;
  std::shared_ptr<echoimage::array::WeightCache> weight_cache_;
  std::shared_ptr<const obs::Observability> obs_;
  const obs::Counter* images_counter_ = nullptr;
  const obs::Counter* bands_counter_ = nullptr;
  echoimage::dsp::SosCascade bandpass_filter_;
  std::vector<echoimage::dsp::SosCascade> subband_filters_;
  std::vector<double> subband_centers_;
  std::vector<echoimage::dsp::Signal> subband_templates_;  ///< per-band chirp
};

}  // namespace echoimage::core
