// Named physical units of the EchoImage pipeline.
//
// These are the vocabulary types threaded through the public signatures of
// the array / dsp / core / sim layers: a steering delay is Meters divided
// by MetersPerSecond (-> Seconds), a range gate is Seconds times SampleRate
// (-> SampleCount), a chirp sweep runs between two Hertz endpoints. A
// swapped `freq_hz` / `speed_of_sound` argument pair — which used to
// compile silently as two bare doubles and corrupt the acoustic image —
// is a type error with these.
//
// The negative-compilation suite (tests/units/negative/) pins down what
// must NOT compile; tests/units/units_test.cpp pins down the algebra that
// must.
#pragma once

#include "units/quantity.hpp"

namespace echoimage::units {

// ---------------------------------------------------------------------------
// Base and derived quantities. Dimension exponents: <length, time,
// temperature, samples>.
// ---------------------------------------------------------------------------

/// Pure ratio (implicitly converts to double).
using Dimensionless = Quantity<DimScalar>;

/// Length in meters (grid spacing, plane distance, microphone spacing).
using Meters = Quantity<Dimension<1, 0, 0, 0>>;

/// Time in seconds (delays, gates, chirp duration).
using Seconds = Quantity<Dimension<0, 1, 0, 0>>;

/// Acoustic frequency in Hz = 1/s (chirp endpoints, analysis frequency).
using Hertz = Quantity<Dimension<0, -1, 0, 0>>;

/// Propagation speed in m/s (speed of sound).
using MetersPerSecond = Quantity<Dimension<1, -1, 0, 0>>;

/// Chirp sweep rate in Hz/s.
using HertzPerSecond = Quantity<Dimension<0, -2, 0, 0>>;

/// Air temperature in degrees Celsius (speed-of-sound calibration).
using Celsius = Quantity<Dimension<0, 0, 1, 0>>;

/// A number of ADC samples. A distinct base dimension, NOT a dimensionless
/// count: Seconds * SampleRate yields SampleCount, while Seconds * Hertz
/// yields a plain ratio — so a 48 kHz sample rate can never be passed where
/// a 3 kHz acoustic frequency is expected.
using SampleCount = Quantity<Dimension<0, 0, 0, 1>>;

/// ADC sample rate in samples/second.
using SampleRate = Quantity<Dimension<0, -1, 0, 1>>;

/// Inverse square length, 1/m^2 — the spreading-loss factor of the
/// distance-re-projection augmentation (paper Eq. 13-15).
using PerSquareMeter = Quantity<Dimension<-2, 0, 0, 0>>;

// ---------------------------------------------------------------------------
// Decibels: logarithmic level. Deliberately NOT a Quantity — adding two
// absolute levels or scaling one by a plain factor is meaningless, while
// adding a *gain* in dB is composition. Only those operations exist.
// ---------------------------------------------------------------------------
class Decibels {
 public:
  constexpr Decibels() = default;
  explicit constexpr Decibels(double db) : value_(db) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  /// Gain composition in the log domain.
  [[nodiscard]] constexpr Decibels operator+(Decibels o) const {
    return Decibels{value_ + o.value_};
  }
  [[nodiscard]] constexpr Decibels operator-(Decibels o) const {
    return Decibels{value_ - o.value_};
  }

  [[nodiscard]] constexpr auto operator<=>(const Decibels&) const = default;

 private:
  double value_ = 0.0;
};

// ---------------------------------------------------------------------------
// Literals for the units the codebase speaks: `0.05_m`, `343.0_mps`,
// `3000.0_hz`, `20.0_degc`, `50.0_db`.
// ---------------------------------------------------------------------------
inline namespace literals {
constexpr Meters operator""_m(long double v) {
  return Meters{static_cast<double>(v)};
}
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Hertz operator""_hz(long double v) {
  return Hertz{static_cast<double>(v)};
}
constexpr MetersPerSecond operator""_mps(long double v) {
  return MetersPerSecond{static_cast<double>(v)};
}
constexpr Celsius operator""_degc(long double v) {
  return Celsius{static_cast<double>(v)};
}
constexpr Decibels operator""_db(long double v) {
  return Decibels{static_cast<double>(v)};
}
constexpr Meters operator""_m(unsigned long long v) {
  return Meters{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Hertz operator""_hz(unsigned long long v) {
  return Hertz{static_cast<double>(v)};
}
constexpr MetersPerSecond operator""_mps(unsigned long long v) {
  return MetersPerSecond{static_cast<double>(v)};
}
constexpr Celsius operator""_degc(unsigned long long v) {
  return Celsius{static_cast<double>(v)};
}
constexpr Decibels operator""_db(unsigned long long v) {
  return Decibels{static_cast<double>(v)};
}
}  // namespace literals

}  // namespace echoimage::units
