// Compile-time dimension algebra for the physical-units layer.
//
// A Dimension is a vector of integer exponents over the base quantities the
// acoustic pipeline actually mixes: length (m), time (s), temperature (C)
// and sample count (ADC frames). Products and quotients of quantities add
// and subtract these exponents at compile time, so Meters / MetersPerSecond
// *is* Seconds and Seconds * SampleRate *is* SampleCount — and anything
// dimensionally inconsistent is a type error, not a runtime bug.
//
// Samples are a real base dimension here, not a dimensionless count: a
// sample rate (samples/s) and an acoustic frequency (1/s) must never be
// interchangeable, because confusing the two is exactly the class of bug
// (48 kHz where 3 kHz was meant) this layer exists to stop.
#pragma once

namespace echoimage::units {

/// Exponent vector of a physical dimension. All algebra is purely
/// compile-time; no object of this type is ever constructed at runtime.
template <int LengthExp, int TimeExp, int TemperatureExp, int SampleExp>
struct Dimension {
  static constexpr int length = LengthExp;
  static constexpr int time = TimeExp;
  static constexpr int temperature = TemperatureExp;
  static constexpr int samples = SampleExp;
};

/// The dimensionless (pure-ratio) dimension.
using DimScalar = Dimension<0, 0, 0, 0>;

/// Dimension of a product: exponents add.
template <class A, class B>
using DimProduct = Dimension<A::length + B::length, A::time + B::time,
                             A::temperature + B::temperature,
                             A::samples + B::samples>;

/// Dimension of a quotient: exponents subtract.
template <class A, class B>
using DimQuotient = Dimension<A::length - B::length, A::time - B::time,
                              A::temperature - B::temperature,
                              A::samples - B::samples>;

/// Dimension of a reciprocal.
template <class A>
using DimInverse = DimQuotient<DimScalar, A>;

}  // namespace echoimage::units
