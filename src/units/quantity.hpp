// Strong-typed physical quantity: a double tagged with a compile-time
// Dimension.
//
// Design rules (see DESIGN.md, "Static analysis & units"):
//  * Construction from a raw double is *explicit* — `Meters m = 0.05;` does
//    not compile; `Meters{0.05}` states the unit at the call site.
//  * `.value()` is the explicit escape hatch back to a raw double for
//    inner-loop math. The wrap/unwrap pair is the identity on the stored
//    bits, so threading quantities through an API cannot change results.
//  * Arithmetic derives dimensions: Quantity<A> * Quantity<B> has dimension
//    A+B, / has A-B; + and - require identical dimensions. Scalars scale
//    any quantity without changing its dimension.
//  * A dimensionless quantity (all exponents zero — e.g. the ratio of two
//    speeds) converts *implicitly* to double: a pure ratio is a number.
//
// Everything is constexpr and trivially copyable; with optimization on, a
// Quantity compiles to exactly the double it wraps (zero-cost).
#pragma once

#include <compare>
#include <concepts>

#include "units/dimension.hpp"

namespace echoimage::units {

template <class Dim>
class Quantity {
 public:
  using dimension = Dim;

  constexpr Quantity() = default;
  explicit constexpr Quantity(double raw) : value_(raw) {}

  /// Escape hatch: the raw double, for inner-loop math and I/O.
  [[nodiscard]] constexpr double value() const { return value_; }

  /// A pure ratio is just a number.
  constexpr operator double() const  // NOLINT(google-explicit-constructor)
    requires std::same_as<Dim, DimScalar>
  {
    return value_;
  }

  // Same-dimension additive algebra.
  [[nodiscard]] constexpr Quantity operator+(Quantity o) const {
    return Quantity{value_ + o.value_};
  }
  [[nodiscard]] constexpr Quantity operator-(Quantity o) const {
    return Quantity{value_ - o.value_};
  }
  [[nodiscard]] constexpr Quantity operator-() const {
    return Quantity{-value_};
  }
  constexpr Quantity& operator+=(Quantity o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ -= o.value_;
    return *this;
  }

  // Dimension-preserving scaling by a raw number.
  [[nodiscard]] constexpr Quantity operator*(double s) const {
    return Quantity{value_ * s};
  }
  [[nodiscard]] constexpr Quantity operator/(double s) const {
    return Quantity{value_ / s};
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  // Dimension-deriving products and quotients.
  template <class D2>
  [[nodiscard]] constexpr Quantity<DimProduct<Dim, D2>> operator*(
      Quantity<D2> o) const {
    return Quantity<DimProduct<Dim, D2>>{value_ * o.value()};
  }
  template <class D2>
  [[nodiscard]] constexpr Quantity<DimQuotient<Dim, D2>> operator/(
      Quantity<D2> o) const {
    return Quantity<DimQuotient<Dim, D2>>{value_ / o.value()};
  }

  // Same-dimension comparisons only.
  [[nodiscard]] constexpr auto operator<=>(const Quantity&) const = default;

 private:
  double value_ = 0.0;
};

/// Scalar * quantity (quantity * scalar is a member).
template <class Dim>
[[nodiscard]] constexpr Quantity<Dim> operator*(double s, Quantity<Dim> q) {
  return Quantity<Dim>{s * q.value()};
}

/// Scalar / quantity inverts the dimension (e.g. 1.0 / Seconds -> Hertz).
template <class Dim>
[[nodiscard]] constexpr Quantity<DimInverse<Dim>> operator/(double s,
                                                            Quantity<Dim> q) {
  return Quantity<DimInverse<Dim>>{s / q.value()};
}

}  // namespace echoimage::units
