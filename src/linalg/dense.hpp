// Dense real-vector kernels for the 1:N identification prefilter.
//
// The prefilter (src/ident) scores one probe feature vector against every
// stored centroid — a contiguous row-major matrix of N x d doubles — so
// the kernels here are written the way auto-vectorizers like them: flat
// pointers, unit stride, no branches in the inner loop, one independent
// output slot per row. Each row's score depends only on that row and the
// query, which is what lets the caller parallelize over rows
// (runtime::parallel_for) and still get bit-identical results for every
// worker count.
#pragma once

#include <cstddef>
#include <vector>

namespace echoimage::linalg {

/// Plain dot product sum_i a[i] * b[i], accumulated in index order.
[[nodiscard]] double dot(const double* a, const double* b, std::size_t n);

/// sum_i a[i]^2, accumulated in index order.
[[nodiscard]] double squared_norm(const double* a, std::size_t n);

/// sum_i (a[i] - b[i])^2, accumulated in index order.
[[nodiscard]] double squared_distance(const double* a, const double* b,
                                      std::size_t n);

/// Squared Euclidean distance of `query` to each row r of `rows` (row-major
/// num_rows x dims): out[r] = squared_distance(row_r, query). Rows in
/// [row_begin, row_end) only — the parallel caller hands each worker its
/// chunk. `out` must hold num_rows slots; slots outside the range are not
/// touched.
void row_squared_distances(const double* rows, std::size_t dims,
                           const double* query, std::size_t row_begin,
                           std::size_t row_end, double* out);

/// Cosine distance 1 - <row_r, query> / (|row_r| * |query|) per row, with
/// the row norms precomputed (they are a property of the index, not the
/// query). A zero-norm row or query has no direction; its distance is
/// defined as 1 (orthogonal), never NaN. `query_norm` is the Euclidean
/// norm of `query`.
void row_cosine_distances(const double* rows, const double* row_norms,
                          std::size_t dims, const double* query,
                          double query_norm, std::size_t row_begin,
                          std::size_t row_end, double* out);

/// Euclidean norms of each row of a row-major matrix, in index order.
[[nodiscard]] std::vector<double> row_norms(const double* rows,
                                            std::size_t num_rows,
                                            std::size_t dims);

}  // namespace echoimage::linalg
