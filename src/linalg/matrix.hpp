// Small dense matrix types for array processing.
//
// MVDR weights (paper Eq. 8) need Hermitian solves of M x M covariance
// matrices where M is the microphone count (6 for a ReSpeaker-class array),
// so a simple dense row-major implementation is the right tool.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/signal.hpp"

namespace echoimage::linalg {

using Complex = echoimage::dsp::Complex;

/// Dense row-major complex matrix.
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols,
          Complex fill = Complex(0.0, 0.0));

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] Complex& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const Complex& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<Complex>& data() const { return data_; }

  /// Identity matrix of size n.
  [[nodiscard]] static CMatrix identity(std::size_t n);

  /// Conjugate transpose.
  [[nodiscard]] CMatrix hermitian() const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// this += alpha * I (diagonal loading). Throws when not square.
  void add_diagonal(double alpha);

  /// Mean of the diagonal's real parts (used to scale diagonal loading).
  [[nodiscard]] double mean_diagonal_real() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<Complex> data_;
};

/// Matrix product A * B. Throws std::invalid_argument on shape mismatch.
[[nodiscard]] CMatrix multiply(const CMatrix& a, const CMatrix& b);

/// Matrix-vector product A * x.
[[nodiscard]] std::vector<Complex> multiply(const CMatrix& a,
                                            const std::vector<Complex>& x);

/// Allocation-reusing matrix-vector product: out = A * x (resized to fit).
/// Same operation order as `multiply`, so results are bit-identical.
/// `out` must not alias `x`.
void multiply_into(const CMatrix& a, const std::vector<Complex>& x,
                   std::vector<Complex>& out);

/// Inner product x^H y.
[[nodiscard]] Complex hdot(const std::vector<Complex>& x,
                           const std::vector<Complex>& y);

/// Outer product x y^H as a matrix.
[[nodiscard]] CMatrix outer(const std::vector<Complex>& x,
                            const std::vector<Complex>& y);

/// Solve A x = b for Hermitian positive-definite A via Cholesky
/// factorization. Throws std::invalid_argument on shape mismatch and
/// std::runtime_error when A is not (numerically) positive definite.
[[nodiscard]] std::vector<Complex> solve_hermitian(
    const CMatrix& a, const std::vector<Complex>& b);

/// Robust variant: retries with geometrically increasing diagonal loading
/// (relative to the mean diagonal) until the Cholesky succeeds.
[[nodiscard]] std::vector<Complex> solve_hermitian_loaded(
    const CMatrix& a, const std::vector<Complex>& b,
    double initial_loading = 1e-9);

/// General inverse via Gauss-Jordan with partial pivoting. Throws
/// std::runtime_error for (numerically) singular input.
[[nodiscard]] CMatrix inverse(const CMatrix& a);

}  // namespace echoimage::linalg
