#include "linalg/dense.hpp"

#include <cmath>

namespace echoimage::linalg {

double dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double squared_norm(const double* a, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * a[i];
  return acc;
}

double squared_distance(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

void row_squared_distances(const double* rows, std::size_t dims,
                           const double* query, std::size_t row_begin,
                           std::size_t row_end, double* out) {
  for (std::size_t r = row_begin; r < row_end; ++r)
    out[r] = squared_distance(rows + r * dims, query, dims);
}

void row_cosine_distances(const double* rows, const double* row_norms,
                          std::size_t dims, const double* query,
                          double query_norm, std::size_t row_begin,
                          std::size_t row_end, double* out) {
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const double denom = row_norms[r] * query_norm;
    out[r] = denom > 0.0
                 ? 1.0 - dot(rows + r * dims, query, dims) / denom
                 : 1.0;
  }
}

std::vector<double> row_norms(const double* rows, std::size_t num_rows,
                              std::size_t dims) {
  std::vector<double> norms(num_rows);
  for (std::size_t r = 0; r < num_rows; ++r)
    norms[r] = std::sqrt(squared_norm(rows + r * dims, dims));
  return norms;
}

}  // namespace echoimage::linalg
