#include "linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace echoimage::linalg {

CMatrix::CMatrix(std::size_t rows, std::size_t cols, Complex fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = Complex(1.0, 0.0);
  return m;
}

CMatrix CMatrix::hermitian() const {
  CMatrix m(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      m(c, r) = std::conj((*this)(r, c));
  return m;
}

double CMatrix::frobenius_norm() const {
  double s = 0.0;
  for (const Complex& v : data_) s += std::norm(v);
  return std::sqrt(s);
}

void CMatrix::add_diagonal(double alpha) {
  if (rows_ != cols_)
    throw std::invalid_argument("add_diagonal: matrix must be square");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += alpha;
}

double CMatrix::mean_diagonal_real() const {
  if (rows_ == 0 || rows_ != cols_) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, i).real();
  return s / static_cast<double>(rows_);
}

CMatrix multiply(const CMatrix& a, const CMatrix& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("multiply: shape mismatch");
  CMatrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const Complex aik = a(i, k);
      if (aik == Complex(0.0, 0.0)) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  return out;
}

std::vector<Complex> multiply(const CMatrix& a, const std::vector<Complex>& x) {
  if (a.cols() != x.size())
    throw std::invalid_argument("multiply: shape mismatch");
  std::vector<Complex> out(a.rows(), Complex(0.0, 0.0));
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) out[i] += a(i, j) * x[j];
  return out;
}

void multiply_into(const CMatrix& a, const std::vector<Complex>& x,
                   std::vector<Complex>& out) {
  if (a.cols() != x.size())
    throw std::invalid_argument("multiply_into: shape mismatch");
  out.assign(a.rows(), Complex(0.0, 0.0));
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) out[i] += a(i, j) * x[j];
}

Complex hdot(const std::vector<Complex>& x, const std::vector<Complex>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("hdot: length mismatch");
  Complex s(0.0, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) s += std::conj(x[i]) * y[i];
  return s;
}

CMatrix outer(const std::vector<Complex>& x, const std::vector<Complex>& y) {
  CMatrix m(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = 0; j < y.size(); ++j)
      m(i, j) = x[i] * std::conj(y[j]);
  return m;
}

namespace {

// Lower-triangular Cholesky factor of a Hermitian positive-definite matrix;
// throws std::runtime_error when a non-positive pivot appears.
CMatrix cholesky(const CMatrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n)
    throw std::invalid_argument("cholesky: matrix must be square");
  CMatrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      Complex s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * std::conj(l(j, k));
      if (i == j) {
        const double d = s.real();
        if (d <= 0.0 || !std::isfinite(d))
          throw std::runtime_error("cholesky: matrix not positive definite");
        l(i, i) = Complex(std::sqrt(d), 0.0);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

}  // namespace

std::vector<Complex> solve_hermitian(const CMatrix& a,
                                     const std::vector<Complex>& b) {
  const std::size_t n = a.rows();
  if (b.size() != n)
    throw std::invalid_argument("solve_hermitian: shape mismatch");
  const CMatrix l = cholesky(a);
  // Forward substitution: L y = b.
  std::vector<Complex> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Backward substitution: L^H x = y.
  std::vector<Complex> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    Complex s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= std::conj(l(k, ii)) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::vector<Complex> solve_hermitian_loaded(const CMatrix& a,
                                            const std::vector<Complex>& b,
                                            double initial_loading) {
  const double scale = std::max(a.mean_diagonal_real(), 1e-300);
  double loading = initial_loading;
  CMatrix work = a;
  for (int attempt = 0; attempt < 40; ++attempt) {
    try {
      return solve_hermitian(work, b);
    } catch (const std::runtime_error&) {
      work = a;
      work.add_diagonal(loading * scale);
      loading *= 10.0;
    }
  }
  throw std::runtime_error(
      "solve_hermitian_loaded: failed even with heavy diagonal loading");
}

CMatrix inverse(const CMatrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n)
    throw std::invalid_argument("inverse: matrix must be square");
  CMatrix aug = a;
  CMatrix inv = CMatrix::identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot on the largest magnitude in this column.
    std::size_t pivot = col;
    double best = std::abs(aug(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = std::abs(aug(r, col));
      if (m > best) {
        best = m;
        pivot = r;
      }
    }
    if (best < 1e-300) throw std::runtime_error("inverse: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(aug(pivot, c), aug(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const Complex d = aug(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      aug(col, c) /= d;
      inv(col, c) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const Complex f = aug(r, col);
      if (f == Complex(0.0, 0.0)) continue;
      for (std::size_t c = 0; c < n; ++c) {
        aug(r, c) -= f * aug(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

}  // namespace echoimage::linalg
