#include "array/doa.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/matrix.hpp"

namespace echoimage::array {

using echoimage::dsp::Complex;
using echoimage::linalg::CMatrix;

DoaEstimator::DoaEstimator(DoaConfig config, ArrayGeometry geometry)
    : config_(config), geometry_(std::move(geometry)) {
  if (config_.azimuth_steps == 0 || config_.elevation_steps == 0)
    throw std::invalid_argument("DoaEstimator: zero scan resolution");
}

Direction DoaEstimator::direction_at(std::size_t index) const {
  const std::size_t az = index % config_.azimuth_steps;
  const std::size_t el = index / config_.azimuth_steps;
  Direction d;
  d.theta = 2.0 * std::numbers::pi * static_cast<double>(az) /
            static_cast<double>(config_.azimuth_steps);
  // Elevations strictly inside (0, pi): endpoints are degenerate for a
  // planar array.
  d.phi = std::numbers::pi * (static_cast<double>(el) + 0.5) /
          static_cast<double>(config_.elevation_steps);
  return d;
}

std::vector<double> DoaEstimator::spectrum(
    const std::vector<echoimage::dsp::ComplexSignal>& channels,
    std::size_t first, std::size_t count) const {
  if (channels.size() != geometry_.num_mics())
    throw std::invalid_argument("DoaEstimator: channel/mic mismatch");
  const CMatrix r = spatial_covariance(channels, first, count);
  CMatrix r_inv;
  if (config_.use_mvdr) {
    CMatrix loaded = r;
    loaded.add_diagonal(1e-3 * std::max(r.mean_diagonal_real(), 1e-12));
    r_inv = echoimage::linalg::inverse(loaded);
  }

  const std::size_t n = config_.azimuth_steps * config_.elevation_steps;
  std::vector<double> spec(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Direction d = direction_at(i);
    const auto a = steering_vector_hz(geometry_, d, config_.freq,
                                      config_.speed_of_sound);
    if (config_.use_mvdr) {
      // MVDR pseudo-spectrum: 1 / (a^H R^-1 a).
      const auto ra = echoimage::linalg::multiply(r_inv, a);
      const Complex denom = echoimage::linalg::hdot(a, ra);
      spec[i] = 1.0 / std::max(std::abs(denom), 1e-30);
    } else {
      // Steered response power: a^H R a / M^2.
      const auto ra = echoimage::linalg::multiply(r, a);
      const Complex num = echoimage::linalg::hdot(a, ra);
      const double m = static_cast<double>(geometry_.num_mics());
      spec[i] = std::abs(num) / (m * m);
    }
  }
  return spec;
}

DoaEstimate DoaEstimator::estimate(
    const std::vector<echoimage::dsp::ComplexSignal>& channels,
    std::size_t first, std::size_t count) const {
  const std::vector<double> spec = spectrum(channels, first, count);
  std::size_t best = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    if (spec[i] > spec[best]) best = i;
    sum += spec[i];
  }
  DoaEstimate out;
  out.direction = direction_at(best);
  out.power = spec[best];
  out.mean_power = sum / static_cast<double>(spec.size());
  return out;
}

}  // namespace echoimage::array
