#include "array/steering.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace echoimage::array {

Direction direction_to_point(const Vec3& p) {
  const double r = p.norm();
  if (r <= 0.0)
    throw std::domain_error("direction_to_point: point at the origin");
  Direction d;
  d.phi = std::acos(std::clamp(p.z / r, -1.0, 1.0));
  d.theta = std::atan2(p.y, p.x);
  return d;
}

Vec3 line_of_sight(const Direction& dir) {
  const double sp = std::sin(dir.phi);
  return Vec3{sp * std::cos(dir.theta), sp * std::sin(dir.theta),
              std::cos(dir.phi)};
}

Vec3 propagation_vector(const Direction& dir) {
  return line_of_sight(dir) * -1.0;
}

units::Seconds tdoa(const ArrayGeometry& geom, const Direction& dir,
                    std::size_t mic, units::MetersPerSecond speed_of_sound) {
  const Vec3 v = propagation_vector(dir);
  // Meters / MetersPerSecond -> Seconds; the same double division as ever.
  return units::Meters{v.dot(geom.mic(mic))} / speed_of_sound;
}

std::vector<double> tdoas(const ArrayGeometry& geom, const Direction& dir,
                          units::MetersPerSecond speed_of_sound) {
  std::vector<double> out(geom.num_mics());
  const Vec3 v = propagation_vector(dir);
  const double c = speed_of_sound.value();
  for (std::size_t m = 0; m < geom.num_mics(); ++m)
    out[m] = v.dot(geom.mic(m)) / c;
  return out;
}

std::vector<Complex> steering_vector(const ArrayGeometry& geom,
                                     const Direction& dir, double omega,
                                     units::MetersPerSecond speed_of_sound) {
  std::vector<Complex> a(geom.num_mics());
  const Vec3 v = propagation_vector(dir);
  const double c = speed_of_sound.value();
  for (std::size_t m = 0; m < geom.num_mics(); ++m) {
    // a_m = exp(-j k^T p_m) with k = (omega / c) v(Omega): conjugate of
    // the arriving wave's phase so that w ~ a aligns the channels.
    const double phase = -(omega / c) * v.dot(geom.mic(m));
    a[m] = std::polar(1.0, phase);
  }
  return a;
}

std::vector<Complex> steering_vector_hz(const ArrayGeometry& geom,
                                        const Direction& dir, units::Hertz freq,
                                        units::MetersPerSecond speed_of_sound) {
  return steering_vector(geom, dir, 2.0 * std::numbers::pi * freq.value(),
                         speed_of_sound);
}

void steering_vector_into(const ArrayGeometry& geom, const Direction& dir,
                          double omega, units::MetersPerSecond speed_of_sound,
                          std::vector<Complex>& out) {
  out.resize(geom.num_mics());
  const Vec3 v = propagation_vector(dir);
  const double c = speed_of_sound.value();
  for (std::size_t m = 0; m < geom.num_mics(); ++m) {
    const double phase = -(omega / c) * v.dot(geom.mic(m));
    out[m] = std::polar(1.0, phase);
  }
}

std::vector<Complex> steering_vector(const ArrayGeometry& geom,
                                     const Direction& dir, double omega,
                                     const ChannelMask& mask,
                                     units::MetersPerSecond speed_of_sound) {
  return steering_vector(geom.subarray(mask), dir, omega, speed_of_sound);
}

std::vector<Complex> steering_vector_hz(const ArrayGeometry& geom,
                                        const Direction& dir, units::Hertz freq,
                                        const ChannelMask& mask,
                                        units::MetersPerSecond speed_of_sound) {
  return steering_vector_hz(geom.subarray(mask), dir, freq, speed_of_sound);
}

}  // namespace echoimage::array
