// Spatial covariance estimation for MVDR beamforming.
//
// The MVDR weights (paper Eq. 8) need rho_n, the normalized covariance of
// the background noise across the M microphones. We estimate it from
// noise-only snapshots (samples before the probing chirp fires) of the
// analytic signals, or per STFT bin for the subband engine.
#pragma once

#include <cstddef>
#include <vector>

#include "array/geometry.hpp"
#include "linalg/matrix.hpp"

namespace echoimage::array {

using echoimage::dsp::Complex;
using echoimage::dsp::ComplexSignal;
using echoimage::linalg::CMatrix;

/// Sample covariance R = (1/N) sum_t x(t) x(t)^H over snapshots
/// t in [first, first+count) of the per-channel analytic signals. Channels
/// shorter than the range contribute zeros. Throws std::invalid_argument
/// when `channels` is empty or count == 0.
[[nodiscard]] CMatrix spatial_covariance(
    const std::vector<ComplexSignal>& channels, std::size_t first,
    std::size_t count);

/// Covariance normalized so that the mean diagonal equals 1 (the paper's
/// "normalized covariance matrix of the background noise"). Degenerate
/// (all-zero) input falls back to the identity.
[[nodiscard]] CMatrix normalized_covariance(
    const std::vector<ComplexSignal>& channels, std::size_t first,
    std::size_t count);

/// Identity covariance of size M — the spatially-white-noise assumption
/// under which MVDR reduces to delay-and-sum.
[[nodiscard]] CMatrix white_noise_covariance(std::size_t num_mics);

/// Masked variants: only channels whose mask entry is true contribute, and
/// the result has size = number of active channels (order preserved) — the
/// covariance the surviving subarray actually sees, rather than a full-size
/// matrix poisoned by a dead channel's zeros or garbage. An empty mask
/// means all channels. Throws std::invalid_argument on a mask length
/// mismatch or when the mask leaves no channel.
[[nodiscard]] CMatrix spatial_covariance(
    const std::vector<ComplexSignal>& channels, std::size_t first,
    std::size_t count, const ChannelMask& mask);
[[nodiscard]] CMatrix normalized_covariance(
    const std::vector<ComplexSignal>& channels, std::size_t first,
    std::size_t count, const ChannelMask& mask);

/// Keep only the masked channels (empty mask = all). Shared by every
/// masked array-layer entry point.
[[nodiscard]] std::vector<ComplexSignal> select_channels(
    const std::vector<ComplexSignal>& channels, const ChannelMask& mask);

/// Principal submatrix of a covariance over the active channels.
[[nodiscard]] CMatrix masked_covariance(const CMatrix& full,
                                        const ChannelMask& mask);

}  // namespace echoimage::array
