// Spatial covariance estimation for MVDR beamforming.
//
// The MVDR weights (paper Eq. 8) need rho_n, the normalized covariance of
// the background noise across the M microphones. We estimate it from
// noise-only snapshots (samples before the probing chirp fires) of the
// analytic signals, or per STFT bin for the subband engine.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace echoimage::array {

using echoimage::dsp::Complex;
using echoimage::dsp::ComplexSignal;
using echoimage::linalg::CMatrix;

/// Sample covariance R = (1/N) sum_t x(t) x(t)^H over snapshots
/// t in [first, first+count) of the per-channel analytic signals. Channels
/// shorter than the range contribute zeros. Throws std::invalid_argument
/// when `channels` is empty or count == 0.
[[nodiscard]] CMatrix spatial_covariance(
    const std::vector<ComplexSignal>& channels, std::size_t first,
    std::size_t count);

/// Covariance normalized so that the mean diagonal equals 1 (the paper's
/// "normalized covariance matrix of the background noise"). Degenerate
/// (all-zero) input falls back to the identity.
[[nodiscard]] CMatrix normalized_covariance(
    const std::vector<ComplexSignal>& channels, std::size_t first,
    std::size_t count);

/// Identity covariance of size M — the spatially-white-noise assumption
/// under which MVDR reduces to delay-and-sum.
[[nodiscard]] CMatrix white_noise_covariance(std::size_t num_mics);

}  // namespace echoimage::array
