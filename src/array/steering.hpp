// Far-field steering model (paper Eq. 5-7).
//
// A plane wave arriving from incident angle Omega = {theta, phi} (azimuth,
// elevation) propagates along v(Omega); each microphone sees the source with
// a TDOA tau_m relative to the array origin, equivalently a narrowband phase
// shift -k^T(Omega) p_m. The steering vector stacks those phases.
#pragma once

#include <vector>

#include "array/geometry.hpp"
#include "dsp/signal.hpp"

namespace echoimage::array {

using Complex = echoimage::dsp::Complex;

/// Incident direction: azimuth theta (from +x toward +y) and elevation phi
/// (from +z), both radians — the spherical convention of paper Fig. 1.
struct Direction {
  double theta = 0.0;
  double phi = 0.0;
};

/// Direction pointing from the origin toward a point in space. Throws
/// std::domain_error for the origin itself.
[[nodiscard]] Direction direction_to_point(const Vec3& p);

/// Unit vector from the origin toward direction Omega (the line of sight).
[[nodiscard]] Vec3 line_of_sight(const Direction& dir);

/// Sound propagation vector v(Omega) = -[sin phi cos theta, sin phi sin
/// theta, cos phi]^T (paper Eq. 5) — points from the source toward the array.
[[nodiscard]] Vec3 propagation_vector(const Direction& dir);

/// TDOA of microphone m relative to the origin: tau_m = v^T(Omega) p_m / c
/// (positive = arrives later than the origin). For a plane wave with
/// propagation direction v the field is s(t - (p . v)/c), so a microphone
/// on the source side (p . v < 0) hears the wavefront early. Note the
/// paper's Eq. 6 carries the opposite sign; combined with its Eq. 7/8 the
/// two sign flips cancel, and this library uses the physically anchored
/// convention throughout (validated against the renderer in the tests).
[[nodiscard]] units::Seconds tdoa(
    const ArrayGeometry& geom, const Direction& dir, std::size_t mic,
    units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps);

/// All M TDOAs, as raw seconds (the beamformers' hot-path input).
[[nodiscard]] std::vector<double> tdoas(
    const ArrayGeometry& geom, const Direction& dir,
    units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps);

/// Narrowband steering vector at angular frequency omega — rad/s, a raw
/// double by design: omega only exists inside phase math (paper Eq. 8's
/// p_s): a_m = exp(-j omega tau_m) = exp(-j k^T(Omega) p_m), the phase
/// signature conjugate to what a unit plane wave from Omega leaves on the
/// array, so w ~ a aligns the channels.
[[nodiscard]] std::vector<Complex> steering_vector(
    const ArrayGeometry& geom, const Direction& dir, double omega,
    units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps);

/// Steering vector at acoustic frequency `freq` (omega = 2 pi f).
[[nodiscard]] std::vector<Complex> steering_vector_hz(
    const ArrayGeometry& geom, const Direction& dir, units::Hertz freq,
    units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps);

/// Allocation-reusing variant for hot loops: the steering vector written
/// into `out` (resized to fit). Bit-identical to `steering_vector`.
void steering_vector_into(const ArrayGeometry& geom, const Direction& dir,
                          double omega, units::MetersPerSecond speed_of_sound,
                          std::vector<Complex>& out);

/// Masked steering vectors: the steering vector of the surviving subarray
/// (entries only for active microphones, order preserved) — pairs with the
/// masked covariance so MVDR runs on healthy channels alone. An empty mask
/// is the full array.
[[nodiscard]] std::vector<Complex> steering_vector(
    const ArrayGeometry& geom, const Direction& dir, double omega,
    const ChannelMask& mask,
    units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps);
[[nodiscard]] std::vector<Complex> steering_vector_hz(
    const ArrayGeometry& geom, const Direction& dir, units::Hertz freq,
    const ChannelMask& mask,
    units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps);

}  // namespace echoimage::array
