// Memoized beamformer weights for the imaging hot path.
//
// Constructing one acoustic image steers the array to G x G grid
// directions per spectral band; each MVDR steer costs a steering-vector
// evaluation (per-channel trig) plus a covariance solve. All of that is a
// pure function of (grid geometry, plane distance, speed of sound,
// surviving subarray, noise covariance), so repeated beeps at the same
// estimated distance — the common case, since a batch shares one distance
// estimate and users stand still between beeps — can reuse the weights
// verbatim.
//
// Keying. An entry is identified by:
//   * band + grid index          — which steering direction,
//   * quantized plane distance   — distances within one quantum share an
//                                  entry (the stored weights are the ones
//                                  computed at the first-seen distance;
//                                  the default 1 mm quantum is far below
//                                  the distance estimator's noise floor),
//   * speed-of-sound bit pattern — a recalibrated c can never alias a
//                                  stale entry,
//   * channel-mask bits          — a degraded subarray can never alias the
//                                  full array (weight vectors even differ
//                                  in length),
//   * covariance fingerprint     — a different noise field invalidates the
//                                  MVDR solve,
//   * mvdr flag                  — MVDR and delay-and-sum never mix,
//   * numeric lane               — weights are f64 in both lanes, but the
//                                  energies they feed are not; keeping f32
//                                  and f64 imaging runs in separate entries
//                                  keeps each lane's bit-replay honest.
//
// Determinism. Weights are computed by the caller and inserted verbatim;
// a hit returns exactly the bits a recompute would produce (the weight
// computation is deterministic), so cache-on and cache-off imaging are
// bit-identical. Eviction is wholesale: when the entry cap is reached the
// cache is flushed and re-seeded, so a lookup can never observe a
// partially evicted (stale) state.
//
// Thread safety: lookups take a shared lock, inserts an exclusive lock
// on a runtime::sync::SharedMutex capability, so the entry map's lock
// discipline is proven by the Clang thread-safety build; hit/miss
// accounting goes through obs::Counter handles (sharded per pool worker,
// merged exactly on read). By default the cache binds counters in a
// private registry; `attach_metrics` rebinds them into the system-wide
// observability registry so cache behaviour shows up in trace reports.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "array/covariance.hpp"
#include "array/geometry.hpp"
#include "obs/metrics.hpp"
#include "runtime/sync.hpp"

namespace echoimage::array {

struct WeightKey {
  std::uint32_t band = 0;
  std::uint32_t grid_index = 0;
  std::int64_t distance_q = 0;     ///< quantized plane distance
  std::uint64_t speed_bits = 0;    ///< bit pattern of the speed of sound
  std::uint64_t mask_bits = 0;     ///< active-channel bitset (see mask_bits)
  std::uint64_t cov_fingerprint = 0;
  bool mvdr = true;
  std::uint8_t lane = 0;  ///< simd::NumericLane of the consuming imager

  bool operator==(const WeightKey&) const = default;
};

struct WeightKeyHash {
  [[nodiscard]] std::size_t operator()(const WeightKey& k) const;
};

struct WeightCacheConfig {
  /// Entry cap; reaching it flushes the cache (wholesale eviction). The
  /// default holds ~20 full 48x48 x 5-band images worth of weights.
  std::size_t capacity = 1u << 18;
  /// Plane distances are quantized to this step for the key; <= 0 keys on
  /// the exact bit pattern.
  units::Meters distance_quantum{1e-3};
};

struct WeightCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t flushes = 0;  ///< wholesale evictions

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class WeightCache {
 public:
  explicit WeightCache(WeightCacheConfig config = {});

  [[nodiscard]] const WeightCacheConfig& config() const { return config_; }

  /// Distance quantization used for keys (bit pattern when quantum <= 0).
  [[nodiscard]] std::int64_t quantize_distance(units::Meters distance) const;

  /// Canonical 64-bit encoding of an active-channel mask (empty mask = all
  /// `num_channels` active). Masks beyond 64 channels are rejected with
  /// std::invalid_argument — far beyond any supported array.
  [[nodiscard]] static std::uint64_t mask_bits(const ChannelMask& mask,
                                               std::size_t num_channels);

  /// FNV-1a over the covariance matrix bytes + shape: entries solved
  /// against different noise fields never collide in practice.
  [[nodiscard]] static std::uint64_t fingerprint(const CMatrix& cov);

  /// Copy the cached weights into `out` and count a hit; false (and a
  /// counted miss) when absent.
  [[nodiscard]] bool lookup(const WeightKey& key,
                            std::vector<Complex>& out) const;

  /// Insert (first writer wins; a racing duplicate is dropped — both
  /// computed identical bits).
  void insert(const WeightKey& key, const std::vector<Complex>& weights);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] WeightCacheStats stats() const;
  /// Zero the counters (const: accounting is observational state, so a
  /// bench can reset it through the imager's read-only cache handle).
  void reset_stats() const;
  void clear();

  /// Rebind the accounting counters (`weight_cache.hits` etc.) into an
  /// external registry — the system observability registry — instead of
  /// the private fallback. Counts recorded before the rebind stay in the
  /// old registry, so attach before first use. `registry` must outlive
  /// this cache.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  void bind_counters(obs::MetricsRegistry& registry);

  WeightCacheConfig config_;
  runtime::sync::SharedMutex mutex_;
  std::unordered_map<WeightKey, std::vector<Complex>, WeightKeyHash> entries_
      EI_GUARDED_BY(mutex_);
  /// Owns the counters until attach_metrics points them elsewhere.
  std::shared_ptr<obs::MetricsRegistry> fallback_registry_;
  const obs::Counter* hits_ = nullptr;
  const obs::Counter* misses_ = nullptr;
  const obs::Counter* insertions_ = nullptr;
  const obs::Counter* flushes_ = nullptr;
};

}  // namespace echoimage::array
