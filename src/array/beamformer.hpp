// Beamformer weight computation and application (paper Sec. III-D).
//
// Three engines, all steerable to an arbitrary Direction:
//  * narrowband MVDR / delay-and-sum: complex weights at the chirp's center
//    frequency applied directly to per-channel analytic signals — the cheap
//    path used for imaging (one weight vector per virtual-plane grid);
//  * broadband true-time-delay-and-sum: exact fractional-sample alignment
//    via FFT phase ramps — the baseline for ablations;
//  * subband MVDR: per-STFT-bin weights — exact for the 40%-fractional-
//    bandwidth chirp, used when narrowband error matters.
#pragma once

#include <cstddef>
#include <vector>

#include "array/covariance.hpp"
#include "array/geometry.hpp"
#include "array/steering.hpp"
#include "dsp/stft.hpp"
#include "simd/aligned.hpp"
#include "simd/isa.hpp"

namespace echoimage::array {

using echoimage::dsp::MultiChannelSignal;
using echoimage::dsp::Signal;

/// MVDR weights w = R^-1 a / (a^H R^-1 a) (paper Eq. 8), with relative
/// diagonal loading for numerical robustness. Throws std::invalid_argument
/// on shape mismatch.
[[nodiscard]] std::vector<Complex> mvdr_weights(const CMatrix& noise_cov,
                                                const std::vector<Complex>& steering,
                                                double diagonal_loading = 1e-6);

/// Delay-and-sum weights w = a / M (the MVDR solution for spatially white
/// noise).
[[nodiscard]] std::vector<Complex> das_weights(
    const std::vector<Complex>& steering);

/// Beamformer output y(t) = w^H x(t) on per-channel analytic signals.
/// Channels may differ in length; the output has the maximum length with
/// missing samples treated as zero.
[[nodiscard]] echoimage::dsp::ComplexSignal apply_weights(
    const std::vector<echoimage::dsp::ComplexSignal>& channels,
    const std::vector<Complex>& w);

/// Shift a real signal by `delay_s` seconds (positive = later) with an FFT
/// phase ramp — exact fractional-sample delay, circular edges zero-suppressed
/// by internal padding.
[[nodiscard]] Signal fractional_delay(std::span<const echoimage::dsp::Sample> x,
                                      double sample_rate, double delay_s);

/// Broadband true-time-delay-and-sum toward `dir`: advances each channel by
/// its TDOA and averages.
[[nodiscard]] Signal beamform_das_broadband(
    const MultiChannelSignal& x, const ArrayGeometry& geom,
    const Direction& dir, double sample_rate,
    units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps);

/// Narrowband steering engine: computes per-channel analytic signals and the
/// (loaded, inverted) noise covariance once, then steers to many directions
/// cheaply. This is the workhorse of acoustic-image construction, where one
/// capture is steered to every grid of the imaging plane.
class NarrowbandBeamformer {
 public:
  /// `bandpassed` is the band-pass-filtered capture; the noise covariance is
  /// estimated from analytic snapshots [noise_first, noise_first +
  /// noise_count) (pass noise_count = 0 for the white-noise assumption).
  /// `active_mask` (empty = all) drops faulty channels before anything else:
  /// the beamformer then operates as the surviving subarray, so one dead
  /// microphone cannot poison the covariance of Eq. 8.
  NarrowbandBeamformer(const MultiChannelSignal& bandpassed,
                       double sample_rate, units::Hertz center_freq,
                       ArrayGeometry geom, std::size_t noise_first = 0,
                       std::size_t noise_count = 0,
                       units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps,
                       const ChannelMask& active_mask = {});

  /// Variant with an externally estimated noise covariance (e.g. from a
  /// separate noise-only capture — estimating it from a prefix of the same
  /// buffer is biased: the Hilbert transform is nonlocal, so a strong chirp
  /// later in the buffer leaks coherent tails into the prefix). The
  /// covariance is full-size; the mask reduces it to the subarray.
  NarrowbandBeamformer(const MultiChannelSignal& bandpassed,
                       double sample_rate, units::Hertz center_freq,
                       ArrayGeometry geom, CMatrix noise_covariance,
                       units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps,
                       const ChannelMask& active_mask = {});

  /// Variant taking per-channel complex (analytic or pulse-compressed)
  /// signals directly. `lane` picks the numeric lane for the energy
  /// kernels: kF64 is bit-identical to the historical scalar loops; kF32
  /// converts the channels once to interleaved float (kept alongside the
  /// f64 data) and evaluates energies in single precision — a pinned
  /// relative-error bound away from kF64 (DESIGN.md, "SIMD &
  /// numeric-lane model"). Weight computation stays f64 in both lanes.
  NarrowbandBeamformer(std::vector<echoimage::dsp::ComplexSignal> channels,
                       double sample_rate, units::Hertz center_freq,
                       ArrayGeometry geom, CMatrix noise_covariance,
                       units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps,
                       const ChannelMask& active_mask = {},
                       simd::NumericLane lane = simd::NumericLane::kF64);

  /// Copies rebuild the kernel-facing channel-pointer arrays against their
  /// own buffers (the default member-wise copy would leave them aimed into
  /// the source object). Moves transfer the heap buffers wholesale, so the
  /// pointer arrays stay valid and the defaults are correct.
  NarrowbandBeamformer(const NarrowbandBeamformer& other);
  NarrowbandBeamformer& operator=(const NarrowbandBeamformer& other);
  NarrowbandBeamformer(NarrowbandBeamformer&&) = default;
  NarrowbandBeamformer& operator=(NarrowbandBeamformer&&) = default;

  /// Geometry of the (possibly reduced) subarray this beamformer runs on.
  [[nodiscard]] const ArrayGeometry& geometry() const { return geom_; }
  [[nodiscard]] double sample_rate() const { return sample_rate_; }
  [[nodiscard]] double center_frequency_hz() const { return center_freq_hz_; }
  [[nodiscard]] std::size_t length() const { return length_; }
  [[nodiscard]] const std::vector<echoimage::dsp::ComplexSignal>& analytic()
      const {
    return analytic_;
  }
  [[nodiscard]] const CMatrix& noise_covariance() const { return noise_cov_; }

  /// MVDR weights toward `dir` at the center frequency.
  [[nodiscard]] std::vector<Complex> weights_mvdr(const Direction& dir) const;

  /// Delay-and-sum weights toward `dir`.
  [[nodiscard]] std::vector<Complex> weights_das(const Direction& dir) const;

  /// Allocation-reusing variant for hot loops: weights toward `dir`
  /// (MVDR or delay-and-sum) written into `out`, with `scratch` holding
  /// the steering vector. Bit-identical to the returning overloads.
  void compute_weights(const Direction& dir, bool use_mvdr,
                       std::vector<Complex>& scratch,
                       std::vector<Complex>& out) const;

  /// Steered analytic output y(t) = w^H x(t) with MVDR weights.
  [[nodiscard]] echoimage::dsp::ComplexSignal steer(const Direction& dir) const;

  /// Steered analytic output with delay-and-sum weights.
  [[nodiscard]] echoimage::dsp::ComplexSignal steer_das(
      const Direction& dir) const;

  /// Energy (sum |y|^2) of the steered output restricted to
  /// [first, first+count) — the imaging inner loop, avoids materializing y.
  [[nodiscard]] double steered_energy(const Direction& dir, std::size_t first,
                                      std::size_t count, bool use_mvdr) const;

  /// Same energy from precomputed weights (e.g. a WeightCache hit). The
  /// weight vector must match the (masked) channel count.
  [[nodiscard]] double steered_energy(const std::vector<Complex>& w,
                                      std::size_t first,
                                      std::size_t count) const;

  /// Incoherent (phase-free) energy: mean over microphones of the per-
  /// channel energy in [first, first+count). Direction-independent — pure
  /// range information, immune to inter-channel phase (speckle) flips.
  [[nodiscard]] double incoherent_energy(std::size_t first,
                                         std::size_t count) const;

  /// Numeric lane the energy kernels run on.
  [[nodiscard]] simd::NumericLane numeric_lane() const { return lane_; }

 private:
  /// Builds the kernel-facing channel pointer arrays (and, on the f32
  /// lane, the interleaved float copies). Called once per constructor
  /// after analytic_ is final.
  void finalize_channels();

  ArrayGeometry geom_;
  double sample_rate_;
  double center_freq_hz_;
  double speed_of_sound_;
  std::size_t length_ = 0;
  simd::NumericLane lane_ = simd::NumericLane::kF64;
  std::vector<echoimage::dsp::ComplexSignal> analytic_;
  std::vector<const Complex*> ch_ptrs_;  ///< kernel view of analytic_
  std::vector<simd::AlignedVector<float>> f32_channels_;  ///< kF32 only
  std::vector<const float*> f32_ptrs_;
  CMatrix noise_cov_;      ///< normalized, loaded
  CMatrix noise_cov_inv_;  ///< cached inverse for weight computation
};

/// Normalized spatial covariance of a (band-passed) noise-only capture:
/// analytic signal per channel, sample covariance over the full length.
[[nodiscard]] CMatrix noise_covariance_of(const MultiChannelSignal& noise);

/// Masked variant: covariance of the surviving subarray only (empty mask =
/// all channels).
[[nodiscard]] CMatrix noise_covariance_of(const MultiChannelSignal& noise,
                                          const ChannelMask& mask);

/// Subband MVDR: per-bin weights from per-bin steering vectors; noise
/// covariance estimated per bin over frames [noise_first_frame,
/// noise_first_frame + noise_frame_count) (0 count = white noise).
[[nodiscard]] Signal beamform_subband_mvdr(
    const MultiChannelSignal& x, const ArrayGeometry& geom,
    const Direction& dir, double sample_rate,
    const echoimage::dsp::StftParams& stft_params,
    std::size_t noise_first_frame = 0, std::size_t noise_frame_count = 0,
    units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps);

/// Power beampattern of a weight vector: |w^H a(dir)|^2 for each direction.
[[nodiscard]] std::vector<double> beampattern(
    const ArrayGeometry& geom, const std::vector<Complex>& w,
    units::Hertz freq, const std::vector<Direction>& dirs,
    units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps);

}  // namespace echoimage::array
