// Microphone array geometry (paper Sec. III-C and V-A).
//
// The reference device is a ReSpeaker-class uniform circular array: six
// microphones on a circle with ~5 cm adjacent spacing, speaker at the array
// center. Arbitrary geometries are supported for tests and ablations.
#pragma once

#include <cstddef>
#include <vector>

#include "units/units.hpp"

namespace echoimage::array {

namespace units = echoimage::units;

/// Speed of sound used throughout the paper's formulas (m/s, ~20 C air),
/// as a raw double for inner-loop math. Public signatures take the
/// strong-typed `kSpeedOfSoundMps` below.
inline constexpr double kSpeedOfSound = 343.0;

/// Strong-typed speed of sound — the default argument of every public
/// API that is parameterized on propagation speed.
inline constexpr units::MetersPerSecond kSpeedOfSoundMps{kSpeedOfSound};

/// Speed of sound in air at a given temperature: c = 331.3 *
/// sqrt(1 + T/273.15). A 10 C room-to-room difference shifts ranges by
/// ~1.7%, i.e. ~1 cm at the paper's 0.7 m operating distance — worth
/// calibrating on devices deployed across climates.
[[nodiscard]] units::MetersPerSecond speed_of_sound_at(
    units::Celsius temperature);

/// Inverse of `speed_of_sound_at`: the air temperature implied by a
/// measured speed of sound. Lets a recalibrator report *why* the ranges
/// shifted ("the room warmed 9 C") instead of a bare correction factor.
/// Throws std::invalid_argument for a non-positive speed.
[[nodiscard]] units::Celsius temperature_for_speed_of_sound(
    units::MetersPerSecond speed_of_sound);

/// 3-D point / vector with the handful of operations array processing needs.
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  [[nodiscard]] Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  [[nodiscard]] Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  [[nodiscard]] Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  [[nodiscard]] double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] double norm() const;
  [[nodiscard]] double distance_to(const Vec3& o) const {
    return (*this - o).norm();
  }
  /// Unit vector in the same direction; throws std::domain_error for the
  /// zero vector.
  [[nodiscard]] Vec3 normalized() const;
};

/// Per-microphone boolean mask: true = the channel is healthy and
/// participates in beamforming. An empty mask means "all active"
/// throughout the array layer.
using ChannelMask = std::vector<bool>;

/// Number of true entries of a mask.
[[nodiscard]] std::size_t count_active(const ChannelMask& mask);

/// Positions of the M microphones (paper Eq. 3-4), origin at array center.
class ArrayGeometry {
 public:
  ArrayGeometry() = default;
  explicit ArrayGeometry(std::vector<Vec3> mics);

  [[nodiscard]] std::size_t num_mics() const { return mics_.size(); }
  [[nodiscard]] const Vec3& mic(std::size_t m) const { return mics_[m]; }
  [[nodiscard]] const std::vector<Vec3>& mics() const { return mics_; }

  /// Geometry of the surviving subarray: only microphones whose mask entry
  /// is true, in the original order. Throws std::invalid_argument when the
  /// mask length mismatches or no microphone survives. An empty mask
  /// returns the full array.
  [[nodiscard]] ArrayGeometry subarray(const ChannelMask& mask) const;

  /// Centroid of the microphone positions.
  [[nodiscard]] Vec3 center() const;

  /// Largest pairwise microphone distance (the array aperture).
  [[nodiscard]] double aperture() const;

  /// Smallest adjacent-pair distance (for the grating-lobe criterion).
  [[nodiscard]] double min_adjacent_spacing() const;

 private:
  std::vector<Vec3> mics_;
};

/// Uniform circular array of `num_mics` microphones in the x-y plane
/// (z = 0), centered at the origin, with the given *adjacent* microphone
/// spacing (paper: 6 mics, ~5 cm spacing -> radius 5 cm).
[[nodiscard]] ArrayGeometry make_uniform_circular_array(
    std::size_t num_mics, units::Meters adjacent_spacing);

/// ReSpeaker-like default: 6 mics, 5 cm adjacent spacing.
[[nodiscard]] ArrayGeometry make_respeaker_array();

/// Uniform linear array along the x axis, centered on the origin — the
/// textbook geometry, useful for tests and for devices with bar-style
/// microphone layouts.
[[nodiscard]] ArrayGeometry make_uniform_linear_array(std::size_t num_mics,
                                                      units::Meters spacing);

/// Far-field minimum distance (paper Eq. 1): L >= 2 d^2 / lambda, where d is
/// the array aperture and lambda the wavelength of `freq`.
[[nodiscard]] units::Meters far_field_min_distance(
    units::Meters aperture, units::Hertz freq,
    units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps);

/// Highest frequency free of grating lobes for the given microphone spacing
/// (spacing < lambda/2, paper Sec. V-A).
[[nodiscard]] units::Hertz max_unambiguous_frequency(
    units::Meters spacing,
    units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps);

}  // namespace echoimage::array
