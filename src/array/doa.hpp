// Direction-of-arrival estimation from the spatial power spectrum.
//
// Related systems (e.g. 2MA, which the paper discusses) use the DoA of
// voice commands to detect remote attacks; this module offers the same
// capability over our beamforming substrate: scan a grid of directions,
// compute the steered response power (delay-and-sum SRP) or the MVDR
// spatial spectrum, and return the maxima.
#pragma once

#include <cstddef>
#include <vector>

#include "array/beamformer.hpp"

namespace echoimage::array {

struct DoaConfig {
  units::Hertz freq{2500.0};      ///< narrowband analysis frequency
  std::size_t azimuth_steps = 72; ///< theta resolution (5 degrees default)
  std::size_t elevation_steps = 18;  ///< phi resolution over (0, pi)
  bool use_mvdr = false;  ///< MVDR pseudo-spectrum instead of SRP
  units::MetersPerSecond speed_of_sound = kSpeedOfSoundMps;
};

struct DoaEstimate {
  Direction direction;     ///< spatial-spectrum argmax
  double power = 0.0;      ///< spectrum value at the peak
  double mean_power = 0.0; ///< average spectrum value (peak contrast ref)
};

/// Spatial spectrum scanner over analytic (or pulse-compressed) snapshots.
class DoaEstimator {
 public:
  DoaEstimator(DoaConfig config, ArrayGeometry geometry);

  /// Estimate from the sample covariance of snapshots [first, first+count)
  /// of per-channel complex signals. Throws std::invalid_argument on
  /// channel/geometry mismatch or an empty range.
  [[nodiscard]] DoaEstimate estimate(
      const std::vector<echoimage::dsp::ComplexSignal>& channels,
      std::size_t first, std::size_t count) const;

  /// Full spatial spectrum (row-major elevation x azimuth), for plotting.
  [[nodiscard]] std::vector<double> spectrum(
      const std::vector<echoimage::dsp::ComplexSignal>& channels,
      std::size_t first, std::size_t count) const;

  /// Direction corresponding to a spectrum index.
  [[nodiscard]] Direction direction_at(std::size_t index) const;

 private:
  DoaConfig config_;
  ArrayGeometry geometry_;
};

}  // namespace echoimage::array
