#include "array/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace echoimage::array {

double Vec3::norm() const { return std::sqrt(x * x + y * y + z * z); }

Vec3 Vec3::normalized() const {
  const double n = norm();
  if (n <= 0.0) throw std::domain_error("Vec3: cannot normalize zero vector");
  return {x / n, y / n, z / n};
}

ArrayGeometry::ArrayGeometry(std::vector<Vec3> mics) : mics_(std::move(mics)) {
  if (mics_.empty())
    throw std::invalid_argument("ArrayGeometry: need at least one microphone");
}

std::size_t count_active(const ChannelMask& mask) {
  return static_cast<std::size_t>(
      std::count(mask.begin(), mask.end(), true));
}

ArrayGeometry ArrayGeometry::subarray(const ChannelMask& mask) const {
  if (mask.empty()) return *this;
  if (mask.size() != mics_.size())
    throw std::invalid_argument("subarray: mask/mic count mismatch");
  std::vector<Vec3> kept;
  kept.reserve(mics_.size());
  for (std::size_t m = 0; m < mics_.size(); ++m)
    if (mask[m]) kept.push_back(mics_[m]);
  if (kept.empty())
    throw std::invalid_argument("subarray: mask leaves no microphone");
  return ArrayGeometry(std::move(kept));
}

Vec3 ArrayGeometry::center() const {
  Vec3 c;
  for (const Vec3& m : mics_) c = c + m;
  return c * (1.0 / static_cast<double>(mics_.size()));
}

double ArrayGeometry::aperture() const {
  double a = 0.0;
  for (std::size_t i = 0; i < mics_.size(); ++i)
    for (std::size_t j = i + 1; j < mics_.size(); ++j)
      a = std::max(a, mics_[i].distance_to(mics_[j]));
  return a;
}

double ArrayGeometry::min_adjacent_spacing() const {
  if (mics_.size() < 2) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < mics_.size(); ++i) {
    double nearest = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < mics_.size(); ++j) {
      if (i == j) continue;
      nearest = std::min(nearest, mics_[i].distance_to(mics_[j]));
    }
    best = std::min(best, nearest);
  }
  return best;
}

ArrayGeometry make_uniform_circular_array(std::size_t num_mics,
                                          units::Meters adjacent_spacing) {
  if (num_mics < 2)
    throw std::invalid_argument("uniform circular array: need >= 2 mics");
  if (adjacent_spacing.value() <= 0.0)
    throw std::invalid_argument("uniform circular array: spacing must be > 0");
  // Chord length c between adjacent mics on a circle of radius r spanning
  // angle 2*pi/M: c = 2 r sin(pi / M).
  const double r = adjacent_spacing.value() /
                   (2.0 * std::sin(std::numbers::pi /
                                   static_cast<double>(num_mics)));
  std::vector<Vec3> mics;
  mics.reserve(num_mics);
  for (std::size_t m = 0; m < num_mics; ++m) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(m) /
                       static_cast<double>(num_mics);
    mics.push_back(Vec3{r * std::cos(ang), r * std::sin(ang), 0.0});
  }
  return ArrayGeometry(std::move(mics));
}

ArrayGeometry make_respeaker_array() {
  return make_uniform_circular_array(6, units::Meters{0.05});
}

ArrayGeometry make_uniform_linear_array(std::size_t num_mics,
                                        units::Meters spacing) {
  if (num_mics < 2)
    throw std::invalid_argument("uniform linear array: need >= 2 mics");
  if (spacing.value() <= 0.0)
    throw std::invalid_argument("uniform linear array: spacing must be > 0");
  std::vector<Vec3> mics;
  mics.reserve(num_mics);
  const double spacing_m = spacing.value();
  const double half =
      0.5 * static_cast<double>(num_mics - 1) * spacing_m;
  for (std::size_t m = 0; m < num_mics; ++m)
    mics.push_back(
        Vec3{static_cast<double>(m) * spacing_m - half, 0.0, 0.0});
  return ArrayGeometry(std::move(mics));
}

units::MetersPerSecond speed_of_sound_at(units::Celsius temperature) {
  return units::MetersPerSecond{
      331.3 * std::sqrt(1.0 + temperature.value() / 273.15)};
}

units::Celsius temperature_for_speed_of_sound(
    units::MetersPerSecond speed_of_sound) {
  if (speed_of_sound.value() <= 0.0)
    throw std::invalid_argument(
        "temperature_for_speed_of_sound: speed must be > 0");
  const double r = speed_of_sound.value() / 331.3;
  return units::Celsius{273.15 * (r * r - 1.0)};
}

units::Meters far_field_min_distance(units::Meters aperture, units::Hertz freq,
                                     units::MetersPerSecond speed_of_sound) {
  if (freq.value() <= 0.0)
    throw std::invalid_argument("far_field_min_distance: freq must be > 0");
  // Dimension algebra carries the proof: (m/s) / (1/s) = m, m * m / m = m.
  const units::Meters lambda = speed_of_sound / freq;
  return 2.0 * aperture * aperture / lambda;
}

units::Hertz max_unambiguous_frequency(units::Meters spacing,
                                       units::MetersPerSecond speed_of_sound) {
  if (spacing.value() <= 0.0)
    throw std::invalid_argument(
        "max_unambiguous_frequency: spacing must be > 0");
  // spacing < lambda / 2  <=>  f < c / (2 * spacing)
  return speed_of_sound / (2.0 * spacing);
}

}  // namespace echoimage::array
