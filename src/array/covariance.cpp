#include "array/covariance.hpp"

#include <stdexcept>

namespace echoimage::array {

CMatrix spatial_covariance(const std::vector<ComplexSignal>& channels,
                           std::size_t first, std::size_t count) {
  if (channels.empty())
    throw std::invalid_argument("spatial_covariance: no channels");
  if (count == 0)
    throw std::invalid_argument("spatial_covariance: empty snapshot range");
  const std::size_t m = channels.size();
  CMatrix r(m, m);
  std::vector<Complex> x(m);
  for (std::size_t t = first; t < first + count; ++t) {
    for (std::size_t c = 0; c < m; ++c)
      x[c] = t < channels[c].size() ? channels[c][t] : Complex(0.0, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j)
        r(i, j) += x[i] * std::conj(x[j]);
  }
  const double inv_n = 1.0 / static_cast<double>(count);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j) r(i, j) *= inv_n;
  return r;
}

CMatrix normalized_covariance(const std::vector<ComplexSignal>& channels,
                              std::size_t first, std::size_t count) {
  CMatrix r = spatial_covariance(channels, first, count);
  const double d = r.mean_diagonal_real();
  if (d <= 1e-30) return CMatrix::identity(channels.size());
  const double inv = 1.0 / d;
  for (std::size_t i = 0; i < r.rows(); ++i)
    for (std::size_t j = 0; j < r.cols(); ++j) r(i, j) *= inv;
  return r;
}

CMatrix white_noise_covariance(std::size_t num_mics) {
  return CMatrix::identity(num_mics);
}

}  // namespace echoimage::array
