#include "array/covariance.hpp"

#include <stdexcept>

namespace echoimage::array {

CMatrix spatial_covariance(const std::vector<ComplexSignal>& channels,
                           std::size_t first, std::size_t count) {
  if (channels.empty())
    throw std::invalid_argument("spatial_covariance: no channels");
  if (count == 0)
    throw std::invalid_argument("spatial_covariance: empty snapshot range");
  const std::size_t m = channels.size();
  CMatrix r(m, m);
  std::vector<Complex> x(m);
  for (std::size_t t = first; t < first + count; ++t) {
    for (std::size_t c = 0; c < m; ++c)
      x[c] = t < channels[c].size() ? channels[c][t] : Complex(0.0, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j)
        r(i, j) += x[i] * std::conj(x[j]);
  }
  const double inv_n = 1.0 / static_cast<double>(count);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j) r(i, j) *= inv_n;
  return r;
}

CMatrix normalized_covariance(const std::vector<ComplexSignal>& channels,
                              std::size_t first, std::size_t count) {
  CMatrix r = spatial_covariance(channels, first, count);
  const double d = r.mean_diagonal_real();
  if (d <= 1e-30) return CMatrix::identity(channels.size());
  const double inv = 1.0 / d;
  for (std::size_t i = 0; i < r.rows(); ++i)
    for (std::size_t j = 0; j < r.cols(); ++j) r(i, j) *= inv;
  return r;
}

CMatrix white_noise_covariance(std::size_t num_mics) {
  return CMatrix::identity(num_mics);
}

std::vector<ComplexSignal> select_channels(
    const std::vector<ComplexSignal>& channels, const ChannelMask& mask) {
  if (mask.empty()) return channels;
  if (mask.size() != channels.size())
    throw std::invalid_argument("select_channels: mask/channel mismatch");
  std::vector<ComplexSignal> kept;
  kept.reserve(channels.size());
  for (std::size_t c = 0; c < channels.size(); ++c)
    if (mask[c]) kept.push_back(channels[c]);
  if (kept.empty())
    throw std::invalid_argument("select_channels: mask leaves no channel");
  return kept;
}

CMatrix masked_covariance(const CMatrix& full, const ChannelMask& mask) {
  if (mask.empty()) return full;
  if (mask.size() != full.rows() || full.rows() != full.cols())
    throw std::invalid_argument("masked_covariance: mask/matrix mismatch");
  std::vector<std::size_t> keep;
  keep.reserve(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i)
    if (mask[i]) keep.push_back(i);
  if (keep.empty())
    throw std::invalid_argument("masked_covariance: mask leaves no channel");
  CMatrix out(keep.size(), keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i)
    for (std::size_t j = 0; j < keep.size(); ++j)
      out(i, j) = full(keep[i], keep[j]);
  return out;
}

CMatrix spatial_covariance(const std::vector<ComplexSignal>& channels,
                           std::size_t first, std::size_t count,
                           const ChannelMask& mask) {
  return spatial_covariance(select_channels(channels, mask), first, count);
}

CMatrix normalized_covariance(const std::vector<ComplexSignal>& channels,
                              std::size_t first, std::size_t count,
                              const ChannelMask& mask) {
  return normalized_covariance(select_channels(channels, mask), first, count);
}

}  // namespace echoimage::array
