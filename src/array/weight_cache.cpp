#include "array/weight_cache.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace echoimage::array {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof v);
}

}  // namespace

std::size_t WeightKeyHash::operator()(const WeightKey& k) const {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_u64(h, (static_cast<std::uint64_t>(k.band) << 32) | k.grid_index);
  h = fnv1a_u64(h, static_cast<std::uint64_t>(k.distance_q));
  h = fnv1a_u64(h, k.speed_bits);
  h = fnv1a_u64(h, k.mask_bits);
  h = fnv1a_u64(h, k.cov_fingerprint);
  h = fnv1a_u64(h, (static_cast<std::uint64_t>(k.lane) << 1) |
                       (k.mvdr ? 1u : 0u));
  return static_cast<std::size_t>(h);
}

WeightCache::WeightCache(WeightCacheConfig config) : config_(config) {
  if (config_.capacity == 0)
    throw std::invalid_argument("WeightCache: capacity must be positive");
  fallback_registry_ = std::make_shared<obs::MetricsRegistry>();
  bind_counters(*fallback_registry_);
}

void WeightCache::bind_counters(obs::MetricsRegistry& registry) {
  hits_ = &registry.counter("weight_cache.hits");
  misses_ = &registry.counter("weight_cache.misses");
  insertions_ = &registry.counter("weight_cache.insertions");
  flushes_ = &registry.counter("weight_cache.flushes");
}

void WeightCache::attach_metrics(obs::MetricsRegistry& registry) {
  bind_counters(registry);
  fallback_registry_.reset();
}

std::int64_t WeightCache::quantize_distance(units::Meters distance) const {
  const double distance_m = distance.value();
  if (config_.distance_quantum.value() <= 0.0)
    return static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(distance_m));
  return static_cast<std::int64_t>(
      std::llround(distance_m / config_.distance_quantum.value()));
}

std::uint64_t WeightCache::mask_bits(const ChannelMask& mask,
                                     std::size_t num_channels) {
  if (num_channels > 64 || mask.size() > 64)
    throw std::invalid_argument("WeightCache: masks beyond 64 channels");
  if (mask.empty()) {
    // Empty mask = full array; encode as its explicit all-active bitset so
    // {} and {true, true, ...} share entries (they beamform identically).
    return num_channels >= 64 ? ~0ull : (1ull << num_channels) - 1ull;
  }
  std::uint64_t bits = 0;
  for (std::size_t c = 0; c < mask.size(); ++c)
    if (mask[c]) bits |= 1ull << c;
  return bits;
}

std::uint64_t WeightCache::fingerprint(const CMatrix& cov) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_u64(h, cov.rows());
  h = fnv1a_u64(h, cov.cols());
  if (!cov.data().empty())
    h = fnv1a(h, cov.data().data(), cov.data().size() * sizeof(Complex));
  return h;
}

bool WeightCache::lookup(const WeightKey& key,
                         std::vector<Complex>& out) const {
  {
    const runtime::sync::SharedLockGuard lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      out = it->second;
      hits_->add();
      return true;
    }
  }
  misses_->add();
  return false;
}

void WeightCache::insert(const WeightKey& key,
                         const std::vector<Complex>& weights) {
  const runtime::sync::LockGuard lock(mutex_);
  if (entries_.size() >= config_.capacity && !entries_.contains(key)) {
    entries_.clear();
    flushes_->add();
  }
  if (entries_.emplace(key, weights).second) insertions_->add();
}

std::size_t WeightCache::size() const {
  const runtime::sync::SharedLockGuard lock(mutex_);
  return entries_.size();
}

WeightCacheStats WeightCache::stats() const {
  WeightCacheStats s;
  s.hits = hits_->value();
  s.misses = misses_->value();
  s.insertions = insertions_->value();
  s.flushes = flushes_->value();
  return s;
}

void WeightCache::reset_stats() const {
  hits_->reset();
  misses_->reset();
  insertions_->reset();
  flushes_->reset();
}

void WeightCache::clear() {
  const runtime::sync::LockGuard lock(mutex_);
  if (!entries_.empty()) flushes_->add();
  entries_.clear();
}

}  // namespace echoimage::array
