#include "array/beamformer.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "dsp/hilbert.hpp"
#include "simd/kernels.hpp"

namespace echoimage::array {

using echoimage::dsp::Complex;
using echoimage::dsp::ComplexSignal;
using echoimage::linalg::hdot;
using echoimage::linalg::multiply;

std::vector<Complex> mvdr_weights(const CMatrix& noise_cov,
                                  const std::vector<Complex>& steering,
                                  double diagonal_loading) {
  const std::size_t m = steering.size();
  if (noise_cov.rows() != m || noise_cov.cols() != m)
    throw std::invalid_argument("mvdr_weights: shape mismatch");
  CMatrix loaded = noise_cov;
  loaded.add_diagonal(diagonal_loading *
                      std::max(noise_cov.mean_diagonal_real(), 1e-12));
  // R^-1 a via a Hermitian solve (no explicit inverse needed here).
  std::vector<Complex> ra =
      echoimage::linalg::solve_hermitian_loaded(loaded, steering);
  const Complex denom = hdot(steering, ra);
  if (std::abs(denom) < 1e-30)
    throw std::runtime_error("mvdr_weights: degenerate steering vector");
  for (Complex& w : ra) w /= denom;
  return ra;
}

std::vector<Complex> das_weights(const std::vector<Complex>& steering) {
  std::vector<Complex> w = steering;
  const double inv_m = 1.0 / static_cast<double>(steering.size());
  for (Complex& v : w) v *= inv_m;
  return w;
}

ComplexSignal apply_weights(const std::vector<ComplexSignal>& channels,
                            const std::vector<Complex>& w) {
  if (channels.size() != w.size())
    throw std::invalid_argument("apply_weights: channel/weight mismatch");
  std::size_t n = 0;
  for (const ComplexSignal& c : channels) n = std::max(n, c.size());
  ComplexSignal y(n, Complex(0.0, 0.0));
  for (std::size_t m = 0; m < channels.size(); ++m) {
    const Complex wm = std::conj(w[m]);
    const ComplexSignal& x = channels[m];
    for (std::size_t t = 0; t < x.size(); ++t) y[t] += wm * x[t];
  }
  return y;
}

Signal fractional_delay(std::span<const echoimage::dsp::Sample> x,
                        double sample_rate, double delay_s) {
  using namespace echoimage::dsp;
  if (x.empty()) return {};
  // Pad so the shifted signal cannot wrap around the circular FFT buffer.
  const std::size_t guard =
      static_cast<std::size_t>(std::ceil(std::abs(delay_s) * sample_rate)) + 8;
  const std::size_t m = next_pow2(x.size() + 2 * guard);
  ComplexSignal spec(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < x.size(); ++i)
    spec[i + guard] = Complex(x[i], 0.0);
  fft_pow2_in_place(spec, false);
  for (std::size_t k = 0; k < m; ++k) {
    const double f = bin_frequency(k, m, sample_rate);
    // Delay by tau: X(f) * exp(-j 2 pi f tau).
    spec[k] *= std::polar(1.0, -2.0 * std::numbers::pi * f * delay_s);
  }
  fft_pow2_in_place(spec, true);
  Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = spec[i + guard].real();
  return out;
}

Signal beamform_das_broadband(const MultiChannelSignal& x,
                              const ArrayGeometry& geom, const Direction& dir,
                              double sample_rate,
                              units::MetersPerSecond speed_of_sound) {
  if (x.num_channels() != geom.num_mics())
    throw std::invalid_argument(
        "beamform_das_broadband: channel/mic mismatch");
  const std::vector<double> taus = tdoas(geom, dir, speed_of_sound);
  Signal acc(x.length(), 0.0);
  for (std::size_t m = 0; m < x.num_channels(); ++m) {
    // Advance each channel by its TDOA so wavefronts from `dir` align.
    const Signal shifted =
        fractional_delay(x.channels[m], sample_rate, -taus[m]);
    echoimage::dsp::add_in_place(acc, shifted);
  }
  echoimage::dsp::scale_in_place(acc,
                                 1.0 / static_cast<double>(x.num_channels()));
  return acc;
}

namespace {

/// Validate an active-channel mask against the full channel count. Returns
/// true when the mask actually drops something.
bool check_mask(const ChannelMask& mask, std::size_t num_channels) {
  if (mask.empty()) return false;
  if (mask.size() != num_channels)
    throw std::invalid_argument("NarrowbandBeamformer: mask/channel mismatch");
  const std::size_t active = count_active(mask);
  if (active == 0)
    throw std::invalid_argument(
        "NarrowbandBeamformer: mask leaves no channel");
  return active < num_channels;
}

}  // namespace

NarrowbandBeamformer::NarrowbandBeamformer(const MultiChannelSignal& bandpassed,
                                           double sample_rate,
                                           units::Hertz center_freq,
                                           ArrayGeometry geom,
                                           std::size_t noise_first,
                                           std::size_t noise_count,
                                           units::MetersPerSecond speed_of_sound,
                                           const ChannelMask& active_mask)
    : sample_rate_(sample_rate),
      center_freq_hz_(center_freq.value()),
      speed_of_sound_(speed_of_sound.value()) {
  if (bandpassed.num_channels() != geom.num_mics())
    throw std::invalid_argument(
        "NarrowbandBeamformer: channel/mic mismatch");
  if (!bandpassed.is_rectangular())
    throw std::invalid_argument(
        "NarrowbandBeamformer: ragged multichannel capture");
  const bool reduced = check_mask(active_mask, bandpassed.num_channels());
  geom_ = reduced ? geom.subarray(active_mask) : std::move(geom);
  length_ = bandpassed.length();
  analytic_.reserve(geom_.num_mics());
  for (std::size_t c = 0; c < bandpassed.num_channels(); ++c) {
    if (reduced && !active_mask[c]) continue;  // skip faulty channels
    analytic_.push_back(
        echoimage::dsp::analytic_signal(bandpassed.channels[c]));
  }
  if (noise_count > 0) {
    noise_cov_ = normalized_covariance(analytic_, noise_first, noise_count);
  } else {
    noise_cov_ = white_noise_covariance(geom_.num_mics());
  }
  noise_cov_.add_diagonal(1e-3);  // loading keeps the inverse well-behaved
  noise_cov_inv_ = echoimage::linalg::inverse(noise_cov_);
  finalize_channels();
}

NarrowbandBeamformer::NarrowbandBeamformer(const MultiChannelSignal& bandpassed,
                                           double sample_rate,
                                           units::Hertz center_freq,
                                           ArrayGeometry geom,
                                           CMatrix noise_covariance,
                                           units::MetersPerSecond speed_of_sound,
                                           const ChannelMask& active_mask)
    : sample_rate_(sample_rate),
      center_freq_hz_(center_freq.value()),
      speed_of_sound_(speed_of_sound.value()) {
  if (bandpassed.num_channels() != geom.num_mics())
    throw std::invalid_argument("NarrowbandBeamformer: channel/mic mismatch");
  if (!bandpassed.is_rectangular())
    throw std::invalid_argument(
        "NarrowbandBeamformer: ragged multichannel capture");
  if (noise_covariance.rows() != geom.num_mics() ||
      noise_covariance.cols() != geom.num_mics())
    throw std::invalid_argument(
        "NarrowbandBeamformer: covariance/mic mismatch");
  const bool reduced = check_mask(active_mask, bandpassed.num_channels());
  geom_ = reduced ? geom.subarray(active_mask) : std::move(geom);
  noise_cov_ = reduced ? masked_covariance(noise_covariance, active_mask)
                       : std::move(noise_covariance);
  length_ = bandpassed.length();
  analytic_.reserve(geom_.num_mics());
  for (std::size_t c = 0; c < bandpassed.num_channels(); ++c) {
    if (reduced && !active_mask[c]) continue;
    analytic_.push_back(
        echoimage::dsp::analytic_signal(bandpassed.channels[c]));
  }
  noise_cov_.add_diagonal(1e-3);
  noise_cov_inv_ = echoimage::linalg::inverse(noise_cov_);
  finalize_channels();
}

NarrowbandBeamformer::NarrowbandBeamformer(
    std::vector<ComplexSignal> channels, double sample_rate,
    units::Hertz center_freq, ArrayGeometry geom, CMatrix noise_covariance,
    units::MetersPerSecond speed_of_sound, const ChannelMask& active_mask,
    simd::NumericLane lane)
    : sample_rate_(sample_rate),
      center_freq_hz_(center_freq.value()),
      speed_of_sound_(speed_of_sound.value()),
      lane_(lane) {
  if (channels.size() != geom.num_mics())
    throw std::invalid_argument("NarrowbandBeamformer: channel/mic mismatch");
  if (noise_covariance.rows() != geom.num_mics() ||
      noise_covariance.cols() != geom.num_mics())
    throw std::invalid_argument(
        "NarrowbandBeamformer: covariance/mic mismatch");
  const bool reduced = check_mask(active_mask, channels.size());
  geom_ = reduced ? geom.subarray(active_mask) : std::move(geom);
  noise_cov_ = reduced ? masked_covariance(noise_covariance, active_mask)
                       : std::move(noise_covariance);
  analytic_ = reduced ? select_channels(channels, active_mask)
                      : std::move(channels);
  length_ = analytic_.front().size();
  for (const ComplexSignal& c : analytic_)
    if (c.size() != length_)
      throw std::invalid_argument(
          "NarrowbandBeamformer: ragged complex channels");
  noise_cov_.add_diagonal(1e-3);
  noise_cov_inv_ = echoimage::linalg::inverse(noise_cov_);
  finalize_channels();
}

NarrowbandBeamformer::NarrowbandBeamformer(const NarrowbandBeamformer& other)
    : geom_(other.geom_),
      sample_rate_(other.sample_rate_),
      center_freq_hz_(other.center_freq_hz_),
      speed_of_sound_(other.speed_of_sound_),
      length_(other.length_),
      lane_(other.lane_),
      analytic_(other.analytic_),
      noise_cov_(other.noise_cov_),
      noise_cov_inv_(other.noise_cov_inv_) {
  finalize_channels();
}

NarrowbandBeamformer& NarrowbandBeamformer::operator=(
    const NarrowbandBeamformer& other) {
  if (this == &other) return *this;
  geom_ = other.geom_;
  sample_rate_ = other.sample_rate_;
  center_freq_hz_ = other.center_freq_hz_;
  speed_of_sound_ = other.speed_of_sound_;
  length_ = other.length_;
  lane_ = other.lane_;
  analytic_ = other.analytic_;
  noise_cov_ = other.noise_cov_;
  noise_cov_inv_ = other.noise_cov_inv_;
  finalize_channels();
  return *this;
}

void NarrowbandBeamformer::finalize_channels() {
  ch_ptrs_.clear();
  ch_ptrs_.reserve(analytic_.size());
  for (const ComplexSignal& c : analytic_) ch_ptrs_.push_back(c.data());
  if (lane_ != simd::NumericLane::kF32) return;
  f32_channels_.clear();
  f32_channels_.reserve(analytic_.size());
  f32_ptrs_.clear();
  f32_ptrs_.reserve(analytic_.size());
  for (const ComplexSignal& c : analytic_) {
    simd::AlignedVector<float> f;
    f.reserve(2 * c.size());
    for (const Complex& v : c) {
      f.push_back(static_cast<float>(v.real()));
      f.push_back(static_cast<float>(v.imag()));
    }
    f32_channels_.push_back(std::move(f));
  }
  for (const simd::AlignedVector<float>& f : f32_channels_)
    f32_ptrs_.push_back(f.data());
}

CMatrix noise_covariance_of(const MultiChannelSignal& noise) {
  if (noise.num_channels() == 0 || noise.length() == 0)
    throw std::invalid_argument("noise_covariance_of: empty capture");
  std::vector<ComplexSignal> analytic;
  analytic.reserve(noise.num_channels());
  for (const Signal& c : noise.channels)
    analytic.push_back(echoimage::dsp::analytic_signal(c));
  return normalized_covariance(analytic, 0, noise.length());
}

CMatrix noise_covariance_of(const MultiChannelSignal& noise,
                            const ChannelMask& mask) {
  if (mask.empty()) return noise_covariance_of(noise);
  if (mask.size() != noise.num_channels())
    throw std::invalid_argument("noise_covariance_of: mask/channel mismatch");
  MultiChannelSignal kept;
  kept.channels.reserve(noise.num_channels());
  for (std::size_t c = 0; c < noise.num_channels(); ++c)
    if (mask[c]) kept.channels.push_back(noise.channels[c]);
  if (kept.channels.empty())
    throw std::invalid_argument("noise_covariance_of: mask leaves no channel");
  return noise_covariance_of(kept);
}

std::vector<Complex> NarrowbandBeamformer::weights_mvdr(
    const Direction& dir) const {
  const std::vector<Complex> a =
      steering_vector_hz(geom_, dir, units::Hertz{center_freq_hz_},
                         units::MetersPerSecond{speed_of_sound_});
  std::vector<Complex> ra = multiply(noise_cov_inv_, a);
  const Complex denom = hdot(a, ra);
  for (Complex& w : ra) w /= denom;
  return ra;
}

std::vector<Complex> NarrowbandBeamformer::weights_das(
    const Direction& dir) const {
  return das_weights(
      steering_vector_hz(geom_, dir, units::Hertz{center_freq_hz_},
                         units::MetersPerSecond{speed_of_sound_}));
}

void NarrowbandBeamformer::compute_weights(const Direction& dir,
                                           bool use_mvdr,
                                           std::vector<Complex>& scratch,
                                           std::vector<Complex>& out) const {
  steering_vector_into(geom_, dir,
                       2.0 * std::numbers::pi * center_freq_hz_,
                       units::MetersPerSecond{speed_of_sound_}, scratch);
  if (use_mvdr) {
    echoimage::linalg::multiply_into(noise_cov_inv_, scratch, out);
    const Complex denom = hdot(scratch, out);
    for (Complex& w : out) w /= denom;
  } else {
    out = scratch;
    const double inv_m = 1.0 / static_cast<double>(out.size());
    for (Complex& w : out) w *= inv_m;
  }
}

ComplexSignal NarrowbandBeamformer::steer(const Direction& dir) const {
  return apply_weights(analytic_, weights_mvdr(dir));
}

ComplexSignal NarrowbandBeamformer::steer_das(const Direction& dir) const {
  return apply_weights(analytic_, weights_das(dir));
}

double NarrowbandBeamformer::steered_energy(const Direction& dir,
                                            std::size_t first,
                                            std::size_t count,
                                            bool use_mvdr) const {
  return steered_energy(use_mvdr ? weights_mvdr(dir) : weights_das(dir),
                        first, count);
}

double NarrowbandBeamformer::steered_energy(const std::vector<Complex>& w,
                                            std::size_t first,
                                            std::size_t count) const {
  if (w.size() != analytic_.size())
    throw std::invalid_argument(
        "NarrowbandBeamformer: weight/channel mismatch");
  const std::size_t last = std::min(length_, first + count);
  if (first >= last) return 0.0;
  const std::size_t n = last - first;
  const std::size_t m = analytic_.size();
  const simd::KernelTable& k = simd::kernels();
  // The f32 lane converts weights on the stack per call; weight vectors
  // are bounded by the 64-bit channel masks upstream, so 64 always fits.
  if (lane_ == simd::NumericLane::kF32 && m <= 64) {
    std::array<float, 64> wre, wim;
    for (std::size_t c = 0; c < m; ++c) {
      wre[c] = static_cast<float>(w[c].real());
      wim[c] = static_cast<float>(w[c].imag());
    }
    return static_cast<double>(k.steered_energy_f32(
        f32_ptrs_.data(), m, wre.data(), wim.data(), first, n));
  }
  return k.steered_energy_f64(ch_ptrs_.data(), m, w.data(), first, n);
}

double NarrowbandBeamformer::incoherent_energy(std::size_t first,
                                               std::size_t count) const {
  const std::size_t last = std::min(length_, first + count);
  const std::size_t m = analytic_.size();
  if (first >= last) return 0.0;
  const std::size_t n = last - first;
  const simd::KernelTable& k = simd::kernels();
  if (lane_ == simd::NumericLane::kF32) {
    return static_cast<double>(
               k.incoherent_energy_f32(f32_ptrs_.data(), m, first, n)) /
           static_cast<double>(m);
  }
  return k.incoherent_energy_f64(ch_ptrs_.data(), m, first, n) /
         static_cast<double>(m);
}

Signal beamform_subband_mvdr(const MultiChannelSignal& x,
                             const ArrayGeometry& geom, const Direction& dir,
                             double sample_rate,
                             const echoimage::dsp::StftParams& stft_params,
                             std::size_t noise_first_frame,
                             std::size_t noise_frame_count,
                             units::MetersPerSecond speed_of_sound) {
  using echoimage::dsp::Stft;
  if (x.num_channels() != geom.num_mics())
    throw std::invalid_argument("beamform_subband_mvdr: channel/mic mismatch");
  const std::size_t m = x.num_channels();
  std::vector<Stft> specs;
  specs.reserve(m);
  for (const Signal& c : x.channels)
    specs.push_back(echoimage::dsp::stft(c, stft_params));
  const std::size_t num_frames = specs.front().num_frames();
  const std::size_t num_bins = stft_params.num_bins();

  std::vector<ComplexSignal> out_frames(num_frames,
                                        ComplexSignal(num_bins));
  std::vector<Complex> snapshot(m);
  for (std::size_t k = 0; k < num_bins; ++k) {
    const double f = specs.front().bin_frequency(k, sample_rate);
    const std::vector<Complex> a =
        steering_vector_hz(geom, dir, units::Hertz{f}, speed_of_sound);
    // Per-bin noise covariance (or white) with diagonal loading.
    CMatrix r = CMatrix::identity(m);
    if (noise_frame_count > 0) {
      r = CMatrix(m, m);
      std::size_t used = 0;
      for (std::size_t fr = noise_first_frame;
           fr < std::min(num_frames, noise_first_frame + noise_frame_count);
           ++fr) {
        for (std::size_t c = 0; c < m; ++c) snapshot[c] = specs[c].frames()[fr][k];
        for (std::size_t i = 0; i < m; ++i)
          for (std::size_t j = 0; j < m; ++j)
            r(i, j) += snapshot[i] * std::conj(snapshot[j]);
        ++used;
      }
      if (used > 0) {
        const double inv = 1.0 / static_cast<double>(used);
        for (std::size_t i = 0; i < m; ++i)
          for (std::size_t j = 0; j < m; ++j) r(i, j) *= inv;
      }
      const double d = r.mean_diagonal_real();
      if (d <= 1e-30) {
        r = CMatrix::identity(m);
      } else {
        for (std::size_t i = 0; i < m; ++i)
          for (std::size_t j = 0; j < m; ++j) r(i, j) /= d;
      }
    }
    std::vector<Complex> w;
    try {
      w = mvdr_weights(r, a, 1e-3);
    } catch (const std::runtime_error&) {
      w = das_weights(a);
    }
    for (std::size_t fr = 0; fr < num_frames; ++fr) {
      Complex y(0.0, 0.0);
      for (std::size_t c = 0; c < m; ++c)
        y += std::conj(w[c]) * specs[c].frames()[fr][k];
      out_frames[fr][k] = y;
    }
  }
  const Stft combined(stft_params, x.length(), std::move(out_frames));
  return echoimage::dsp::istft(combined);
}

std::vector<double> beampattern(const ArrayGeometry& geom,
                                const std::vector<Complex>& w,
                                units::Hertz freq,
                                const std::vector<Direction>& dirs,
                                units::MetersPerSecond speed_of_sound) {
  std::vector<double> out;
  out.reserve(dirs.size());
  for (const Direction& d : dirs) {
    const std::vector<Complex> a =
        steering_vector_hz(geom, d, freq, speed_of_sound);
    out.push_back(std::norm(hdot(w, a)));
  }
  return out;
}

}  // namespace echoimage::array
