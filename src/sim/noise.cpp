#include "sim/noise.hpp"

#include <cmath>
#include <numbers>

#include "dsp/butterworth.hpp"
#include "dsp/signal.hpp"

namespace echoimage::sim {

using echoimage::dsp::SosCascade;

double level_db_to_rms(double level_db) {
  return std::pow(10.0, (level_db - kFullScaleDb) / 20.0);
}

namespace {

Signal white(std::size_t length, Rng& rng) {
  Signal x(length);
  for (double& v : x) v = rng.gaussian();
  return x;
}

// Slow sinusoidal + stochastic amplitude modulation (beats, syllables,
// passing vehicles).
void modulate(Signal& x, double sample_rate, double mod_hz, double depth,
              Rng& rng) {
  const double phase0 = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double drift = rng.uniform(0.8, 1.25);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / sample_rate;
    const double m =
        1.0 + depth * std::sin(2.0 * std::numbers::pi * mod_hz * drift * t +
                               phase0);
    x[i] *= m;
  }
}

void calibrate_rms(Signal& x, double target_rms) {
  const double r = echoimage::dsp::rms(x);
  if (r <= 0.0) return;
  echoimage::dsp::scale_in_place(x, target_rms / r);
}

}  // namespace

Signal generate_noise(const NoiseParams& params, std::size_t length,
                      double sample_rate, Rng& rng) {
  if (length == 0) return {};
  Signal x = white(length, rng);
  switch (params.kind) {
    case NoiseKind::kQuiet: {
      // Room tone: mostly HVAC-like rumble below ~500 Hz.
      const SosCascade lp =
          echoimage::dsp::butterworth_lowpass(2, 500.0, sample_rate);
      x = lp.filter(x);
      break;
    }
    case NoiseKind::kMusic: {
      // Energy concentrated below 2 kHz with beat-rate (~2 Hz) swells.
      const SosCascade lp =
          echoimage::dsp::butterworth_lowpass(3, 2000.0, sample_rate);
      x = lp.filter(x);
      modulate(x, sample_rate, 2.0, 0.5, rng);
      break;
    }
    case NoiseKind::kChatter: {
      // Speech band 300 Hz - 3 kHz with syllabic (~4 Hz) modulation; note it
      // overlaps the 2-3 kHz probing band, making it the hardest condition.
      const SosCascade bp =
          echoimage::dsp::butterworth_bandpass(2, 300.0, 3000.0, sample_rate);
      x = bp.filter(x);
      modulate(x, sample_rate, 4.0, 0.7, rng);
      break;
    }
    case NoiseKind::kTraffic: {
      // Heavy rumble below ~800 Hz with slow passing-vehicle swells.
      const SosCascade lp =
          echoimage::dsp::butterworth_lowpass(3, 800.0, sample_rate);
      x = lp.filter(x);
      modulate(x, sample_rate, 0.3, 0.6, rng);
      break;
    }
    case NoiseKind::kWhite:
      break;
  }
  calibrate_rms(x, level_db_to_rms(params.level_db));
  return x;
}

}  // namespace echoimage::sim
