// Environmental noise synthesis (paper Sec. VI-A1).
//
// The paper evaluates under quiet rooms (~30 dB) and under music / people-
// chatting / traffic noise played at ~50 dB from 1-2 m away. We synthesize
// each condition as spectrally shaped Gaussian noise with the appropriate
// amplitude modulation, calibrated on a common dB scale, and render it both
// as a localized point source (correlated across microphones with proper
// delays) and a diffuse component (independent per microphone).
#pragma once

#include <cstdint>

#include "dsp/signal.hpp"
#include "sim/random.hpp"

namespace echoimage::sim {

using echoimage::dsp::Signal;

enum class NoiseKind {
  kQuiet,    ///< residual room noise: low-level low-frequency rumble
  kMusic,    ///< broadband with beats, mostly below 2 kHz
  kChatter,  ///< speech-band noise with syllabic (4 Hz) modulation
  kTraffic,  ///< heavy low-frequency rumble with passing-vehicle swells
  kWhite,    ///< flat-spectrum reference for tests
};

/// Calibration: digital amplitude 1.0 RMS corresponds to this sound level.
/// (The absolute anchor is arbitrary; only ratios matter.)
inline constexpr double kFullScaleDb = 70.0;

/// RMS amplitude corresponding to a sound level in dB on the simulator's
/// scale (level_db == kFullScaleDb -> 1.0).
[[nodiscard]] double level_db_to_rms(double level_db);

struct NoiseParams {
  NoiseKind kind = NoiseKind::kQuiet;
  double level_db = 30.0;  ///< target RMS level on the simulator dB scale
};

/// Mono noise of `length` samples at `sample_rate`, spectrally shaped for
/// `kind` and RMS-calibrated to `level_db`.
[[nodiscard]] Signal generate_noise(const NoiseParams& params,
                                    std::size_t length, double sample_rate,
                                    Rng& rng);

}  // namespace echoimage::sim
