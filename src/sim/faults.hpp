// Capture-chain fault injection.
//
// Deployed smart-speaker arrays routinely suffer hardware faults the clean
// simulator never produces: dead or intermittent microphones, converter
// clipping, DC offsets, per-channel gain drift, impulsive pops, and
// outright non-finite samples from a wedged driver. Each fault here is a
// composable, seeded transform of a MultiChannelSignal, so tests and
// benches can dial in a precise failure mode and severity and replay it
// exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsp/signal.hpp"
#include "sim/random.hpp"

namespace echoimage::sim {

using echoimage::dsp::MultiChannelSignal;

/// Channel selector for a fault: a specific channel index, or every channel.
inline constexpr int kAllChannels = -1;

enum class FaultKind {
  kDeadChannel,    ///< channel flatlines to a constant (usually 0)
  kIntermittent,   ///< random dropout bursts zero out stretches of samples
  kHardClip,       ///< converter saturates at +/- a fixed level
  kSoftClip,       ///< tanh-style compression toward a saturation level
  kDcOffset,       ///< constant converter offset added to every sample
  kGainDrift,      ///< per-channel multiplicative gain error
  kImpulsePops,    ///< sparse large-amplitude clicks (connector crackle)
  kNanBurst,       ///< a run of NaN samples (driver/DMA fault)
};

/// One fault to apply. `severity` is the knob benches sweep; its meaning is
/// per-kind (see the member docs) but is always monotone: 0 = no fault,
/// larger = worse.
struct FaultSpec {
  FaultKind kind = FaultKind::kDeadChannel;
  /// Target channel, or kAllChannels.
  int channel = kAllChannels;
  /// kDeadChannel:   unused (the channel is constant `level`).
  /// kIntermittent:  fraction of samples lost to dropout bursts [0, 1].
  /// kHardClip:      clip point as a fraction of the channel peak (severity
  ///                 s clips at (1 - s) * peak, so 0.05 shaves 5%).
  /// kSoftClip:      same knee convention as kHardClip, tanh roll-off.
  /// kDcOffset:      offset as a multiple of the channel RMS.
  /// kGainDrift:     max relative gain error (gain in [1-s, 1+s]).
  /// kImpulsePops:   expected pops per 1000 samples.
  /// kNanBurst:      fraction of samples inside the NaN run [0, 1].
  double severity = 1.0;
  /// kDeadChannel only: the stuck output level (0 = shorted to ground).
  double level = 0.0;

  [[nodiscard]] std::string describe() const;
};

/// A reproducible batch of faults: applied in order, each deriving its own
/// random sub-stream from (seed, index) so adding one fault never reshuffles
/// the randomness of the others.
struct FaultPlan {
  std::vector<FaultSpec> faults;
  std::uint64_t seed = 0;

  [[nodiscard]] bool empty() const { return faults.empty(); }
  [[nodiscard]] std::string describe() const;
};

/// Apply a single fault in place. `rng` drives any randomness (dropout
/// placement, pop times, gain draws); deterministic kinds ignore it. Throws
/// std::invalid_argument for an out-of-range channel index or a negative
/// severity.
void apply_fault(MultiChannelSignal& capture, const FaultSpec& spec, Rng& rng);

/// Apply every fault of the plan in order, deterministically from the
/// plan's seed.
void apply_plan(MultiChannelSignal& capture, const FaultPlan& plan);

/// Apply the plan to each beep of a batch and to the noise-only capture.
/// Per-beep sub-streams are derived from (seed, beep index) so every beep
/// sees independent dropout/pop placement but the whole batch replays
/// exactly. Faults model the capture chain, so the same gain/offset/clip
/// path distorts the noise capture too.
void apply_plan(std::vector<MultiChannelSignal>& beeps,
                MultiChannelSignal& noise_only, const FaultPlan& plan);

}  // namespace echoimage::sim
