// Per-user body model for the acoustic simulator.
//
// The paper's authentication signal is the spatial pattern of echo energy
// reflected off a user's upper body. We model each user as a cloud of point
// scatterers sampled over a parametric silhouette (torso + shoulders +
// head + arms) whose depth and reflectivity are smooth random fields seeded
// by the user identity — stable across sessions (it's the same body) but
// distinct between users. Session-level jitter models posture, standing
// position, and clothing changes; per-beep micro-jitter models breathing
// and sway.
#pragma once

#include <cstdint>
#include <vector>

#include "array/geometry.hpp"
#include "sim/random.hpp"
#include "units/units.hpp"

namespace echoimage::sim {

namespace units = echoimage::units;
using echoimage::array::Vec3;

enum class Gender { kMale, kFemale };

/// Demographic attributes (paper Table I drives these).
struct Demographic {
  Gender gender = Gender::kMale;
  int age = 25;
};

/// One scatterer in body-local coordinates: x lateral (m, 0 = body center),
/// y depth offset (m, positive = toward the array), z height above the
/// floor (m).
struct BodyReflector {
  Vec3 local;
  double reflectivity = 0.0;  ///< amplitude reflection strength (m-ish units)
  /// Power-law exponent of the reflectivity across the probing band
  /// (clothing fabric and skin absorb differently at 2 vs 3 kHz); sampled
  /// from a per-user smooth field, it adds a spectral identity channel.
  double spectral_slope = 0.0;
};

/// A user's body: reflector cloud + gross dimensions.
class BodyProfile {
 public:
  BodyProfile(std::vector<BodyReflector> reflectors, double height_m,
              double shoulder_m, double habitual_lean_rad = 0.0,
              double habitual_depth_m = 0.0);

  [[nodiscard]] const std::vector<BodyReflector>& reflectors() const {
    return reflectors_;
  }
  [[nodiscard]] double height_m() const { return height_m_; }
  [[nodiscard]] double shoulder_m() const { return shoulder_m_; }
  /// Habitual stance: a person leans and stands at characteristic offsets
  /// (posture habit); session jitter varies *around* these.
  [[nodiscard]] double habitual_lean_rad() const { return habitual_lean_rad_; }
  [[nodiscard]] double habitual_depth_m() const { return habitual_depth_m_; }

 private:
  std::vector<BodyReflector> reflectors_;
  double height_m_;
  double shoulder_m_;
  double habitual_lean_rad_;
  double habitual_depth_m_;
};

/// Sampling density and field scales for profile generation.
struct BodyModelParams {
  double point_spacing_m = 0.03;    ///< silhouette sampling pitch
  double depth_scale_m = 0.04;      ///< RMS depth relief of the body surface
  double reflectivity_base = 0.08;  ///< mean per-point amplitude reflectivity
  double reflectivity_spread = 0.9; ///< relative spread of the field
  /// Specularity exponent: a smooth torso reflects like a directional
  /// (near-specular) surface, so each point's contribution is weighted by
  /// cos^q of its incidence angle toward the array. Large q concentrates
  /// the echo in the stable near-normal patch (chest at array height);
  /// q = 0 reverts to the isotropic point-scatterer model.
  double specular_exponent = 10.0;
  /// Scale of the per-user spectral-slope field (power-law exponents up to
  /// roughly +/- 2 x this value across the body).
  double spectral_slope_scale = 2.0;
};

/// Deterministically generate a user's body from their seed + demographics.
[[nodiscard]] BodyProfile generate_body_profile(
    std::uint64_t user_seed, const Demographic& demo,
    const BodyModelParams& params = {});

/// Session- and beep-level perturbations applied when posing the body.
struct Pose {
  double lateral_shift_m = 0.0;   ///< standing slightly off-center
  double depth_shift_m = 0.0;     ///< standing slightly nearer / farther
  double lean_rad = 0.0;          ///< forward/back lean (rotation about x)
  double reflectivity_gain = 1.0; ///< clothing-dependent overall gain
  std::uint64_t clothing_seed = 0; ///< seeds a smooth reflectivity modulation
  double breathing_m = 0.0;       ///< per-beep chest displacement
};

/// Draw a session-level pose: shifts ~ cm-scale, lean ~ 2 degrees,
/// clothing gain ~ +/-15%. `jitter_scale` scales all magnitudes (0 = none).
[[nodiscard]] Pose draw_session_pose(Rng& rng, double jitter_scale = 1.0);

/// Place the posed body in world (array-centered) coordinates: the user
/// faces the array at horizontal distance `distance` along +y, the floor
/// is at z = -array_height. Returns world-space reflectors with
/// clothing-modulated reflectivities and specular incidence weighting.
struct WorldReflector {
  Vec3 position;
  double reflectivity = 0.0;
  double spectral_slope = 0.0;  ///< see BodyReflector::spectral_slope
};
[[nodiscard]] std::vector<WorldReflector> pose_body(
    const BodyProfile& profile, const Pose& pose, units::Meters distance,
    units::Meters array_height, double specular_exponent = 10.0);

/// A cheap, deterministic `dims`-dimensional acoustic signature of a body:
/// random-Fourier projections of the reflector cloud (reflectivity-weighted
/// spatial harmonics plus a spectral-slope channel). Same profile always
/// yields the same signature; distinct users separate because the identity
/// fields behind their reflector clouds differ. Intended for synthesizing
/// large enrollment galleries (the template store's load benchmarks) without
/// running the full acoustic pipeline per user. Throws std::invalid_argument
/// for dims == 0.
[[nodiscard]] std::vector<double> body_signature(const BodyProfile& profile,
                                                 std::size_t dims,
                                                 std::uint64_t seed = 0);

}  // namespace echoimage::sim
