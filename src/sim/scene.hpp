// Scene assembly and multi-path rendering.
//
// A Scene bundles everything static about a capture setup: the microphone
// array (origin-centered, mounted array_height_m above the floor), the
// speaker, the environment, and an optional localized noise playback source
// (the paper plays music / chatter / traffic from a computer 1-2 m away).
// SceneRenderer turns a posed body + Scene into per-microphone waveforms.
//
// Rendering is analytic: the LFM chirp has a closed form, so each
// propagation path adds gain * s(t - delay) with the exact fractional
// delay — no resampling or interpolation artifacts. Echo amplitudes follow
// spherical spreading, 1/(d_tx * d_rx) for the reflected round trip, which
// is the inverse-square-law behaviour the paper's data augmentation
// (Eq. 13-15) relies on.
#pragma once

#include <optional>

#include "array/geometry.hpp"
#include "dsp/chirp.hpp"
#include "dsp/signal.hpp"
#include "sim/body.hpp"
#include "sim/environment.hpp"

namespace echoimage::sim {

namespace units = echoimage::units;
using echoimage::array::ArrayGeometry;
using echoimage::dsp::Chirp;
using echoimage::dsp::MultiChannelSignal;

/// A localized interference source playing shaped noise (paper: a computer
/// at ~50 dB placed 1-2 m from the array).
struct NoiseSource {
  NoiseParams params{NoiseKind::kMusic, 50.0};
  Vec3 position{1.5, 1.0, 0.0};
};

struct Scene {
  ArrayGeometry geometry = echoimage::array::make_respeaker_array();
  Vec3 speaker_position{0.0, 0.0, -0.02};  ///< just below the array center
  units::Meters array_height{1.2};         ///< array center above the floor
  Environment environment;
  std::optional<NoiseSource> noise_source;
  units::MetersPerSecond speed_of_sound = echoimage::array::kSpeedOfSoundMps;
};

/// Per-beep capture parameters.
struct CaptureConfig {
  double sample_rate = 48000.0;
  /// Per-beep capture window (covers a 2 m user).
  units::Seconds frame{0.060};
  echoimage::dsp::ChirpParams chirp{};  ///< paper defaults: 2-3 kHz, 2 ms
  /// Spreading-loss clamp near the transducers.
  units::Meters min_path{0.05};
  /// Microphone self-noise + ADC floor: white, independent per channel,
  /// always present regardless of the acoustic environment. This is what
  /// bounds the sensing range (paper Fig. 13: echoes from past ~1 m become
  /// "weak and hard to be picked up").
  units::Decibels sensor_noise{54.0};

  [[nodiscard]] std::size_t frame_samples() const {
    return echoimage::dsp::seconds_to_samples(frame.value(), sample_rate);
  }
};

/// Renders beeps for a fixed scene. The body reflectors are passed per call
/// because they change beep-to-beep (breathing) and session-to-session
/// (pose, clothing).
class SceneRenderer {
 public:
  SceneRenderer(Scene scene, CaptureConfig config);

  [[nodiscard]] const Scene& scene() const { return scene_; }
  [[nodiscard]] const CaptureConfig& config() const { return config_; }
  [[nodiscard]] const Chirp& chirp() const { return chirp_; }

  /// One beep: direct path + body echoes + clutter echoes + reverb tail +
  /// ambient noise + optional playback noise.
  [[nodiscard]] MultiChannelSignal render_beep(
      const std::vector<WorldReflector>& body, Rng& rng) const;

  /// Noise-only capture of `length` samples (the quiet gap between beeps):
  /// ambient + playback noise, no chirp. Used to estimate the MVDR noise
  /// covariance rho_n exactly as a real deployment would.
  [[nodiscard]] MultiChannelSignal render_noise_only(std::size_t length,
                                                     Rng& rng) const;

  /// Round-trip delay (s) of the direct speaker->mic path for mic m.
  [[nodiscard]] double direct_delay(std::size_t mic) const;

  /// Round-trip delay (s) of an echo off `point` into mic m.
  [[nodiscard]] double echo_delay(const Vec3& point, std::size_t mic) const;

 private:
  void add_path(echoimage::dsp::Signal& channel, double delay_s,
                double gain, double spectral_slope = 0.0) const;
  void add_noise(MultiChannelSignal& out, Rng& rng) const;

  Scene scene_;
  CaptureConfig config_;
  Chirp chirp_;
};

}  // namespace echoimage::sim
