#include "sim/body.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace echoimage::sim {

BodyProfile::BodyProfile(std::vector<BodyReflector> reflectors,
                         double height_m, double shoulder_m,
                         double habitual_lean_rad, double habitual_depth_m)
    : reflectors_(std::move(reflectors)),
      height_m_(height_m),
      shoulder_m_(shoulder_m),
      habitual_lean_rad_(habitual_lean_rad),
      habitual_depth_m_(habitual_depth_m) {
  if (reflectors_.empty())
    throw std::invalid_argument("BodyProfile: empty reflector cloud");
}

namespace {

// Half-width of the body silhouette at normalized height u = z/height,
// in units of the shoulder half-width. Piecewise profile: legs/hips ->
// waist -> chest -> shoulders -> neck -> head handled separately.
double torso_half_width(double u) {
  if (u < 0.45) return 0.0;           // below hips: ignored (legs)
  if (u < 0.55) return 0.72;          // hips
  if (u < 0.62) return 0.62;          // waist
  if (u < 0.78) return 0.80;          // chest
  if (u < 0.84) return 1.00;          // shoulders
  if (u < 0.87) return 0.28;          // neck
  return 0.0;                         // head handled as a disc
}

}  // namespace

BodyProfile generate_body_profile(std::uint64_t user_seed,
                                  const Demographic& demo,
                                  const BodyModelParams& params) {
  Rng rng(mix_seed(user_seed, 0xB0D7));
  // Gross dimensions from demographics with individual variation.
  double height = demo.gender == Gender::kMale ? 1.74 : 1.62;
  if (demo.age < 20) height -= 0.02;
  if (demo.age > 35) height -= 0.01;
  height += rng.gaussian(0.0, 0.05);
  height = std::clamp(height, 1.50, 1.95);
  double shoulder = demo.gender == Gender::kMale ? 0.46 : 0.41;
  shoulder += rng.gaussian(0.0, 0.02);
  shoulder = std::clamp(shoulder, 0.34, 0.54);

  // Identity-bearing smooth fields over the (lateral, height) silhouette.
  const SmoothField2D depth_field(mix_seed(user_seed, 0xDE71), 14, 4.0);
  const SmoothField2D refl_field(mix_seed(user_seed, 0x5EF1), 14, 5.0);
  // Global acoustic "build": clothing material and body size scale overall
  // reflectivity by several dB between people (leather vs wool differ by an
  // order of magnitude) — stable for a given person.
  const double build_scale =
      std::clamp(std::exp(rng.gaussian(0.0, 0.6)), 0.55, 2.5);
  // Per-user spectral tilt field (clothing material map) plus a whole-body
  // baseline tilt (outfit-dominant material).
  const SmoothField2D slope_field(mix_seed(user_seed, 0x51DE), 10, 3.0);
  const double slope_base = rng.gaussian(0.0, 0.8);

  std::vector<BodyReflector> pts;
  const double pitch = params.point_spacing_m;
  const double half_shoulder = shoulder / 2.0;

  // Torso + shoulders + neck: scan the silhouette on a jittered grid.
  for (double z = 0.45 * height; z < 0.87 * height; z += pitch) {
    const double u = z / height;
    const double hw = torso_half_width(u) * half_shoulder;
    if (hw <= 0.0) continue;
    for (double x = -hw; x <= hw; x += pitch) {
      const double jx = x + rng.uniform(-0.2, 0.2) * pitch;
      const double jz = z + rng.uniform(-0.2, 0.2) * pitch;
      const double uu = (jx / shoulder) + 0.5;  // normalized lateral
      const double vv = jz / height;            // normalized height
      BodyReflector r;
      // Depth relief: body curvature (rounded torso) + identity field.
      const double curvature = -0.5 * (jx * jx) / std::max(hw, 1e-3);
      r.local = Vec3{jx,
                     curvature + params.depth_scale_m *
                                     depth_field.value(uu, vv),
                     jz};
      r.reflectivity =
          params.reflectivity_base * build_scale *
          std::exp(std::clamp(params.reflectivity_spread *
                                  refl_field.value(uu, vv),
                              -1.8, 1.8));
      r.spectral_slope = std::clamp(
          slope_base + params.spectral_slope_scale * slope_field.value(uu, vv),
          -4.0, 4.0);
      pts.push_back(r);
    }
  }

  // Head: disc of radius ~9 cm centered near the top.
  const double head_r = 0.09 + rng.gaussian(0.0, 0.006);
  const double head_cz = 0.93 * height;
  for (double z = head_cz - head_r; z <= head_cz + head_r; z += pitch) {
    const double dz = z - head_cz;
    const double hw = std::sqrt(std::max(0.0, head_r * head_r - dz * dz));
    for (double x = -hw; x <= hw; x += pitch) {
      const double uu = (x / shoulder) + 0.5;
      const double vv = z / height;
      BodyReflector r;
      const double bulge =
          std::sqrt(std::max(0.0, head_r * head_r - x * x - dz * dz));
      r.local = Vec3{x, 0.4 * bulge + 0.5 * params.depth_scale_m *
                                          depth_field.value(uu, vv),
                     z};
      r.reflectivity =
          0.8 * params.reflectivity_base * build_scale *
          std::exp(std::clamp(params.reflectivity_spread *
                                  refl_field.value(uu, vv),
                              -1.8, 1.8));
      // Skin/hair: milder tilt than clothing.
      r.spectral_slope = std::clamp(
          0.4 * (slope_base +
                 params.spectral_slope_scale * slope_field.value(uu, vv)),
          -4.0, 4.0);
      pts.push_back(r);
    }
  }

  // Arms: thin columns just outside the torso.
  for (int side = -1; side <= 1; side += 2) {
    const double ax = side * (half_shoulder + 0.035);
    for (double z = 0.48 * height; z < 0.80 * height; z += pitch) {
      const double uu = (ax / shoulder) + 0.5;
      const double vv = z / height;
      BodyReflector r;
      r.local = Vec3{ax + rng.uniform(-0.01, 0.01),
                     params.depth_scale_m * depth_field.value(uu, vv) - 0.02,
                     z};
      r.reflectivity =
          0.5 * params.reflectivity_base * build_scale *
          std::exp(std::clamp(params.reflectivity_spread *
                                  refl_field.value(uu, vv),
                              -1.8, 1.8));
      r.spectral_slope = std::clamp(
          slope_base + params.spectral_slope_scale * slope_field.value(uu, vv),
          -4.0, 4.0);
      pts.push_back(r);
    }
  }

  // Habitual stance offsets: stable personal posture (how far from the
  // device the person naturally stands, how much they slouch/lean).
  const double habit_lean = rng.gaussian(0.0, 0.025);
  const double habit_depth = rng.gaussian(0.0, 0.02);
  return BodyProfile(std::move(pts), height, shoulder, habit_lean,
                     habit_depth);
}

Pose draw_session_pose(Rng& rng, double jitter_scale) {
  Pose p;
  // The user deliberately stands in front of the device for a
  // safety-critical action (paper Sec. V-B), so stance jitter is cm-scale.
  // Clamped: users take a deliberate, repeatable stance for authentication.
  p.lateral_shift_m =
      std::clamp(jitter_scale * rng.gaussian(0.0, 0.008), -0.015, 0.015);
  p.depth_shift_m =
      std::clamp(jitter_scale * rng.gaussian(0.0, 0.008), -0.015, 0.015);
  p.lean_rad =
      std::clamp(jitter_scale * rng.gaussian(0.0, 0.012), -0.02, 0.02);
  p.reflectivity_gain = std::clamp(
      1.0 + jitter_scale * rng.gaussian(0.0, 0.03), 0.8, 1.2);
  p.clothing_seed = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
  return p;
}

std::vector<WorldReflector> pose_body(const BodyProfile& profile,
                                      const Pose& pose, units::Meters distance,
                                      units::Meters array_height,
                                      double specular_exponent) {
  const double distance_m = distance.value();
  const double array_height_m = array_height.value();
  const SmoothField2D clothing(mix_seed(pose.clothing_seed, 0xC107), 8, 3.0);
  const double lean = pose.lean_rad + profile.habitual_lean_rad();
  const double cos_lean = std::cos(lean);
  const double sin_lean = std::sin(lean);
  std::vector<WorldReflector> out;
  out.reserve(profile.reflectors().size());
  for (const BodyReflector& r : profile.reflectors()) {
    // Lean rotates the body about the x axis at hip height.
    const double hip = 0.5 * profile.height_m();
    const double zl = r.local.z - hip;
    const double yl = r.local.y + pose.breathing_m;
    const double z_rot = zl * cos_lean - yl * sin_lean + hip;
    const double y_rot = zl * sin_lean + yl * cos_lean;
    WorldReflector w;
    // World: user at +y distance, facing the array; body surface depth
    // offsets point back toward the array (-y in world).
    w.position = Vec3{r.local.x + pose.lateral_shift_m,
                      distance_m + pose.depth_shift_m +
                          profile.habitual_depth_m() - y_rot,
                      z_rot - array_height_m};
    const double u = r.local.x / std::max(profile.shoulder_m(), 1e-3) + 0.5;
    const double v = r.local.z / std::max(profile.height_m(), 1e-3);
    const double cloth = std::clamp(
        1.0 + 0.06 * clothing.value(u, v), 0.75, 1.25);
    // Specular incidence weighting: the body surface faces -y (toward the
    // array, tilted by the lean); a point's echo falls off as cos^q of the
    // angle between its line of sight to the array and the local surface
    // normal. This makes the chest patch at array height the dominant,
    // pose-stable reflector, as for a real (smooth, convex) torso.
    double spec = 1.0;
    if (specular_exponent > 0.0) {
      const double range = w.position.norm();
      if (range > 1e-6) {
        // Surface normal ~ (0, -cos(lean), sin(lean)) for a standing body.
        const double cos_inc = std::clamp(
            (w.position.y * cos_lean + w.position.z * (-sin_lean)) / range,
            0.0, 1.0);
        spec = std::pow(cos_inc, specular_exponent);
      }
    }
    w.reflectivity = r.reflectivity * pose.reflectivity_gain * cloth * spec;
    w.spectral_slope = r.spectral_slope;
    out.push_back(w);
  }
  return out;
}

std::vector<double> body_signature(const BodyProfile& profile,
                                   std::size_t dims, std::uint64_t seed) {
  if (dims == 0)
    throw std::invalid_argument("body_signature: dims must be positive");
  const std::vector<BodyReflector>& pts = profile.reflectors();
  const double inv_n = 1.0 / static_cast<double>(pts.size());
  std::vector<double> sig(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    // Per-dimension probing harmonic: fixed by (seed, d) alone, so the
    // basis is shared across users and the projections are comparable.
    Rng rng(mix_seed(seed, 0x51D0 + d));
    const double kx = rng.gaussian(0.0, 14.0);   // lateral wavenumber (1/m)
    const double kz = rng.gaussian(0.0, 5.0);    // height wavenumber (1/m)
    const double ky = rng.gaussian(0.0, 40.0);   // depth relief is cm-scale
    const double phase = rng.uniform(0.0, 6.283185307179586);
    const double slope_mix = rng.uniform(-0.3, 0.3);
    double acc = 0.0;
    for (const BodyReflector& r : pts)
      acc += r.reflectivity * (1.0 + slope_mix * r.spectral_slope) *
             std::cos(kx * r.local.x + ky * r.local.y + kz * r.local.z +
                      phase);
    sig[d] = acc * inv_n;
  }
  return sig;
}

}  // namespace echoimage::sim
