#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace echoimage::sim {

namespace {

using echoimage::dsp::Signal;

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeadChannel: return "dead-channel";
    case FaultKind::kIntermittent: return "intermittent";
    case FaultKind::kHardClip: return "hard-clip";
    case FaultKind::kSoftClip: return "soft-clip";
    case FaultKind::kDcOffset: return "dc-offset";
    case FaultKind::kGainDrift: return "gain-drift";
    case FaultKind::kImpulsePops: return "impulse-pops";
    case FaultKind::kNanBurst: return "nan-burst";
  }
  return "?";
}

void dead_channel(Signal& ch, double level) {
  std::fill(ch.begin(), ch.end(), level);
}

void intermittent(Signal& ch, double severity, Rng& rng) {
  const std::size_t n = ch.size();
  if (n == 0) return;
  const auto target = static_cast<std::size_t>(
      std::min(1.0, severity) * static_cast<double>(n));
  std::size_t covered = 0;
  // Dropout bursts of a few ms at 48 kHz — the scale of a USB xrun.
  // Counting burst lengths (overlaps double-count) guarantees termination.
  while (covered < target) {
    const auto start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(n - 1)));
    const auto burst = static_cast<std::size_t>(rng.uniform_int(32, 256));
    const std::size_t end = std::min(n, start + burst);
    std::fill(ch.begin() + static_cast<std::ptrdiff_t>(start),
              ch.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
    covered += end - start;
  }
}

void hard_clip(Signal& ch, double severity) {
  const double peak = echoimage::dsp::peak_abs(ch);
  if (peak <= 0.0) return;
  const double limit = std::max(0.0, 1.0 - severity) * peak;
  for (double& v : ch) v = std::clamp(v, -limit, limit);
}

void soft_clip(Signal& ch, double severity) {
  const double peak = echoimage::dsp::peak_abs(ch);
  if (peak <= 0.0) return;
  const double limit = std::max(1e-12, (1.0 - severity) * peak);
  for (double& v : ch) v = limit * std::tanh(v / limit);
}

void dc_offset(Signal& ch, double severity) {
  const double offset = severity * echoimage::dsp::rms(ch);
  for (double& v : ch) v += offset;
}

void gain_drift(Signal& ch, double severity, Rng& rng) {
  const double gain = 1.0 + rng.uniform(-severity, severity);
  for (double& v : ch) v *= gain;
}

void impulse_pops(Signal& ch, double severity, Rng& rng) {
  const std::size_t n = ch.size();
  if (n == 0) return;
  const double peak = std::max(echoimage::dsp::peak_abs(ch), 1e-12);
  const auto pops = static_cast<std::size_t>(
      std::ceil(severity * static_cast<double>(n) / 1000.0));
  for (std::size_t p = 0; p < pops; ++p) {
    const auto at = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(n - 1)));
    const double sign = rng.uniform(0.0, 1.0) < 0.5 ? -1.0 : 1.0;
    ch[at] += sign * rng.uniform(3.0, 6.0) * peak;
  }
}

void nan_burst(Signal& ch, double severity, Rng& rng) {
  const std::size_t n = ch.size();
  if (n == 0) return;
  const auto run = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::min(1.0, severity) *
                                  static_cast<double>(n)));
  const auto start = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<int>(n - std::min(n, run))));
  const std::size_t end = std::min(n, start + run);
  for (std::size_t i = start; i < end; ++i)
    ch[i] = std::numeric_limits<double>::quiet_NaN();
}

void apply_to_channel(Signal& ch, const FaultSpec& spec, Rng& rng) {
  switch (spec.kind) {
    case FaultKind::kDeadChannel: dead_channel(ch, spec.level); break;
    case FaultKind::kIntermittent: intermittent(ch, spec.severity, rng); break;
    case FaultKind::kHardClip: hard_clip(ch, spec.severity); break;
    case FaultKind::kSoftClip: soft_clip(ch, spec.severity); break;
    case FaultKind::kDcOffset: dc_offset(ch, spec.severity); break;
    case FaultKind::kGainDrift: gain_drift(ch, spec.severity, rng); break;
    case FaultKind::kImpulsePops: impulse_pops(ch, spec.severity, rng); break;
    case FaultKind::kNanBurst: nan_burst(ch, spec.severity, rng); break;
  }
}

/// Gain drift is a property of the analog chain, not of one capture: the
/// same draw must distort every beep of a batch identically. Such kinds are
/// replayed from a fresh copy of the fault's base generator per beep.
bool is_hardware_static(FaultKind kind) {
  return kind == FaultKind::kGainDrift || kind == FaultKind::kDeadChannel ||
         kind == FaultKind::kHardClip || kind == FaultKind::kSoftClip ||
         kind == FaultKind::kDcOffset;
}

}  // namespace

std::string FaultSpec::describe() const {
  std::ostringstream os;
  os << kind_name(kind) << "(";
  if (channel == kAllChannels)
    os << "all";
  else
    os << "ch " << channel;
  os << ", severity " << severity << ")";
  return os.str();
}

std::string FaultPlan::describe() const {
  if (faults.empty()) return "clean";
  std::ostringstream os;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (i) os << " + ";
    os << faults[i].describe();
  }
  return os.str();
}

void apply_fault(MultiChannelSignal& capture, const FaultSpec& spec,
                 Rng& rng) {
  if (spec.severity < 0.0)
    throw std::invalid_argument("apply_fault: severity must be >= 0");
  if (spec.channel != kAllChannels &&
      (spec.channel < 0 ||
       static_cast<std::size_t>(spec.channel) >= capture.num_channels()))
    throw std::invalid_argument("apply_fault: channel index out of range");
  if (spec.severity == 0.0 && spec.kind != FaultKind::kDeadChannel) return;
  if (spec.channel == kAllChannels) {
    for (auto& ch : capture.channels) apply_to_channel(ch, spec, rng);
  } else {
    apply_to_channel(capture.channels[static_cast<std::size_t>(spec.channel)],
                     spec, rng);
  }
}

void apply_plan(MultiChannelSignal& capture, const FaultPlan& plan) {
  for (std::size_t k = 0; k < plan.faults.size(); ++k) {
    Rng rng(mix_seed(plan.seed, k));
    apply_fault(capture, plan.faults[k], rng);
  }
}

void apply_plan(std::vector<MultiChannelSignal>& beeps,
                MultiChannelSignal& noise_only, const FaultPlan& plan) {
  for (std::size_t k = 0; k < plan.faults.size(); ++k) {
    const FaultSpec& spec = plan.faults[k];
    const Rng base(mix_seed(plan.seed, k));
    for (std::size_t b = 0; b < beeps.size(); ++b) {
      // Static faults replay the base stream (identical draws per beep);
      // time-stochastic ones fork per beep for independent placement.
      Rng rng = is_hardware_static(spec.kind) ? base : base.fork(b + 1);
      apply_fault(beeps[b], spec, rng);
    }
    if (noise_only.num_channels() > 0) {
      Rng rng = is_hardware_static(spec.kind) ? base : base.fork(0);
      apply_fault(noise_only, spec, rng);
    }
  }
}

}  // namespace echoimage::sim
