#include "sim/drift.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "array/geometry.hpp"

namespace echoimage::sim {

namespace {

/// Furniture reflectivity tops out around 0.001 per point; walls are built
/// at 0.17+ and the outdoor ground bounce at 0.05. Anything above this
/// threshold is structural.
constexpr double kMovableReflectivityMax = 0.01;

}  // namespace

bool is_movable_clutter(const WorldReflector& r) {
  return r.reflectivity < kMovableReflectivityMax;
}

void DriftScenarioConfig::validate() const {
  if (severity < 0.0 || severity > 1.0)
    throw std::invalid_argument("DriftScenario: severity must be in [0, 1]");
  if (horizon_sessions == 0)
    throw std::invalid_argument(
        "DriftScenario: horizon_sessions must be positive");
  if (mic_gain_drift < 0.0 || mic_gain_drift >= 1.0 ||
      speaker_gain_drift < 0.0 || speaker_gain_drift >= 1.0)
    throw std::invalid_argument(
        "DriftScenario: gain drifts must be in [0, 1)");
  if (clutter_change_prob < 0.0 || clutter_change_prob > 1.0)
    throw std::invalid_argument(
        "DriftScenario: clutter_change_prob must be in [0, 1]");
  if (max_temperature_delta_c < 0.0 || ambient_ramp_db < 0.0 ||
      clutter_walk_m < 0.0)
    throw std::invalid_argument(
        "DriftScenario: component strengths must be >= 0");
}

std::string DriftSessionState::describe() const {
  std::ostringstream os;
  os << "session " << session << ": " << temperature_c << " C (sound speed x"
     << sound_speed_scale << "), ambient +" << ambient_offset_db
     << " dB, speaker gain " << speaker_gain << ", mic gains [";
  for (std::size_t c = 0; c < mic_gains.size(); ++c)
    os << (c ? " " : "") << mic_gains[c];
  os << "], " << environment.clutter.size() << " clutter reflectors";
  return os.str();
}

DriftScenario::DriftScenario(Environment base, std::size_t num_channels,
                             DriftScenarioConfig config)
    : base_(std::move(base)), num_channels_(num_channels), config_(config) {
  config_.validate();
  if (num_channels_ == 0)
    throw std::invalid_argument("DriftScenario: num_channels must be > 0");
}

DriftSessionState DriftScenario::state(std::size_t session) const {
  DriftSessionState out;
  out.session = session;
  out.environment = base_;
  out.mic_gains.assign(num_channels_, 1.0);
  const double sev = config_.severity;
  if (sev <= 0.0) return out;  // frozen world, bit-identical rendering

  const double horizon = static_cast<double>(config_.horizon_sessions);
  // Ramps saturate at the horizon instead of growing without bound.
  const double ramp =
      std::min(1.0, static_cast<double>(session) / horizon);

  // --- temperature trajectory -> speed of sound ------------------------
  // Slow seasonal sine (period ~ 2 horizons, phase drawn from the seed)
  // plus per-session HVAC jitter of ~1/8 the excursion.
  Rng temp_rng(mix_seed(config_.seed, 0xD81F));
  const double phase =
      temp_rng.uniform(0.0, 2.0 * std::numbers::pi);
  Rng session_rng(mix_seed(config_.seed, 0xD820 + session));
  const double excursion = sev * config_.max_temperature_delta_c;
  out.temperature_c =
      20.0 +
      excursion * std::sin(std::numbers::pi *
                               static_cast<double>(session) / horizon +
                           phase) +
      0.125 * excursion * session_rng.gaussian();
  // Scale relative to the 20 C calibration point so severity 0 (or a
  // trajectory passing exactly through 20 C) leaves the scene's configured
  // speed untouched whatever its absolute value.
  out.sound_speed_scale =
      echoimage::array::speed_of_sound_at(
          echoimage::units::Celsius{out.temperature_c}) /
      echoimage::array::speed_of_sound_at(echoimage::units::Celsius{20.0});

  // --- ambient noise ramp ----------------------------------------------
  out.ambient_offset_db = sev * config_.ambient_ramp_db * ramp;
  out.environment.ambient.level_db += out.ambient_offset_db;

  // --- speaker / microphone gain drift ---------------------------------
  // Each channel ages toward a per-device direction drawn once from the
  // seed (an electret's sensitivity drifts monotonically), plus small
  // per-session jitter.
  Rng gain_rng(mix_seed(config_.seed, 0x6A1B));
  for (std::size_t c = 0; c < num_channels_; ++c) {
    const double direction = gain_rng.uniform(-1.0, 1.0);
    const double trend = sev * config_.mic_gain_drift * direction * ramp;
    const double jitter =
        0.05 * sev * config_.mic_gain_drift * session_rng.gaussian();
    out.mic_gains[c] = std::max(0.05, 1.0 + trend + jitter);
  }
  const double spk_direction = gain_rng.uniform(-1.0, 1.0);
  out.speaker_gain = std::max(
      0.05, 1.0 + sev * config_.speaker_gain_drift * spk_direction * ramp);

  // --- clutter evolution ------------------------------------------------
  // Furniture performs a persistent random walk (each session adds an
  // increment, so displacement accumulates); occasionally a cluster is
  // removed or a new one appears. Walls and ground never move. The walk is
  // replayed from session 0 so state(s) is a pure function.
  const double step_m =
      sev * config_.clutter_walk_m / std::sqrt(horizon);
  std::vector<WorldReflector>& clutter = out.environment.clutter;
  for (std::size_t s = 1; s <= session; ++s) {
    Rng walk_rng(mix_seed(config_.seed, 0xC1A7 + s));
    for (WorldReflector& r : clutter) {
      if (!is_movable_clutter(r)) continue;
      r.position.x += walk_rng.gaussian(0.0, step_m);
      r.position.y += walk_rng.gaussian(0.0, step_m);
      r.position.z += walk_rng.gaussian(0.0, 0.25 * step_m);
    }
    if (walk_rng.uniform(0.0, 1.0) < sev * config_.clutter_change_prob) {
      // Toggle one furniture cluster: remove a random movable reflector
      // quartet, or add a fresh one off the user's axis.
      std::vector<std::size_t> movable;
      for (std::size_t i = 0; i < clutter.size(); ++i)
        if (is_movable_clutter(clutter[i])) movable.push_back(i);
      const bool remove =
          !movable.empty() && walk_rng.uniform(0.0, 1.0) < 0.5;
      if (remove) {
        const std::size_t at = movable[static_cast<std::size_t>(
            walk_rng.uniform_int(0, static_cast<int>(movable.size()) - 1))];
        clutter.erase(clutter.begin() + static_cast<std::ptrdiff_t>(at));
      } else {
        const double radius = walk_rng.uniform(1.0, 2.5);
        const double ang = walk_rng.uniform(0.35, 2.8) *
                           (walk_rng.uniform_int(0, 1) == 0 ? 1.0 : -1.0);
        const Vec3 center{radius * std::sin(ang), radius * std::cos(ang),
                          walk_rng.uniform(-0.9, 0.3)};
        const double total = walk_rng.uniform(0.0002, 0.001);
        for (int p = 0; p < 4; ++p)
          clutter.push_back(WorldReflector{
              Vec3{center.x + walk_rng.gaussian(0.0, 0.08),
                   center.y + walk_rng.gaussian(0.0, 0.08),
                   center.z + walk_rng.gaussian(0.0, 0.08)},
              total / 4.0});
      }
    }
  }
  return out;
}

void DriftScenario::apply_mic_gains(std::vector<MultiChannelSignal>& beeps,
                                    MultiChannelSignal& noise_only,
                                    const DriftSessionState& state) {
  const auto scale = [&](MultiChannelSignal& capture) {
    for (std::size_t c = 0;
         c < capture.num_channels() && c < state.mic_gains.size(); ++c) {
      const double g = state.mic_gains[c];
      if (g == 1.0) continue;
      for (double& v : capture.channels[c]) v *= g;
    }
  };
  for (MultiChannelSignal& beep : beeps) scale(beep);
  scale(noise_only);
}

}  // namespace echoimage::sim
