// Experiment environments (paper Sec. VI-A1): laboratory room, conference
// hall, and outdoor place.
//
// Each environment contributes static clutter reflectors (walls, furniture),
// a diffuse reverberation tail, and an ambient noise floor. Clutter inside
// the echo window but off the user's direction is what the paper's MVDR
// beamforming exists to suppress, so the presets deliberately include it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/body.hpp"
#include "sim/noise.hpp"

namespace echoimage::sim {

enum class EnvironmentKind { kLab, kConferenceHall, kOutdoor };

[[nodiscard]] std::string to_string(EnvironmentKind kind);

struct ReverbParams {
  double level = 0.0;       ///< initial tail amplitude relative to full scale
  double decay_time_s = 0.0; ///< exponential time constant (RT60-ish / 6.9)
};

struct Environment {
  EnvironmentKind kind = EnvironmentKind::kLab;
  std::vector<WorldReflector> clutter;  ///< walls, furniture, ground
  ReverbParams reverb;
  NoiseParams ambient{NoiseKind::kQuiet, 30.0};
};

/// Build an environment preset. The seed perturbs clutter placement so
/// different rooms of the same kind differ; ambient level defaults to the
/// paper's ~30 dB quiet rooms.
[[nodiscard]] Environment make_environment(EnvironmentKind kind,
                                           std::uint64_t seed,
                                           double ambient_db = 30.0);

}  // namespace echoimage::sim
