// Environment-drift scenarios: seeded session-to-session evolution of a
// capture environment.
//
// Hardware faults (sim/faults) break a capture instantly; environments rot
// slowly. Across days the furniture moves, the HVAC ramps the ambient
// floor, speaker and microphone gains age, and temperature changes the
// speed of sound — so the renderer's physics drift away from the constants
// the pipeline was calibrated with (`kSpeedOfSound`, enrollment-time
// gains). A DriftScenario produces, for each session index, a
// deterministic DriftSessionState describing the evolved world; the
// renderer uses it while the pipeline keeps its stale assumptions,
// reproducing exactly the mismatch a deployed device accumulates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsp/signal.hpp"
#include "sim/environment.hpp"
#include "sim/random.hpp"

namespace echoimage::sim {

using echoimage::dsp::MultiChannelSignal;

struct DriftScenarioConfig {
  /// Master severity knob in [0, 1]: every component scales with it, and 0
  /// freezes the environment exactly (bit-identical rendering).
  double severity = 1.0;
  std::uint64_t seed = 0;
  /// Session horizon: ramps reach full strength at this session index.
  std::size_t horizon_sessions = 8;

  // --- component strengths at severity 1 -------------------------------
  /// Peak temperature excursion from the 20 C calibration point (C). The
  /// trajectory is a slow seasonal sine plus per-session HVAC jitter.
  double max_temperature_delta_c = 12.0;
  /// Ambient noise floor added linearly across the horizon (dB).
  double ambient_ramp_db = 10.0;
  /// Per-microphone gain trend at the horizon (relative, e.g. 0.35 means
  /// gains wander toward [0.65, 1.35]), plus small per-session jitter.
  double mic_gain_drift = 0.35;
  /// Speaker output drift at the horizon (relative; scales the emitted
  /// chirp amplitude).
  double speaker_gain_drift = 0.25;
  /// RMS of the per-session random walk of furniture positions (m at the
  /// horizon). Walls and ground never move.
  double clutter_walk_m = 0.5;
  /// Per-session probability that one furniture cluster is removed or a
  /// new one appears.
  double clutter_change_prob = 0.3;

  /// Throws std::invalid_argument when out of range.
  void validate() const;
};

/// The world of one session, ready to drive a SceneRenderer.
struct DriftSessionState {
  std::size_t session = 0;
  double temperature_c = 20.0;
  /// Actual speed of sound the renderer should use; equals the base
  /// scene's speed scaled by the physics ratio c(T)/c(20 C), so severity 0
  /// leaves the scene untouched.
  double sound_speed_scale = 1.0;
  double ambient_offset_db = 0.0;
  double speaker_gain = 1.0;
  std::vector<double> mic_gains;  ///< one multiplicative gain per channel
  Environment environment;        ///< evolved clutter + ambient level

  [[nodiscard]] std::string describe() const;
};

/// Deterministic drift trajectory over a base environment. `state(s)` is a
/// pure function of (config, base environment, s): it replays the walk from
/// session 0 every call, so scenarios are cheap to share and replay.
class DriftScenario {
 public:
  DriftScenario(Environment base, std::size_t num_channels,
                DriftScenarioConfig config = {});

  [[nodiscard]] const DriftScenarioConfig& config() const { return config_; }

  /// Evolved world at the given session index (session 0 = enrollment day,
  /// already mildly drifted unless severity is 0).
  [[nodiscard]] DriftSessionState state(std::size_t session) const;

  /// Apply the state's capture-chain gains in place: every channel of the
  /// batch (beeps and the noise-only gap capture alike — a microphone
  /// amplifies everything it hears) is scaled by its mic gain.
  static void apply_mic_gains(std::vector<MultiChannelSignal>& beeps,
                              MultiChannelSignal& noise_only,
                              const DriftSessionState& state);

 private:
  Environment base_;
  std::size_t num_channels_;
  DriftScenarioConfig config_;
};

/// True for clutter that drifts (furniture-scale scatterers); walls and the
/// ground plane are strong specular reflectors that never relocate.
[[nodiscard]] bool is_movable_clutter(const WorldReflector& r);

}  // namespace echoimage::sim
