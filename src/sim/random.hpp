// Deterministic randomness for the acoustic simulator.
//
// Every stochastic element (body reflectivity fields, session jitter,
// noise) is driven by explicit seeds so experiments are exactly
// reproducible. Smooth random fields (low-order random Fourier series) give
// per-user body characteristics that are stable, structured, and distinct.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace echoimage::sim {

/// Mix a base seed with stream labels so sub-streams are decorrelated
/// (splitmix64 finalizer).
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream);

/// Thin wrapper over std::mt19937_64 with the distributions the simulator
/// uses. Copyable, cheap, deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  [[nodiscard]] double uniform(double lo, double hi);
  [[nodiscard]] double gaussian(double mean = 0.0, double stddev = 1.0);
  [[nodiscard]] int uniform_int(int lo, int hi);  ///< inclusive bounds
  /// Derive an independent sub-generator for the given stream label.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

 private:
  std::mt19937_64 gen_;
};

/// Smooth 2-D random field on [0,1]^2 built from a small random Fourier
/// series: f(u,v) = sum_i a_i cos(2 pi (p_i u + q_i v) + c_i). Evaluations
/// are deterministic functions of the seed — the same user always gets the
/// same field.
class SmoothField2D {
 public:
  /// `order` harmonics with spatial frequencies up to `max_freq` cycles per
  /// unit; amplitudes decay with frequency (pink-ish spectrum).
  SmoothField2D(std::uint64_t seed, std::size_t order = 12,
                double max_freq = 4.0);

  /// Field value at (u, v); roughly zero-mean with unit-ish variance.
  [[nodiscard]] double value(double u, double v) const;

  /// Affine-mapped value clamped to [lo, hi] with the field scaled by
  /// `scale` around `center`.
  [[nodiscard]] double mapped(double u, double v, double center, double scale,
                              double lo, double hi) const;

 private:
  struct Harmonic {
    double amplitude;
    double pu, pv;  ///< spatial frequencies (cycles per unit)
    double phase;
  };
  std::vector<Harmonic> harmonics_;
};

}  // namespace echoimage::sim
