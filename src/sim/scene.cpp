#include "sim/scene.hpp"

#include <algorithm>
#include <cmath>

namespace echoimage::sim {

SceneRenderer::SceneRenderer(Scene scene, CaptureConfig config)
    : scene_(std::move(scene)), config_(config), chirp_(config.chirp) {}

double SceneRenderer::direct_delay(std::size_t mic) const {
  return scene_.speaker_position.distance_to(scene_.geometry.mic(mic)) /
         scene_.speed_of_sound.value();
}

double SceneRenderer::echo_delay(const Vec3& point, std::size_t mic) const {
  const double d_tx = scene_.speaker_position.distance_to(point);
  const double d_rx = point.distance_to(scene_.geometry.mic(mic));
  return (d_tx + d_rx) / scene_.speed_of_sound.value();
}

void SceneRenderer::add_path(echoimage::dsp::Signal& channel, double delay_s,
                             double gain, double spectral_slope) const {
  chirp_.add_delayed(channel, config_.sample_rate, delay_s, gain,
                     spectral_slope);
}

void SceneRenderer::add_noise(MultiChannelSignal& out, Rng& rng) const {
  const std::size_t n = out.length();
  const std::size_t num_mics = out.num_channels();
  const double clamp_d = config_.min_path.value();

  // Ambient (diffuse) noise: independent per microphone.
  for (std::size_t m = 0; m < num_mics; ++m) {
    Rng mic_rng = rng.fork(0xA0B1 + m);
    const echoimage::dsp::Signal amb = generate_noise(
        scene_.environment.ambient, n, config_.sample_rate, mic_rng);
    echoimage::dsp::add_in_place(out.channels[m], amb);
  }

  // Microphone self-noise / ADC floor: white, independent per channel.
  for (std::size_t m = 0; m < num_mics; ++m) {
    Rng mic_rng = rng.fork(0x5E25 + m);
    const echoimage::dsp::Signal self = generate_noise(
        NoiseParams{NoiseKind::kWhite, config_.sensor_noise.value()}, n,
        config_.sample_rate, mic_rng);
    echoimage::dsp::add_in_place(out.channels[m], self);
  }

  // Localized playback noise: one waveform, delayed per mic (integer-sample
  // delay is fine for noise) and attenuated by distance.
  if (scene_.noise_source.has_value()) {
    const NoiseSource& src = *scene_.noise_source;
    Rng src_rng = rng.fork(0x5047);
    // Generate extra lead-in so per-mic delays can be applied by offset.
    const std::size_t lead =
        echoimage::dsp::seconds_to_samples(0.05, config_.sample_rate);
    const echoimage::dsp::Signal wave =
        generate_noise(src.params, n + lead, config_.sample_rate, src_rng);
    for (std::size_t m = 0; m < num_mics; ++m) {
      const Vec3 mic = scene_.geometry.mic(m);
      const double d = std::max(src.position.distance_to(mic), clamp_d);
      const std::size_t delay = std::min(
          lead, echoimage::dsp::seconds_to_samples(
                    d / scene_.speed_of_sound.value(), config_.sample_rate));
      const double gain = 1.0 / d;
      echoimage::dsp::Signal& ch = out.channels[m];
      for (std::size_t i = 0; i < n; ++i) ch[i] += gain * wave[lead + i - delay];
    }
  }
}

MultiChannelSignal SceneRenderer::render_beep(
    const std::vector<WorldReflector>& body, Rng& rng) const {
  const std::size_t n = config_.frame_samples();
  const std::size_t num_mics = scene_.geometry.num_mics();
  const double clamp_d = config_.min_path.value();
  MultiChannelSignal out;
  out.channels.assign(num_mics, echoimage::dsp::Signal(n, 0.0));

  for (std::size_t m = 0; m < num_mics; ++m) {
    echoimage::dsp::Signal& ch = out.channels[m];
    const Vec3 mic = scene_.geometry.mic(m);

    // Direct speaker -> microphone path.
    {
      const double d =
          std::max(scene_.speaker_position.distance_to(mic), clamp_d);
      add_path(ch, d / scene_.speed_of_sound.value(), 1.0 / d);
    }

    // Echoes: body + environment clutter, spherical spreading on each leg.
    const auto add_reflector = [&](const WorldReflector& r) {
      const double d_tx =
          std::max(scene_.speaker_position.distance_to(r.position), clamp_d);
      const double d_rx = std::max(r.position.distance_to(mic), clamp_d);
      add_path(ch, (d_tx + d_rx) / scene_.speed_of_sound.value(),
               r.reflectivity / (d_tx * d_rx), r.spectral_slope);
    };
    for (const WorldReflector& r : body) add_reflector(r);
    for (const WorldReflector& r : scene_.environment.clutter)
      add_reflector(r);
  }

  // Diffuse reverberation tail: per-mic independent noise with exponential
  // decay, starting once the direct sound has had time to reach a surface.
  const ReverbParams& rv = scene_.environment.reverb;
  if (rv.level > 0.0 && rv.decay_time_s > 0.0) {
    const std::size_t onset =
        echoimage::dsp::seconds_to_samples(0.004, config_.sample_rate);
    for (std::size_t m = 0; m < num_mics; ++m) {
      Rng mic_rng = rng.fork(0x7E7E + m);
      echoimage::dsp::Signal& ch = out.channels[m];
      for (std::size_t i = onset; i < n; ++i) {
        const double t = static_cast<double>(i - onset) / config_.sample_rate;
        ch[i] +=
            rv.level * std::exp(-t / rv.decay_time_s) * mic_rng.gaussian();
      }
    }
  }

  add_noise(out, rng);
  return out;
}

MultiChannelSignal SceneRenderer::render_noise_only(std::size_t length,
                                                    Rng& rng) const {
  MultiChannelSignal out;
  out.channels.assign(scene_.geometry.num_mics(),
                      echoimage::dsp::Signal(length, 0.0));
  add_noise(out, rng);
  return out;
}

}  // namespace echoimage::sim
