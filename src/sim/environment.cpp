#include "sim/environment.hpp"

namespace echoimage::sim {

std::string to_string(EnvironmentKind kind) {
  switch (kind) {
    case EnvironmentKind::kLab:
      return "laboratory";
    case EnvironmentKind::kConferenceHall:
      return "conference hall";
    case EnvironmentKind::kOutdoor:
      return "outdoor";
  }
  return "unknown";
}

namespace {

// A wall is approximated by its specular reflection point for a source and
// listener near the origin: a single strong reflector at the wall's nearest
// point.
void add_wall(std::vector<WorldReflector>& out, Rng& rng, Vec3 at,
              double reflectivity) {
  out.push_back(WorldReflector{
      Vec3{at.x + rng.gaussian(0.0, 0.1), at.y + rng.gaussian(0.0, 0.1),
           at.z + rng.gaussian(0.0, 0.05)},
      reflectivity * rng.uniform(0.8, 1.2)});
}

void add_furniture(std::vector<WorldReflector>& out, Rng& rng, int count,
                   double min_r, double max_r) {
  for (int i = 0; i < count; ++i) {
    // Furniture sits off the user's axis (+y): bias toward the sides.
    const double r = rng.uniform(min_r, max_r);
    const double ang = rng.uniform(0.35, 2.8) *
                       (rng.uniform_int(0, 1) == 0 ? 1.0 : -1.0);
    // Furniture is a weak diffuse scatterer, not a mirror: low amplitude,
    // spread over a few nearby points so the matched filter cannot compress
    // it into one tall glint.
    const Vec3 center{r * std::sin(ang), r * std::cos(ang),
                      rng.uniform(-0.9, 0.3)};
    const double total = rng.uniform(0.0002, 0.001);
    for (int p = 0; p < 4; ++p) {
      out.push_back(WorldReflector{
          Vec3{center.x + rng.gaussian(0.0, 0.08),
               center.y + rng.gaussian(0.0, 0.08),
               center.z + rng.gaussian(0.0, 0.08)},
          total / 4.0});
    }
  }
}

}  // namespace

Environment make_environment(EnvironmentKind kind, std::uint64_t seed,
                             double ambient_db) {
  Rng rng(mix_seed(seed, 0xE57));
  Environment env;
  env.kind = kind;
  env.ambient = NoiseParams{NoiseKind::kQuiet, ambient_db};
  switch (kind) {
    case EnvironmentKind::kLab: {
      // Small room: walls ~2-3 m away, a desk and a shelf off-axis.
      add_wall(env.clutter, rng, Vec3{2.6, 0.5, 0.0}, 0.25);
      add_wall(env.clutter, rng, Vec3{-2.8, 0.3, 0.0}, 0.25);
      add_wall(env.clutter, rng, Vec3{0.3, 3.1, 0.0}, 0.30);
      add_wall(env.clutter, rng, Vec3{0.0, -1.8, 0.0}, 0.22);
      add_furniture(env.clutter, rng, 3, 1.0, 2.2);
      env.reverb = ReverbParams{0.004, 0.06};
      break;
    }
    case EnvironmentKind::kConferenceHall: {
      // Large room: far walls, many chairs/tables, longer reverb.
      add_wall(env.clutter, rng, Vec3{5.5, 1.0, 0.0}, 0.30);
      add_wall(env.clutter, rng, Vec3{-6.0, 0.5, 0.0}, 0.30);
      add_wall(env.clutter, rng, Vec3{0.5, 8.0, 0.0}, 0.35);
      add_wall(env.clutter, rng, Vec3{0.0, -4.0, 0.0}, 0.28);
      add_furniture(env.clutter, rng, 8, 1.2, 4.0);
      env.reverb = ReverbParams{0.006, 0.15};
      break;
    }
    case EnvironmentKind::kOutdoor: {
      // No walls; ground bounce only; no reverb tail but a noisier floor.
      env.clutter.push_back(
          WorldReflector{Vec3{0.0, 1.0, -1.2}, 0.05});
      env.reverb = ReverbParams{0.0, 0.0};
      env.ambient.level_db = ambient_db + 6.0;  // wind / distant city hum
      break;
    }
  }
  return env;
}

}  // namespace echoimage::sim
