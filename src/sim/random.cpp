#include "sim/random.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace echoimage::sim {

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream) {
  // splitmix64 finalizer over the combined value.
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(gen_);
}

double Rng::gaussian(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(gen_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> d(lo, hi);
  return d(gen_);
}

Rng Rng::fork(std::uint64_t stream) const {
  Rng copy = *this;
  std::uint64_t s = copy.gen_();
  return Rng(mix_seed(s, stream));
}

SmoothField2D::SmoothField2D(std::uint64_t seed, std::size_t order,
                             double max_freq) {
  Rng rng(seed);
  harmonics_.reserve(order);
  for (std::size_t i = 0; i < order; ++i) {
    Harmonic h;
    h.pu = rng.uniform(-max_freq, max_freq);
    h.pv = rng.uniform(-max_freq, max_freq);
    const double f = std::hypot(h.pu, h.pv);
    // 1/(1+f) amplitude roll-off keeps the field smooth.
    h.amplitude = rng.gaussian(0.0, 1.0) / (1.0 + f);
    h.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    harmonics_.push_back(h);
  }
  // Normalize to roughly unit RMS.
  double var = 0.0;
  for (const Harmonic& h : harmonics_) var += 0.5 * h.amplitude * h.amplitude;
  const double norm = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
  for (Harmonic& h : harmonics_) h.amplitude *= norm;
}

double SmoothField2D::value(double u, double v) const {
  double s = 0.0;
  for (const Harmonic& h : harmonics_)
    s += h.amplitude *
         std::cos(2.0 * std::numbers::pi * (h.pu * u + h.pv * v) + h.phase);
  return s;
}

double SmoothField2D::mapped(double u, double v, double center, double scale,
                             double lo, double hi) const {
  return std::clamp(center + scale * value(u, v), lo, hi);
}

}  // namespace echoimage::sim
